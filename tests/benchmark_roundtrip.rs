//! Whole-suite integration checks: every paper benchmark survives a
//! QASM round-trip, stays within its declared spec, and the experiment
//! pipeline is bit-deterministic.

use qpd::circuit::qasm;
use qpd::eval::runner::{run_benchmark, EvalSettings};
use qpd::profile::CouplingProfile;

#[test]
fn all_benchmarks_roundtrip_through_qasm() {
    for spec in &qpd::benchmarks::ALL {
        let circuit = qpd::benchmarks::build(spec.name).unwrap();
        let text = qasm::to_qasm(&circuit).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let back = qasm::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(back, circuit, "{} changed across emit/parse", spec.name);
    }
}

#[test]
fn benchmark_profiles_are_stable_fingerprints() {
    // Golden fingerprints: total two-qubit gates and edge counts per
    // benchmark. These pin the generators against accidental changes —
    // the design flow's inputs must not drift silently.
    let expected: &[(&str, u32, usize)] = &[
        ("adr4_197", 100, 20),
        ("rd84_142", 632, 32),
        ("misex1_241", 2580, 80),
        ("square_root_7", 655, 31),
        ("radd_250", 81, 16),
        ("cm152a_212", 384, 24),
        ("dc1_220", 648, 36),
        ("z4_268", 805, 42),
        ("sym6_145", 1866, 21),
        ("UCCSD_ansatz_8", 2752, 15),
        ("ising_model_16", 390, 15),
        ("qft_16", 240, 120),
    ];
    for &(name, two_qubit, edges) in expected {
        let profile = CouplingProfile::of(&qpd::benchmarks::build(name).unwrap());
        assert_eq!(profile.total_two_qubit_gates(), two_qubit, "{name} gate count drifted");
        assert_eq!(profile.edge_count(), edges, "{name} edge count drifted");
    }
}

#[test]
fn experiment_pipeline_is_deterministic() {
    let settings = EvalSettings::quick();
    let a = run_benchmark("sym6_145", &settings).unwrap();
    let b = run_benchmark("sym6_145", &settings).unwrap();
    assert_eq!(a.points, b.points);
}
