//! Whole-suite integration checks: every paper benchmark survives a
//! QASM round-trip, stays within its declared spec, and the experiment
//! pipeline is bit-deterministic.

use qpd::circuit::qasm;
use qpd::eval::runner::{run_benchmark, EvalSettings};
use qpd::profile::CouplingProfile;

#[test]
fn all_benchmarks_roundtrip_through_qasm() {
    for spec in &qpd::benchmarks::ALL {
        let circuit = qpd::benchmarks::build(spec.name).unwrap();
        let text = qasm::to_qasm(&circuit).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let back = qasm::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(back, circuit, "{} changed across emit/parse", spec.name);
    }
}

#[test]
fn qasm_emit_parse_is_a_fixpoint_for_every_generator() {
    // Regression for the parser/emitter pair: once a generator's circuit
    // has been through QASM text, parsing and re-emitting must converge
    // immediately — equal text, equal circuits, and gate/qubit counts
    // identical to the original build. Catches asymmetries (implicit
    // register expansion, angle printing, measurement ordering) that the
    // single-pass round-trip test can mask.
    for spec in &qpd::benchmarks::ALL {
        let circuit = qpd::benchmarks::build(spec.name).unwrap();
        let text = qasm::to_qasm(&circuit).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let parsed = qasm::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let text2 = qasm::to_qasm(&parsed).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let reparsed = qasm::parse(&text2).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(text, text2, "{}: emit is not a fixpoint after one parse", spec.name);
        assert_eq!(
            parsed.gate_count(),
            circuit.gate_count(),
            "{}: gate count changed across parse",
            spec.name
        );
        assert_eq!(
            reparsed.gate_count(),
            circuit.gate_count(),
            "{}: gate count changed across re-parse",
            spec.name
        );
        assert_eq!(reparsed.num_qubits(), circuit.num_qubits(), "{}: width changed", spec.name);
        assert_eq!(reparsed, parsed, "{}: parse/emit/parse not stable", spec.name);
    }
}

#[test]
fn benchmark_profiles_are_stable_fingerprints() {
    // Golden fingerprints: total two-qubit gates and edge counts per
    // benchmark. These pin the generators against accidental changes —
    // the design flow's inputs must not drift silently. misex1_241 is
    // the one generator drawn from a seeded RNG stream, so its
    // fingerprint is tied to the workspace's RNG backend (the offline
    // ChaCha8 shim); regenerate with the `fingerprints` bin after any
    // intentional generator or RNG change.
    let expected: &[(&str, u32, usize)] = &[
        ("adr4_197", 100, 20),
        ("rd84_142", 632, 32),
        ("misex1_241", 2274, 79),
        ("square_root_7", 655, 31),
        ("radd_250", 81, 16),
        ("cm152a_212", 384, 24),
        ("dc1_220", 648, 36),
        ("z4_268", 805, 42),
        ("sym6_145", 1866, 21),
        ("UCCSD_ansatz_8", 2752, 15),
        ("ising_model_16", 390, 15),
        ("qft_16", 240, 120),
    ];
    for &(name, two_qubit, edges) in expected {
        let profile = CouplingProfile::of(&qpd::benchmarks::build(name).unwrap());
        assert_eq!(profile.total_two_qubit_gates(), two_qubit, "{name} gate count drifted");
        assert_eq!(profile.edge_count(), edges, "{name} edge count drifted");
    }
}

#[test]
fn experiment_pipeline_is_deterministic() {
    let settings = EvalSettings::quick();
    let a = run_benchmark("sym6_145", &settings).unwrap();
    let b = run_benchmark("sym6_145", &settings).unwrap();
    assert_eq!(a.points, b.points);
}
