//! Property-based tests over the design-flow subroutines: placement,
//! bus selection, and frequency allocation must uphold the paper's
//! physical constraints for *any* program shape, not just the
//! benchmarks.

use std::collections::BTreeSet;

use proptest::prelude::*;

use qpd::design::{
    candidate_squares, place_qubits, select_buses_maximal, select_buses_random,
    select_buses_weighted,
};
use qpd::prelude::*;
use qpd::profile::CouplingProfile;

/// Strategy: a random weighted edge list over up to `n` qubits.
fn arb_profile(max_qubits: usize) -> impl Strategy<Value = CouplingProfile> {
    (2..=max_qubits).prop_flat_map(move |n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n, 0..n, 1u32..40), 1..=max_edges.min(24)).prop_map(
            move |raw| {
                let edges: Vec<(usize, usize, u32)> = raw
                    .into_iter()
                    .filter(|(a, b, _)| a != b)
                    .map(|(a, b, w)| (a.min(b), a.max(b), w))
                    .collect();
                CouplingProfile::from_edges(n, &edges)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Placement is injective and produces a lattice-connected layout.
    #[test]
    fn placement_invariants(profile in arb_profile(14)) {
        let coords = place_qubits(&profile);
        prop_assert_eq!(coords.len(), profile.num_qubits());
        let unique: BTreeSet<_> = coords.iter().collect();
        prop_assert_eq!(unique.len(), coords.len(), "duplicate coordinates");
        // Lattice-connectivity via flood fill.
        let set: BTreeSet<Coord> = coords.iter().copied().collect();
        let mut seen = BTreeSet::new();
        let mut stack = vec![coords[0]];
        seen.insert(coords[0]);
        while let Some(c) = stack.pop() {
            for nb in c.neighbors4() {
                if set.contains(&nb) && seen.insert(nb) {
                    stack.push(nb);
                }
            }
        }
        prop_assert_eq!(seen.len(), coords.len(), "layout not connected");
    }

    /// Every bus selection strategy respects the prohibited condition and
    /// the 3-corner minimum, and weighted selection only spends buses on
    /// squares with positive cross-coupling weight.
    #[test]
    fn bus_selection_invariants(profile in arb_profile(12), budget in 0usize..6, seed in 0u64..100) {
        let coords = place_qubits(&profile);
        let candidates: BTreeSet<Square> = candidate_squares(&coords).into_iter().collect();
        for picks in [
            select_buses_weighted(&coords, &profile, budget),
            select_buses_random(&coords, budget, seed),
            select_buses_maximal(&coords),
        ] {
            for (i, a) in picks.iter().enumerate() {
                prop_assert!(candidates.contains(a), "square not a candidate");
                for b in &picks[i + 1..] {
                    prop_assert!(!a.neighbors4().contains(b), "prohibited condition violated");
                    prop_assert!(a != b, "duplicate square");
                }
            }
        }
        let weighted = select_buses_weighted(&coords, &profile, budget);
        prop_assert!(weighted.len() <= budget);
        for s in &weighted {
            prop_assert!(
                qpd::design::bus::cross_coupling_weight(*s, &coords, &profile) > 0,
                "weighted selection spent a bus on a zero-weight square"
            );
        }
    }

    /// The full pipeline always emits valid, connected, in-band chips.
    #[test]
    fn pipeline_invariants(profile in arb_profile(10)) {
        let chip = DesignFlow::new()
            .with_allocation_trials(60)
            .with_allocation_sweeps(1)
            .design(&profile)
            .unwrap();
        prop_assert!(chip.is_connected());
        prop_assert_eq!(chip.num_qubits(), profile.num_qubits());
        let plan = chip.frequencies().expect("plan attached");
        prop_assert!(plan.check_band().is_ok());
        // Designed chips must be routable for any program over the
        // profile's qubits (spot-check with a line circuit).
        let mut c = Circuit::new(profile.num_qubits());
        for q in 0..profile.num_qubits() - 1 {
            c.cx(q as u32, q as u32 + 1);
        }
        prop_assert!(SabreRouter::new(&chip).route(&c).is_ok());
    }

    /// Pareto front extraction returns exactly the non-dominated points.
    #[test]
    fn pareto_front_is_sound_and_complete(
        points in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..30)
    ) {
        let front = qpd::design::pareto_front(&points);
        for (i, &p) in points.iter().enumerate() {
            let dominated = points
                .iter()
                .enumerate()
                .any(|(j, &q)| j != i && qpd::design::pareto::dominates(q, p));
            prop_assert_eq!(front.contains(&i), !dominated, "point {}", i);
        }
    }
}
