//! Determinism under the `qpd-par` worker pool: the pooled kernels must
//! emit bit-identical results for every thread count. `with_threads` is
//! the in-process equivalent of setting `QPD_THREADS`, so these
//! properties cover `QPD_THREADS` ∈ {1, 2, 8}.

use proptest::prelude::*;

use qpd::design::FrequencyAllocator;
use qpd::prelude::*;
use qpd::yield_sim::YieldSimulator;

/// Strategy: a small random connected lattice layout (a ragged strip of
/// rows, always lattice-connected by construction).
fn arb_architecture() -> impl Strategy<Value = Architecture> {
    proptest::collection::vec(1usize..4, 1..4).prop_map(|row_lens| {
        let mut b = Architecture::builder("strip");
        for (r, &len) in row_lens.iter().enumerate() {
            for c in 0..len.max(1) as i32 {
                b.qubit(r as i32, c);
            }
        }
        b.build().expect("valid strip layout")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `FrequencyAllocator::allocate` is invariant under the worker
    /// count (satellite requirement: `QPD_THREADS` ∈ {1, 2, 8}).
    #[test]
    fn allocation_invariant_under_thread_count(
        arch in arb_architecture(),
        seed in 0u64..1_000,
    ) {
        let allocator = FrequencyAllocator::new()
            .with_trials(120)
            .with_seed(seed)
            .with_refinement_sweeps(1);
        let serial = qpd::par::with_threads(1, || allocator.allocate(&arch));
        for threads in [2usize, 8] {
            let pooled = qpd::par::with_threads(threads, || allocator.allocate(&arch));
            prop_assert_eq!(&serial, &pooled, "threads {}", threads);
        }
    }

    /// The Monte Carlo yield estimate is byte-identical across worker
    /// counts, serial path included.
    #[test]
    fn yield_estimate_invariant_under_thread_count(seed in 0u64..1_000) {
        let arch = qpd::topology::ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
        let sim = YieldSimulator::new().with_trials(2_500).with_seed(seed);
        let serial = qpd::par::with_threads(1, || sim.estimate(&arch).unwrap());
        let single = sim.single_threaded().estimate(&arch).unwrap();
        prop_assert_eq!(serial, single);
        for threads in [2usize, 8] {
            let pooled = qpd::par::with_threads(threads, || sim.estimate(&arch).unwrap());
            prop_assert_eq!(serial, pooled, "threads {}", threads);
        }
    }
}
