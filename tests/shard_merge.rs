//! The PR 9 tentpole proof: `shard(N) + merge ≡ single-run`,
//! **bit-for-bit at the checkpoint-byte level**, for N ∈ {1, 2, 4},
//! for `QPD_THREADS` ∈ {1, 2, 8} (including shards run at *different*
//! thread counts), under kill/resume of an individual shard across a
//! process boundary, and for every permutation of merge-input order.
//!
//! The soundness argument: a shardable config
//! ([`ExploreConfig::shardable`](qpd::explore::ExploreConfig::shardable))
//! has no cross-walk reads, every walk keeps its global index and its
//! own `(seed, walk, round)` RNG streams, and every archive entry
//! carries its provenance `(block, walk, step)` — exactly the single-run
//! insertion order — so the merge can replay the union of the shards'
//! work in the order one process would have produced it.

use proptest::prelude::*;

use qpd::explore::{
    merge_checkpoints, Checkpoint, ExploreConfig, ExploreSpace, Explorer, ShardSpec,
};
use qpd::prelude::*;

/// A small program with enough diagonal demand for square moves.
fn demo_circuit() -> Circuit {
    let mut c = Circuit::new(6);
    for _ in 0..2 {
        c.cx(0, 1).cx(1, 2).cx(3, 4).cx(4, 5).cx(0, 3).cx(1, 4).cx(2, 5);
    }
    c.cx(0, 4).cx(1, 3).cx(1, 5).cx(2, 4);
    c
}

/// An independent-walk (shardable) config: scalarized acceptance, no
/// recombination, no archive cap — `v1_compat` is exactly that shape.
fn shardable_config(seed: u64) -> ExploreConfig {
    ExploreConfig {
        walks: 4,
        rounds: 2,
        steps_per_round: 2,
        seed,
        max_aux: 1,
        alloc_trials: 60,
        yield_trials: 400,
        ..ExploreConfig::quick()
    }
    .v1_compat()
}

fn explorer(seed: u64) -> Explorer {
    let config = shardable_config(seed);
    Explorer::new(ExploreSpace::new(demo_circuit(), config.max_aux), config).unwrap()
}

fn single_run_bytes(seed: u64) -> String {
    let state = explorer(seed).run().unwrap();
    Checkpoint {
        run: "prop".into(),
        config: shardable_config(seed),
        state,
        stage_hit_rates: Vec::new(),
        shard: None,
    }
    .render()
}

fn shard_checkpoint(seed: u64, index: usize, of: usize, threads: usize) -> Checkpoint {
    let shard =
        qpd::par::with_threads(threads, || explorer(seed).run_shard(ShardSpec { index, of }))
            .unwrap();
    Checkpoint::from_shard("prop", shardable_config(seed), &shard, Vec::new())
}

/// Every permutation of `0..n` (n ≤ 4 here, so at most 24).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 1 {
        return vec![vec![0]];
    }
    let mut out = Vec::new();
    for rest in permutations(n - 1) {
        for slot in 0..n {
            let mut p = rest.clone();
            p.insert(slot, n - 1);
            out.push(p);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The headline equivalence: for N ∈ {1, 2, 4}, running the N
    /// shards (each at a different thread count) and merging them — in
    /// every input order — reproduces the single-process checkpoint
    /// bytes exactly.
    #[test]
    fn shard_and_merge_reproduce_single_run_bytes_for_every_order(seed in 0u64..1_000) {
        let reference = qpd::par::with_threads(1, || single_run_bytes(seed));
        for of in [1usize, 2, 4] {
            // Thread counts rotate over {1, 2, 8} per shard: the merge
            // must not care how each shard's process was scheduled.
            let shards: Vec<Checkpoint> = (0..of)
                .map(|i| shard_checkpoint(seed, i, of, [1usize, 2, 8][i % 3]))
                .collect();
            for perm in permutations(of) {
                let ordered: Vec<Checkpoint> =
                    perm.iter().map(|&i| shards[i].clone()).collect();
                let merged = merge_checkpoints(&ordered).unwrap();
                prop_assert_eq!(
                    &merged.render(),
                    &reference,
                    "merge of {} shard(s) in order {:?} diverged",
                    of,
                    perm
                );
            }
        }
    }

    /// Kill/resume of an individual shard: one shard is cut after its
    /// first round, persisted to checkpoint *bytes*, revived in a fresh
    /// cold engine (a process boundary in all but the exec), finished,
    /// and merged. Byte-identical to the uninterrupted single run.
    #[test]
    fn a_killed_and_resumed_shard_merges_bit_identically(seed in 0u64..1_000) {
        let reference = single_run_bytes(seed);
        let of = 2;
        let config = shardable_config(seed);
        let whole = shard_checkpoint(seed, 0, of, 2);
        // Shard 1: run one round, checkpoint, "crash".
        let cut = explorer(seed);
        let mut partial = cut.initial_shard_state(ShardSpec { index: 1, of }).unwrap();
        cut.advance_shard_round(&mut partial).unwrap();
        let bytes = Checkpoint::from_shard("prop", config, &partial, Vec::new()).render();
        drop(cut);
        // Revive from bytes on a fresh engine and finish the budget.
        let revived = Checkpoint::parse(&bytes).unwrap().to_shard_state().unwrap();
        let finished = explorer(seed).resume_shard(revived).unwrap();
        let resumed = Checkpoint::from_shard("prop", config, &finished, Vec::new());
        let merged = merge_checkpoints(&[resumed, whole]).unwrap();
        prop_assert_eq!(merged.render(), reference);
    }
}

/// The merged document is a parse/render fixpoint and carries no shard
/// tag — it *is* the whole run, immediately resumable as one.
#[test]
fn merged_checkpoints_are_whole_run_fixpoints() {
    let seed = 17;
    let shards: Vec<Checkpoint> = (0..2).map(|i| shard_checkpoint(seed, i, 2, 1)).collect();
    let merged = merge_checkpoints(&shards).unwrap();
    assert!(merged.shard.is_none());
    let bytes = merged.render();
    let parsed = Checkpoint::parse(&bytes).unwrap();
    assert_eq!(parsed.render(), bytes);
    assert!(parsed.shard.is_none());
    // And the shard files themselves round-trip with their tags intact.
    for cp in &shards {
        let reparsed = Checkpoint::parse(&cp.render()).unwrap();
        assert_eq!(&reparsed, cp);
        assert!(reparsed.shard.is_some());
    }
}

/// Sharding is refused — loudly, not wrongly — for configs whose walks
/// observe each other (dominance acceptance, recombination, archive
/// caps). The refusal names every blocker.
#[test]
fn unshardable_configs_are_rejected_with_reasons() {
    let mut config = shardable_config(1);
    config.recombine = true;
    config.archive_cap = Some(8);
    let why = config.shardable().unwrap_err();
    assert!(why.contains("recombin"), "{why}");
    assert!(why.contains("archive_cap"), "{why}");
    let space = ExploreSpace::new(demo_circuit(), config.max_aux);
    let err =
        Explorer::new(space, config).unwrap().run_shard(ShardSpec { index: 0, of: 2 }).unwrap_err();
    assert!(err.to_string().contains("shard"), "{err}");
}
