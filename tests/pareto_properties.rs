//! Property tests for the `qpd_core::pareto` helpers the v2 explore
//! acceptor is built on: ε-dominance is a strict partial order on the
//! ε-grid (anti-symmetric, transitive), the N-dimensional front is
//! invariant under input permutation, and crowding distances are
//! permutation-equivariant.

use proptest::prelude::*;

use qpd::design::{
    crowding_distances, dominates_nd, epsilon_dominates_nd, epsilon_weakly_dominates_nd,
    pareto_front_nd,
};

/// A point with coordinates on a coarse lattice (`k / 8` for small `k`),
/// so ε-grid cell collisions and dominance chains actually occur instead
/// of every random pair being incomparable.
fn arb_point() -> impl Strategy<Value = Vec<f64>> {
    (-16i64..17, -16i64..17, -16i64..17)
        .prop_map(|(a, b, c)| vec![a as f64 / 8.0, b as f64 / 8.0, c as f64 / 8.0])
}

/// A point on a much finer lattice, for properties that need per-axis
/// distinct values with high probability.
fn arb_fine_point() -> impl Strategy<Value = Vec<f64>> {
    (-100_000i64..100_000, -100_000i64..100_000)
        .prop_map(|(a, b)| vec![a as f64 / 512.0, b as f64 / 512.0])
}

/// Deterministic Fisher–Yates from a seed (splitmix64 stream).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Strict ε-dominance is anti-symmetric for every grid width,
    /// including the `eps <= 0` exact-dominance fallback.
    #[test]
    fn epsilon_dominance_is_antisymmetric(
        a in arb_point(),
        b in arb_point(),
        eps_k in 0usize..4,
    ) {
        let eps = [0.0, 0.05, 0.25, 1.0][eps_k];
        if epsilon_dominates_nd(&a, &b, eps) {
            prop_assert!(!epsilon_dominates_nd(&b, &a, eps),
                "both directions dominate at eps {eps}: {a:?} vs {b:?}");
        }
        // Irreflexivity comes with anti-symmetry in a strict order.
        prop_assert!(!epsilon_dominates_nd(&a, &a, eps));
    }

    /// Strict ε-dominance is transitive on the ε-grid: it is plain
    /// Pareto dominance on grid cells, so chains compose.
    #[test]
    fn epsilon_dominance_is_transitive(
        a in arb_point(),
        b in arb_point(),
        c in arb_point(),
        eps_k in 0usize..4,
    ) {
        let eps = [0.0, 0.05, 0.25, 1.0][eps_k];
        if epsilon_dominates_nd(&a, &b, eps) && epsilon_dominates_nd(&b, &c, eps) {
            prop_assert!(epsilon_dominates_nd(&a, &c, eps),
                "transitivity broken at eps {eps}: {a:?} > {b:?} > {c:?}");
        }
        // The weak relation is transitive too (and reflexive).
        if epsilon_weakly_dominates_nd(&a, &b, eps) && epsilon_weakly_dominates_nd(&b, &c, eps) {
            prop_assert!(epsilon_weakly_dominates_nd(&a, &c, eps));
        }
        prop_assert!(epsilon_weakly_dominates_nd(&a, &a, eps));
    }

    /// Strict ε-dominance implies the weak form, and exact dominance
    /// implies weak ε-dominance... does not hold in general for eps > 0
    /// (a sub-grid edge vanishes) — but weak-at-zero implies weak at any
    /// eps, because floors are monotone.
    #[test]
    fn weak_dominance_weakens_monotonically(
        a in arb_point(),
        b in arb_point(),
        eps_k in 1usize..4,
    ) {
        let eps = [0.0, 0.05, 0.25, 1.0][eps_k];
        if epsilon_dominates_nd(&a, &b, eps) {
            prop_assert!(epsilon_weakly_dominates_nd(&a, &b, eps));
        }
        if epsilon_weakly_dominates_nd(&a, &b, 0.0) {
            prop_assert!(epsilon_weakly_dominates_nd(&a, &b, eps),
                "componentwise >= must survive any grid: {a:?} vs {b:?} at eps {eps}");
        }
    }

    /// The front is invariant under permutation: permuting the input
    /// selects exactly the same points (as a set), and every non-front
    /// point is dominated by some front point.
    #[test]
    fn front_is_invariant_under_permutation(
        points in proptest::collection::vec(arb_point(), 1..12),
        seed in 0u64..1_000,
    ) {
        let front = pareto_front_nd(&points);
        prop_assert!(!front.is_empty(), "a nonempty set has a nonempty front");
        // Completeness: everything off the front is dominated by
        // something on it.
        for (i, p) in points.iter().enumerate() {
            if !front.contains(&i) {
                prop_assert!(front.iter().any(|&f| dominates_nd(&points[f], p)),
                    "point {i} is off the front yet undominated");
            }
        }
        let perm = permutation(points.len(), seed);
        let shuffled: Vec<Vec<f64>> = perm.iter().map(|&i| points[i].clone()).collect();
        let shuffled_front = pareto_front_nd(&shuffled);
        let mut mapped: Vec<usize> = shuffled_front.iter().map(|&i| perm[i]).collect();
        mapped.sort_unstable();
        let mut original = front.clone();
        original.sort_unstable();
        prop_assert_eq!(original, mapped, "permutation changed the front membership");
    }

    /// Crowding distances are permutation-equivariant: shuffling the
    /// points shuffles the distances the same way, bit for bit. (Holds
    /// when each axis has distinct values — with exact ties the sorted
    /// neighbor sets are tie-order dependent in NSGA-II, so tied draws
    /// are skipped; the fine lattice makes them rare.)
    #[test]
    fn crowding_is_permutation_equivariant(
        points in proptest::collection::vec(arb_fine_point(), 1..10),
        seed in 0u64..1_000,
    ) {
        let dims = points[0].len();
        let untied = (0..dims).all(|m| {
            let mut vals: Vec<u64> = points.iter().map(|p| p[m].to_bits()).collect();
            vals.sort_unstable();
            vals.windows(2).all(|w| w[0] != w[1])
        });
        if untied {
            let d = crowding_distances(&points);
            let perm = permutation(points.len(), seed);
            let shuffled: Vec<Vec<f64>> = perm.iter().map(|&i| points[i].clone()).collect();
            let ds = crowding_distances(&shuffled);
            for (slot, &src) in perm.iter().enumerate() {
                prop_assert_eq!(ds[slot].to_bits(), d[src].to_bits(),
                    "distance of point {src} changed under permutation");
            }
        }
    }
}
