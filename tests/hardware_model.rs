//! Behavior-preservation properties of the pluggable hardware layer:
//! selecting [`HardwareFamily::FixedFrequencyTransmon`] (the default)
//! must reproduce the pre-refactor pipeline bit-for-bit — collision
//! verdicts, Monte Carlo yield counts, content keys, and full design
//! outputs — while the non-default families must visibly re-shape the
//! same surfaces (different keys, different bands, different noise).

use proptest::prelude::*;

use qpd::prelude::*;
use qpd::profile::CouplingProfile;
use qpd::topology::{ibm, BusMode};
use qpd::yield_sim::{HardwareFamily, YieldSimulator};

/// Strategy: a connected-ish weighted profile over `3..=n` qubits (a
/// chain backbone keeps placement well-posed).
fn arb_profile(max_qubits: usize) -> impl Strategy<Value = CouplingProfile> {
    (3..=max_qubits).prop_flat_map(move |n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n, 0..n, 1u32..20), 1..=max_edges.min(12)).prop_map(
            move |raw| {
                let mut edges: Vec<(usize, usize, u32)> =
                    (0..n - 1).map(|i| (i, i + 1, 1)).collect();
                edges.extend(
                    raw.into_iter()
                        .filter(|(a, b, _)| a != b)
                        .map(|(a, b, w)| (a.min(b), a.max(b), w)),
                );
                CouplingProfile::from_edges(n, &edges)
            },
        )
    })
}

/// Strategy: a 16-entry frequency vector inside the paper's band, for
/// the IBM 16-qubit baseline's collision checker.
fn arb_frequencies() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0u32..=3_400, 16)
        .prop_map(|raw| raw.into_iter().map(|m| 5.0 + f64::from(m) * 1e-4).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite 4 (collision half): the default family's collision
    /// model IS the pre-refactor checker — identical event lists (and
    /// therefore identical counts) for arbitrary frequency assignments.
    #[test]
    fn fixed_family_collision_events_match_the_default_checker(
        freqs in arb_frequencies(),
    ) {
        let chip = ibm::ibm_16q_2x8(BusMode::MaxFourQubit);
        let reference = CollisionChecker::new(&chip);
        let via_model = CollisionChecker::with_params(
            &chip,
            HardwareFamily::FixedFrequencyTransmon.model().collision_params(),
        );
        prop_assert_eq!(reference.has_collision(&freqs), via_model.has_collision(&freqs));
        prop_assert_eq!(reference.collisions(&freqs), via_model.collisions(&freqs),
            "the default family's thresholds diverged from the pre-refactor checker");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite 4 (yield half): a simulator pointed at the default
    /// family is bit-identical to one that never heard of hardware
    /// families — same content key (so the explorer's stage cache
    /// cannot tell them apart) and the same Monte Carlo success count,
    /// for arbitrary seeds and noise widths.
    #[test]
    fn fixed_family_simulator_is_bit_identical(
        seed in 0u64..1_000,
        sigma_millis in 1u32..80,
        baseline in 0usize..4,
    ) {
        let chip = ibm::all_baselines()[baseline].clone();
        let sigma = f64::from(sigma_millis) * 1e-3;
        let plain = YieldSimulator::new().with_trials(600).with_seed(seed).with_sigma_ghz(sigma);
        let tagged = plain.with_hardware(HardwareFamily::FixedFrequencyTransmon);
        prop_assert_eq!(
            plain.content_key(&chip).unwrap(),
            tagged.content_key(&chip).unwrap(),
            "default family leaked into the yield content key"
        );
        let a = plain.estimate(&chip).unwrap();
        let b = tagged.estimate(&chip).unwrap();
        prop_assert_eq!(a.successes(), b.successes(), "Monte Carlo stream diverged");
        prop_assert_eq!(a.trials(), b.trials());

        // And the non-default families are *not* invisible: they re-key
        // the stage and (with thresholds or sigma changed) may move the
        // estimate.
        for family in [HardwareFamily::TunableCoupler, HardwareFamily::HeavyHex] {
            let other = plain.with_hardware(family);
            prop_assert_ne!(
                plain.content_key(&chip).unwrap(),
                other.content_key(&chip).unwrap(),
                "family {} missing from the yield content key", family.as_str()
            );
        }
    }

    /// Satellite 4 (flow half): a design flow pointed at the default
    /// family produces the same architecture, bit for bit, as a flow
    /// that never heard of hardware families — names, coordinates,
    /// buses, and the full frequency plan.
    #[test]
    fn fixed_family_design_flow_is_bit_identical(
        profile in arb_profile(8),
        five in proptest::bool::ANY,
        alloc_seed in 0u64..50,
    ) {
        let base = DesignFlow::new().with_allocation_trials(60).with_allocation_seed(alloc_seed);
        let base = if five {
            base.with_frequency_strategy(FrequencyStrategy::FiveFrequency)
        } else {
            base
        };
        let plain = base.clone().design(&profile).unwrap();
        let tagged = base
            .with_hardware(HardwareFamily::FixedFrequencyTransmon)
            .design(&profile)
            .unwrap();
        prop_assert_eq!(&plain, &tagged, "default family changed a design output");
    }
}

/// The non-default families re-shape a designed chip: suffixed names
/// and frequency plans inside the family band.
#[test]
fn non_default_families_redesign_within_their_band() {
    let mut program = Circuit::new(6);
    for _ in 0..3 {
        program.cx(0, 1).cx(1, 2).cx(3, 4).cx(4, 5).cx(0, 3).cx(1, 4).cx(2, 5);
    }
    let profile = CouplingProfile::of(&program);
    for family in [HardwareFamily::TunableCoupler, HardwareFamily::HeavyHex] {
        let chip = DesignFlow::new()
            .with_allocation_trials(60)
            .with_hardware(family)
            .design(&profile)
            .unwrap();
        assert!(
            chip.name().contains(family.name_suffix()),
            "{} design missing its name suffix: {}",
            family.as_str(),
            chip.name()
        );
        let (lo, hi) = family.model().allowed_band_ghz();
        for &f in chip.frequencies().expect("designed chip has a plan").as_slice() {
            assert!((lo..=hi).contains(&f), "{f} GHz outside the {} band", family.as_str());
        }
    }
}
