//! Integration tests for routing on generated/baseline architectures
//! and for yield behaviour across the architecture space.

use proptest::prelude::*;

use qpd::mapping::verify::verify_mapped;
use qpd::prelude::*;
use qpd::topology::ibm;

#[test]
fn all_benchmarks_route_on_their_designed_chips() {
    for spec in &qpd::benchmarks::ALL {
        let circuit = qpd::benchmarks::build(spec.name).unwrap();
        let profile = CouplingProfile::of(&circuit);
        let chip = DesignFlow::new()
            .with_allocation_trials(100)
            .with_max_buses(Some(1))
            .design(&profile)
            .unwrap();
        let mapped = SabreRouter::new(&chip).route(&circuit).unwrap();
        verify_mapped(&circuit, &mapped, &chip).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    }
}

#[test]
fn all_benchmarks_route_on_the_20q_baseline() {
    let chip = ibm::ibm_20q_4x5(BusMode::MaxFourQubit);
    let router = SabreRouter::new(&chip);
    for spec in &qpd::benchmarks::ALL {
        let circuit = qpd::benchmarks::build(spec.name).unwrap();
        let mapped = router.route(&circuit).unwrap();
        verify_mapped(&circuit, &mapped, &chip).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    }
}

#[test]
fn yield_decreases_with_noise() {
    let chip = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
    let mut last = 1.1f64;
    for sigma in [0.010, 0.030, 0.060] {
        let sim = YieldSimulator::new().with_sigma_ghz(sigma).with_trials(4_000).with_seed(1);
        let rate = sim.estimate(&chip).unwrap().rate();
        assert!(rate < last, "sigma {sigma}: {rate} !< {last}");
        last = rate;
    }
}

#[test]
fn adding_buses_to_a_design_never_helps_yield() {
    // Monotonicity along a designed series: strictly more couplings
    // cannot make fabrication easier (it adds collision constraints).
    let circuit = qpd::benchmarks::build("misex1_241").unwrap();
    let profile = CouplingProfile::of(&circuit);
    let series = DesignFlow::new().with_allocation_trials(100).design_series(&profile).unwrap();
    let sim = YieldSimulator::new().with_trials(4_000).with_seed(2);
    let rates: Vec<f64> = series.iter().map(|a| sim.estimate(a).unwrap().rate()).collect();
    for pair in rates.windows(2) {
        // Allow a small Monte Carlo wiggle.
        assert!(pair[1] <= pair[0] + 0.02, "rates {rates:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// SABRE output is always executable and faithful for random
    /// circuits on a generated architecture.
    #[test]
    fn sabre_faithful_on_generated_chips(seed in 0u64..500) {
        use qpd::circuit::random::{random_circuit, RandomCircuitSpec};
        let c = random_circuit(&RandomCircuitSpec {
            num_qubits: 9,
            num_gates: 90,
            two_qubit_fraction: 0.5,
            seed,
        });
        let profile = CouplingProfile::of(&c);
        let chip = DesignFlow::new()
            .with_allocation_trials(50)
            .with_max_buses(Some(2))
            .design(&profile)
            .unwrap();
        let mapped = SabreRouter::new(&chip).route(&c).unwrap();
        prop_assert!(verify_mapped(&c, &mapped, &chip).is_ok());
    }

    /// Yield estimates respect binomial uncertainty: two disjoint seeds
    /// agree within a generous confidence band.
    #[test]
    fn yield_estimates_are_statistically_stable(seed in 0u64..50) {
        let chip = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
        let a = YieldSimulator::new().with_trials(3_000).with_seed(seed)
            .estimate(&chip).unwrap();
        let b = YieldSimulator::new().with_trials(3_000).with_seed(seed + 1_000)
            .estimate(&chip).unwrap();
        let tolerance = 6.0 * (a.std_err() + b.std_err() + 1e-4);
        prop_assert!(
            (a.rate() - b.rate()).abs() < tolerance,
            "{} vs {} (tol {tolerance})", a.rate(), b.rate()
        );
    }
}
