//! Property-based tests on the QASM pipeline and circuit
//! transformations, spanning `qpd-circuit` through the umbrella crate.

use proptest::prelude::*;

use qpd::circuit::decompose::{decompose_to_native, lower_mcx};
use qpd::circuit::qasm;
use qpd::circuit::random::{random_circuit, RandomCircuitSpec};
use qpd::circuit::sim::apply_reversible;
use qpd::prelude::*;
use qpd::profile::CouplingProfile;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Emitting then parsing any random circuit reproduces it exactly.
    #[test]
    fn qasm_roundtrip(seed in 0u64..5_000, gates in 1usize..120, qubits in 2usize..10) {
        let c = random_circuit(&RandomCircuitSpec {
            num_qubits: qubits,
            num_gates: gates,
            two_qubit_fraction: 0.4,
            seed,
        });
        let text = qasm::to_qasm(&c).unwrap();
        let back = qasm::parse(&text).unwrap();
        prop_assert_eq!(back, c);
    }

    /// The profiler's matrix is symmetric with degrees consistent and
    /// total weight equal to the two-qubit gate count.
    #[test]
    fn profile_invariants(seed in 0u64..5_000, gates in 0usize..200, qubits in 2usize..12) {
        let c = random_circuit(&RandomCircuitSpec {
            num_qubits: qubits,
            num_gates: gates,
            two_qubit_fraction: 0.5,
            seed,
        });
        let p = CouplingProfile::of(&c);
        let mut degree_sum = 0u64;
        for i in 0..qubits {
            degree_sum += p.degree(i) as u64;
            for j in 0..qubits {
                prop_assert_eq!(p.strength(i, j), p.strength(j, i));
            }
            prop_assert_eq!(p.strength(i, i), 0);
        }
        prop_assert_eq!(degree_sum, 2 * p.total_two_qubit_gates() as u64);
        prop_assert_eq!(p.total_two_qubit_gates() as usize, c.two_qubit_gate_count());
    }

    /// Decomposition to the native basis preserves the two-qubit
    /// interaction multiset for circuits already made of CX + 1q gates,
    /// and never emits non-native gates.
    #[test]
    fn decomposition_is_native_and_stable(seed in 0u64..5_000, gates in 1usize..150) {
        let c = random_circuit(&RandomCircuitSpec {
            num_qubits: 8,
            num_gates: gates,
            two_qubit_fraction: 0.5,
            seed,
        });
        let native = decompose_to_native(&c).unwrap();
        prop_assert!(native.iter().all(|i| i.gate().is_native()));
        // CX-only circuits pass through unchanged.
        prop_assert_eq!(&native, &c);
    }

    /// Random MCX gates lower to the reversible basis and compute the
    /// same function on random basis states.
    #[test]
    fn mcx_lowering_preserves_function(
        controls in 1usize..6,
        extra in 2usize..4,
        input in 0u128..1024,
    ) {
        let n = controls + 1 + extra;
        let mut c = Circuit::new(n);
        let ctrl_ids: Vec<u32> = (0..controls as u32).collect();
        c.mcx(&ctrl_ids, controls as u32);
        let lowered = lower_mcx(&c).unwrap();
        let input = input & ((1 << n) - 1);
        let cmask = (1u128 << controls) - 1;
        let expected = if input & cmask == cmask {
            input ^ (1 << controls)
        } else {
            input
        };
        prop_assert_eq!(apply_reversible(&lowered, input).unwrap(), expected);
    }

    /// Remapping a circuit by a random permutation permutes its coupling
    /// profile accordingly.
    #[test]
    fn remap_permutes_profile(seed in 0u64..2_000, rot in 1usize..7) {
        let qubits = 8usize;
        let c = random_circuit(&RandomCircuitSpec {
            num_qubits: qubits,
            num_gates: 60,
            two_qubit_fraction: 0.6,
            seed,
        });
        let perm: Vec<u32> = (0..qubits).map(|i| ((i + rot) % qubits) as u32).collect();
        let remapped = c.remap(&perm).unwrap();
        let p0 = CouplingProfile::of(&c);
        let p1 = CouplingProfile::of(&remapped);
        for i in 0..qubits {
            for j in 0..qubits {
                prop_assert_eq!(
                    p0.strength(i, j),
                    p1.strength(perm[i] as usize, perm[j] as usize)
                );
            }
        }
    }
}
