//! Quality regression gate for the v2 explore engine (dominance-based
//! acceptance + cross-walk recombination), against recorded PR 3
//! scalarized-acceptance fronts.
//!
//! The fixtures under `tests/fixtures/pr3_front_*.json` were produced by
//! the PR 3 engine (scalarized acceptance, no recombination) at a fixed
//! quick config — `engine::AcceptanceMode::Scalarized` reproduces that
//! engine bit-for-bit, so the fixtures are re-derivable. The v2 run gets
//! the **same candidate budget** (its proposal count plus its worst-case
//! recombination offspring equals the fixture's evaluation count) and
//! must produce a front that *weakly dominates* the recorded one: every
//! recorded front point is matched or beaten on all four objectives by
//! some v2 front point. The v2 run must also be bit-identical across
//! `QPD_THREADS` ∈ {1, 2, 8} and across a kill/resume, so the quality
//! claim is a property of the engine, not of a lucky schedule.

use qpd::explore::{Checkpoint, ExploreConfig, ExploreSpace, ExploreState, Explorer, Json};

/// The recorded fixture config/front for one benchmark.
struct Fixture {
    benchmark: String,
    seed: u64,
    evaluations: u64,
    front: Vec<Vec<f64>>,
}

fn load_fixture(name: &str) -> Fixture {
    let path = format!("{}/tests/fixtures/pr3_front_{name}.json", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let doc = Json::parse(&text).expect("fixture parses");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("qpd-pr3-front/1"));
    let front = doc
        .get("front")
        .and_then(Json::as_arr)
        .expect("front array")
        .iter()
        .map(|o| {
            let objectives =
                qpd::explore::Objectives::from_json(o).expect("well-formed objectives");
            objectives.as_maximization()
        })
        .collect();
    Fixture {
        benchmark: doc.get("benchmark").and_then(Json::as_str).expect("benchmark").to_string(),
        seed: doc
            .get("config")
            .and_then(|c| c.get("seed"))
            .and_then(Json::as_str)
            .expect("seed")
            .parse()
            .expect("numeric seed"),
        evaluations: doc.get("evaluations").and_then(Json::as_u64).expect("evaluations"),
        front,
    }
}

/// The v2 configuration holding the candidate budget at the fixture's:
/// 4 walks x (1 initial + 2 rounds x 3 steps) proposals = 28, plus at
/// most 2 offspring x 2 pairs x 2 rounds = 8 recombination evaluations,
/// totalling the fixture's 36.
fn v2_config(seed: u64) -> ExploreConfig {
    ExploreConfig { walks: 4, rounds: 2, steps_per_round: 3, seed, ..ExploreConfig::quick() }
}

fn run_v2(benchmark: &str, seed: u64) -> (Explorer, ExploreState) {
    let config = v2_config(seed);
    let circuit = qpd::benchmarks::build(benchmark).expect("known benchmark");
    let explorer =
        Explorer::new(ExploreSpace::new(circuit, config.max_aux), config).expect("baseline design");
    let state = explorer.run().expect("search");
    (explorer, state)
}

fn weakly_dominates(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x >= y)
}

fn assert_front_weakly_dominates_fixture(name: &str) -> ExploreState {
    let fixture = load_fixture(name);
    assert_eq!(fixture.benchmark, name);
    let (explorer, state) = run_v2(name, fixture.seed);

    // Equal candidate budget: every yield lookup is one candidate
    // evaluation, screening is off in this config.
    let cache = explorer.caches();
    let evaluations = cache.yields.hits() + cache.yields.misses();
    assert!(
        evaluations <= fixture.evaluations,
        "{name}: v2 spent {evaluations} evaluations, fixture budget is {}",
        fixture.evaluations
    );

    let v2_front: Vec<Vec<f64>> = state
        .front_indices()
        .into_iter()
        .map(|i| state.archive[i].objectives.as_maximization())
        .collect();
    assert!(!v2_front.is_empty(), "{name}: empty v2 front");
    for recorded in &fixture.front {
        assert!(
            v2_front.iter().any(|p| weakly_dominates(p, recorded)),
            "{name}: recorded PR 3 front point {recorded:?} is not weakly dominated \
             by any v2 front point"
        );
    }
    state
}

#[test]
fn v2_front_weakly_dominates_pr3_front_sym6_145() {
    assert_front_weakly_dominates_fixture("sym6_145");
}

#[test]
fn v2_front_weakly_dominates_pr3_front_z4_268() {
    assert_front_weakly_dominates_fixture("z4_268");
}

/// The quality-gate run itself is bit-identical for every thread count
/// and across a checkpoint/kill/resume cycle — checkpoint *bytes*
/// compared, not just fronts.
#[test]
fn quality_run_is_thread_invariant_and_resumable() {
    let fixture = load_fixture("sym6_145");
    let config = v2_config(fixture.seed);
    let bytes_of = |state: &ExploreState| {
        Checkpoint {
            run: "quality".into(),
            config,
            state: state.clone(),
            stage_hit_rates: Vec::new(),
            shard: None,
        }
        .render()
    };

    let serial = qpd::par::with_threads(1, || run_v2("sym6_145", fixture.seed).1);
    let serial_bytes = bytes_of(&serial);
    for threads in [2usize, 8] {
        let pooled = qpd::par::with_threads(threads, || run_v2("sym6_145", fixture.seed).1);
        assert_eq!(serial_bytes, bytes_of(&pooled), "checkpoint differs at {threads} threads");
    }

    // Kill after round 1, round-trip through checkpoint bytes, resume on
    // a fresh engine with cold caches.
    let circuit = qpd::benchmarks::build("sym6_145").expect("known benchmark");
    let engine = Explorer::new(ExploreSpace::new(circuit.clone(), config.max_aux), config)
        .expect("baseline");
    let mut partial = engine.initial_state().expect("initial");
    engine.advance_round(&mut partial).expect("round 1");
    let restored = Checkpoint::parse(&bytes_of(&partial)).expect("parse").state;
    let fresh =
        Explorer::new(ExploreSpace::new(circuit, config.max_aux), config).expect("baseline");
    let resumed = fresh.resume(restored).expect("resume");
    assert_eq!(serial_bytes, bytes_of(&resumed), "kill/resume diverged from uninterrupted run");
}

/// The PR 3 checkpoint-schema bugfix: a committed v1 document (written
/// by the actual PR 3 binary) parses, reports version 1, migrates onto
/// scalarized-compat config, and **resumes** to the same state the PR 3
/// engine reached uninterrupted (also committed, also v1).
#[test]
fn resuming_a_committed_v1_checkpoint_matches_its_recorded_completion() {
    let fixtures = format!("{}/tests/fixtures", env!("CARGO_MANIFEST_DIR"));
    let partial_text =
        std::fs::read_to_string(format!("{fixtures}/explore_v1_partial_sym6_145.json"))
            .expect("partial v1 fixture");
    let full_text = std::fs::read_to_string(format!("{fixtures}/explore_v1_sym6_145.json"))
        .expect("full v1 fixture");

    let (mut partial, version) = Checkpoint::parse_versioned(&partial_text).expect("v1 parses");
    assert_eq!(version, 1);
    assert_eq!(partial.config.acceptance, qpd::explore::AcceptanceMode::Scalarized);
    assert!(!partial.config.recombine);
    assert_eq!(partial.config.screen_divisor, 1);

    let (full, version) = Checkpoint::parse_versioned(&full_text).expect("v1 parses");
    assert_eq!(version, 1);
    assert_eq!(partial.state.rounds_done, 1, "fixture should be mid-run");
    assert_eq!(full.state.rounds_done, 2, "fixture should be complete");

    // The partial fixture was cut by running one round of the same
    // seed/budget; extend its round budget to the full run's and resume.
    partial.config.rounds = full.config.rounds;
    let circuit = qpd::benchmarks::build("sym6_145").expect("known benchmark");
    let engine = Explorer::new(ExploreSpace::new(circuit, partial.config.max_aux), partial.config)
        .expect("baseline");
    let resumed = engine.resume(partial.state).expect("resume");
    assert_eq!(
        resumed, full.state,
        "migrated v1 resume diverged from the PR 3 engine's recorded completion"
    );
}
