//! End-to-end artifact generation: the figure outputs must stay
//! machine-consumable (CSV schema, SVG well-formedness, chip format
//! round-trips through real designed chips).

use qpd::eval::plot::svg_scatter;
use qpd::eval::report::{run_csv, CSV_HEADER};
use qpd::eval::runner::{run_benchmark, EvalSettings};
use qpd::prelude::*;
use qpd::topology::format;

#[test]
fn fig10_csv_schema_is_stable() {
    let run = run_benchmark("sym6_145", &EvalSettings::quick()).unwrap();
    let csv = run_csv(&run);
    let columns = CSV_HEADER.split(',').count();
    for line in csv.lines() {
        assert_eq!(line.split(',').count(), columns, "row `{line}`");
    }
    // Every configuration label appears.
    for label in ["ibm", "eff-full", "eff-rd-bus", "eff-5-freq", "eff-layout-only"] {
        assert!(csv.contains(label), "missing {label}");
    }
}

#[test]
fn fig10_svg_renders_real_runs() {
    let run = run_benchmark("sym6_145", &EvalSettings::quick()).unwrap();
    let svg = svg_scatter(&run);
    assert!(svg.starts_with("<svg"));
    assert!(svg.trim_end().ends_with("</svg>"));
    // One circle per data point plus five legend entries.
    assert_eq!(svg.matches("<circle").count(), run.points.len() + 5);
}

#[test]
fn designed_chips_roundtrip_through_the_text_format() {
    let circuit = qpd::benchmarks::build("dc1_220").unwrap();
    let profile = CouplingProfile::of(&circuit);
    let chip = DesignFlow::new()
        .with_allocation_trials(100)
        .with_allocation_sweeps(1)
        .design(&profile)
        .unwrap();
    let text = format::to_text(&chip);
    let back = format::from_text(&text).unwrap();
    assert_eq!(back, chip);
    // The reloaded chip simulates identically.
    let sim = YieldSimulator::new().with_trials(2_000).with_seed(8);
    assert_eq!(sim.estimate(&chip).unwrap(), sim.estimate(&back).unwrap());
}

#[test]
fn analytic_screen_upper_bounds_designed_chips() {
    let circuit = qpd::benchmarks::build("sym6_145").unwrap();
    let profile = CouplingProfile::of(&circuit);
    let chip = DesignFlow::new()
        .with_allocation_trials(100)
        .with_allocation_sweeps(1)
        .design(&profile)
        .unwrap();
    let plan = chip.frequencies().unwrap();
    let analytic = qpd::yield_sim::pairwise_yield_estimate(
        &chip,
        plan.as_slice(),
        0.030,
        &qpd::yield_sim::CollisionParams::default(),
    );
    let mc = YieldSimulator::new().with_trials(20_000).with_seed(2).estimate(&chip).unwrap().rate();
    assert!(analytic >= mc - 0.02, "pairwise product {analytic} must upper-bound Monte Carlo {mc}");
    assert!(analytic > 0.0);
}
