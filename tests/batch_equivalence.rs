//! The batched-yield contract (PR 7 tentpole): one
//! `YieldSimulator::evaluate_batch` call over a round's worth of
//! candidates is **bit-identical** to N singleton `estimate` calls —
//! success counts, content keys, and (through the explorer) checkpoint
//! bytes — for every `QPD_THREADS` value, with mixed hardware families
//! in one batch, and across a kill/resume mid-round.

use proptest::prelude::*;

use qpd::explore::{
    Checkpoint, ExploreConfig, ExploreSpace, ExploreState, Explorer, HardwareSweep,
};
use qpd::prelude::*;
use qpd::yield_sim::{BatchRequest, HardwareFamily};

/// A mixed batch over both IBM baselines: every family, two seeds, two
/// trial budgets (one below the chunk count to exercise the empty-chunk
/// path), plus a duplicate request that must land in an existing group.
fn mixed_requests(arches: &[Architecture], seed: u64) -> Vec<(YieldSimulator, &Architecture)> {
    let mut requests = Vec::new();
    for (i, arch) in arches.iter().enumerate() {
        for (j, family) in HardwareFamily::ALL.iter().enumerate() {
            let sim = YieldSimulator::new()
                .with_trials(if j == 1 { 7 } else { 300 })
                .with_seed(seed ^ (i as u64))
                .with_hardware(*family);
            requests.push((sim, arch));
        }
    }
    // Duplicate of the first request: identical stream *and* lane group.
    let first = requests[0];
    requests.push(first);
    requests
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `evaluate_batch` over a mixed-family, mixed-topology batch
    /// returns exactly the estimates N singleton `estimate` calls
    /// produce — same successes, trials, and content keys — at every
    /// worker count.
    #[test]
    fn batch_equals_singletons_across_thread_counts(seed in 0u64..1_000) {
        let arches = [
            qpd::topology::ibm::ibm_16q_2x8(BusMode::TwoQubitOnly),
            qpd::topology::ibm::ibm_20q_4x5(BusMode::TwoQubitOnly),
        ];
        let requests = mixed_requests(&arches, seed);
        let singles: Vec<_> = requests
            .iter()
            .map(|(sim, arch)| sim.estimate(arch).unwrap())
            .collect();
        for threads in [1usize, 2, 8] {
            let batched = qpd::par::with_threads(threads, || {
                YieldSimulator::evaluate_batch(
                    &requests
                        .iter()
                        .map(|(sim, arch)| BatchRequest { simulator: *sim, arch })
                        .collect::<Vec<_>>(),
                )
            });
            prop_assert_eq!(batched.len(), singles.len());
            for (i, (batch, single)) in batched.into_iter().zip(&singles).enumerate() {
                let batch = batch.unwrap();
                prop_assert_eq!(&batch, single,
                    "request {} diverged at {} threads", i, threads);
            }
        }
    }
}

/// An adaptive (screened) mixed-family config: every step runs *two*
/// batches — the screening batch and the full-fidelity re-check batch —
/// with all three families in flight, the heaviest batched path.
fn batched_config(seed: u64) -> ExploreConfig {
    ExploreConfig {
        walks: 3,
        rounds: 2,
        steps_per_round: 2,
        seed,
        max_aux: 1,
        alloc_trials: 60,
        yield_trials: 400,
        hardware: HardwareSweep::All,
        ..ExploreConfig::adaptive_quick()
    }
}

fn batched_explorer(seed: u64) -> Explorer {
    let mut c = Circuit::new(6);
    c.cx(0, 1).cx(1, 2).cx(3, 4).cx(4, 5).cx(0, 3).cx(1, 4).cx(2, 5);
    c.cx(0, 4).cx(1, 3).cx(1, 5).cx(2, 4);
    let config = batched_config(seed);
    Explorer::new(ExploreSpace::new(c, config.max_aux), config).unwrap()
}

fn batched_bytes(seed: u64, state: &ExploreState) -> String {
    Checkpoint {
        run: "batch".into(),
        config: batched_config(seed),
        state: state.clone(),
        stage_hit_rates: Vec::new(),
        shard: None,
    }
    .render()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Batched rounds submit each step's mixed-family proposals as one
    /// batch; the resulting checkpoint bytes must be identical for
    /// `QPD_THREADS` ∈ {1, 2, 8}, and every archived point must be
    /// exactly what a singleton `evaluate` of its spec produces (same
    /// content key, same objectives).
    #[test]
    fn batched_rounds_are_thread_invariant_and_singleton_exact(seed in 0u64..1_000) {
        let serial = qpd::par::with_threads(1, || batched_explorer(seed).run().unwrap());
        prop_assert!(!serial.front_indices().is_empty());
        let serial_bytes = batched_bytes(seed, &serial);
        for threads in [2usize, 8] {
            let pooled =
                qpd::par::with_threads(threads, || batched_explorer(seed).run().unwrap());
            prop_assert_eq!(&serial_bytes, &batched_bytes(seed, &pooled),
                "batched checkpoint bytes differ at {} threads", threads);
        }
        // Every archived point is bit-equal to a fresh singleton
        // evaluation of its spec: the batch landed the same values
        // under the same content keys.
        let fresh = batched_explorer(seed);
        for entry in &serial.archive {
            let single = fresh.evaluate(&entry.spec).unwrap();
            prop_assert_eq!(&single, entry,
                "batched archive entry diverges from singleton evaluation");
        }
    }

    /// A batched run killed after one round and resumed on a fresh
    /// engine (cold caches, as after a process kill) reproduces the
    /// uninterrupted run exactly, checkpoint bytes included.
    #[test]
    fn batched_kill_resume_mid_round_matches_uninterrupted(seed in 0u64..1_000) {
        let engine = batched_explorer(seed);
        let uninterrupted = engine.run().unwrap();
        let mut partial = engine.initial_state().unwrap();
        engine.advance_round(&mut partial).unwrap();
        let bytes = batched_bytes(seed, &partial);
        let restored = Checkpoint::parse(&bytes).unwrap();
        prop_assert_eq!(&restored.state, &partial);
        let resumed = batched_explorer(seed).resume(restored.state).unwrap();
        prop_assert_eq!(&resumed, &uninterrupted);
        prop_assert_eq!(
            batched_bytes(seed, &resumed),
            batched_bytes(seed, &uninterrupted)
        );
    }
}
