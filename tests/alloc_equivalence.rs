//! The cold-eval allocator contract (PR 10 tentpole): the overhauled
//! allocation path — shared fabrication-noise planes, reusable decision
//! scratch, and batched cross-proposal allocation — produces
//! **bit-identical** `FrequencyPlan`s to the retained reference path
//! and to fresh singleton calls, for every hardware family, with
//! refinement sweeps on, across scratch reuse, and for every
//! `QPD_THREADS` value.

use proptest::prelude::*;

use std::sync::Arc;

use qpd::design::{LayoutJob, StagePlan};
use qpd::prelude::*;
use qpd::yield_sim::{
    AllocScratch, CompiledRegions, FabricationModel, HardwareFamily, LocalYieldEvaluator,
};

/// Small mixed-topology pool: both IBM baselines, trimmed trial budget
/// so three-family sweeps stay fast.
fn arches() -> [Architecture; 2] {
    [
        qpd::topology::ibm::ibm_16q_2x8(BusMode::TwoQubitOnly),
        qpd::topology::ibm::ibm_20q_4x5(BusMode::TwoQubitOnly),
    ]
}

fn allocator(family: HardwareFamily, seed: u64) -> FrequencyAllocator {
    FrequencyAllocator::new()
        .with_hardware(family)
        .with_trials(250)
        .with_refinement_sweeps(2)
        .with_seed(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The new compiled + shared-scratch decision kernel counts exactly
    /// what the retained per-decision path
    /// ([`LocalYieldEvaluator::evaluate_candidates`], which compiles the
    /// region on the fly with a fresh scratch) counts — per qubit, per
    /// candidate, for every hardware family, with one scratch carried
    /// across every decision.
    #[test]
    fn scratch_decision_kernel_matches_retained_path(seed in 0u64..1_000) {
        for family in HardwareFamily::ALL {
            let model = family.model();
            let evaluator = LocalYieldEvaluator::new(
                240,
                FabricationModel::new(model.effective_sigma_ghz(
                    FabricationModel::PAPER_SIGMA_GHZ,
                )),
                model.collision_params(),
                seed,
            );
            let candidates = [5.05, 5.12, 5.19, 5.26, 5.33];
            for arch in &arches() {
                let regions = CompiledRegions::new(arch);
                let mut scratch = AllocScratch::new();
                // A deterministic partial assignment: every third qubit
                // still undecided, the rest staggered over the band.
                let assigned: Vec<Option<f64>> = (0..arch.num_qubits())
                    .map(|q| (q % 3 != 0).then(|| 5.0 + 0.01 * ((q * 7) % 35) as f64))
                    .collect();
                for q in (0..arch.num_qubits()).filter(|q| q % 3 == 0) {
                    let retained =
                        evaluator.evaluate_candidates(arch, &assigned, q, &candidates);
                    let shared = evaluator.evaluate_candidates_compiled_with(
                        &regions, &assigned, q, &candidates, &mut scratch,
                    );
                    prop_assert_eq!(retained, shared,
                        "decision kernel divergence for {:?}, qubit {}", family, q);
                }
            }
        }
    }

    /// One `allocate_batch` over a mixed-family, mixed-topology batch
    /// (with a duplicate entry) equals per-arch singleton `allocate`
    /// calls, at every worker count — the planes and decision buffers
    /// shared across the batch never leak between entries.
    #[test]
    fn batch_equals_singletons_across_thread_counts(seed in 0u64..1_000) {
        for family in HardwareFamily::ALL {
            let pool = arches();
            let batch = [&pool[0], &pool[1], &pool[0]];
            let alloc = allocator(family, seed);
            let singles: Vec<FrequencyPlan> =
                batch.iter().map(|arch| alloc.allocate(arch)).collect();
            for threads in [1usize, 2, 8] {
                let batched =
                    qpd::par::with_threads(threads, || alloc.allocate_batch(&batch));
                prop_assert_eq!(&batched, &singles,
                    "batch/singleton divergence for {:?} at {} threads", family, threads);
            }
        }
    }

    /// A scratch warmed by allocations for *other* topologies, trial
    /// budgets, and families is transparent: `allocate_with` on it
    /// reproduces a fresh `allocate` bit-for-bit.
    #[test]
    fn warmed_scratch_is_transparent(seed in 0u64..1_000) {
        let pool = arches();
        let mut scratch = AllocScratch::new();
        // Warm with a different family, budget, and topology mix.
        let warmer = allocator(HardwareFamily::TunableCoupler, seed ^ 0x5a5a)
            .with_trials(120);
        let regions = CompiledRegions::new(&pool[1]);
        warmer.allocate_with(&pool[1], &regions, &mut scratch);
        for family in HardwareFamily::ALL {
            let alloc = allocator(family, seed);
            for arch in &pool {
                let regions = CompiledRegions::new(arch);
                let reused = alloc.allocate_with(arch, &regions, &mut scratch);
                prop_assert_eq!(reused, alloc.allocate(arch),
                    "warmed scratch diverges for {:?}", family);
            }
        }
    }
}

/// The stage-graph face of the batch path: `design_with_layout_batch`
/// over mixed frequency/hardware jobs equals per-job
/// `design_with_layout` calls on correspondingly configured flows, and
/// the shared assemble scratch surviving `StagePlan::clear` (the
/// cold-eval lever) never changes a result.
#[test]
fn layout_batch_matches_singleton_flows_and_survives_clear() {
    let mut c = Circuit::new(6);
    c.cx(0, 1).cx(1, 2).cx(3, 4).cx(4, 5).cx(0, 3).cx(2, 5);
    let profile = CouplingProfile::of(&c);
    let base = DesignFlow::new().with_allocation_trials(150).with_allocation_seed(17);
    let (coords, squares) = {
        let arch = base.design(&profile).unwrap();
        (arch.coords().to_vec(), arch.four_qubit_buses().to_vec())
    };
    let jobs: Vec<LayoutJob<'_>> = HardwareFamily::ALL
        .iter()
        .map(|&hardware| LayoutJob {
            coords: &coords,
            squares: &squares,
            frequency: FrequencyStrategy::Optimized,
            hardware,
        })
        .collect();
    let singles: Vec<Architecture> = jobs
        .iter()
        .map(|j| {
            // A fresh plan per job: no cache or scratch sharing at all.
            let flow = DesignFlow::new()
                .with_allocation_trials(150)
                .with_allocation_seed(17)
                .with_plan(Arc::new(StagePlan::new()))
                .with_frequency_strategy(j.frequency)
                .with_hardware(j.hardware);
            flow.design_with_layout(&coords, &squares).unwrap()
        })
        .collect();
    for threads in [1usize, 2, 8] {
        let batched =
            qpd::par::with_threads(threads, || base.design_with_layout_batch(&jobs).unwrap());
        assert_eq!(batched, singles, "layout batch diverges at {threads} threads");
        // Cold caches, warm scratch — the bench_snapshot cold-eval
        // shape. The surviving scratch must be invisible in results.
        base.plan().clear();
        let after_clear =
            qpd::par::with_threads(threads, || base.design_with_layout_batch(&jobs).unwrap());
        assert_eq!(after_clear, singles, "post-clear batch diverges at {threads} threads");
    }
}
