//! Flow-equivalence properties of the stage-graph refactor: the staged,
//! memoized [`DesignFlow`] facade must reproduce the retained monolithic
//! computation bit-for-bit — across bus/frequency strategies, auxiliary
//! counts, and placement variants; cold, warm, and under cache-eviction
//! pressure — and a dirtied-stage (warm-engine) evaluation must equal a
//! cold-engine evaluation of the same candidate.

use proptest::prelude::*;

use qpd::design::StageKind;
use qpd::explore::{
    BusSpec, CandidateSpec, ExploreConfig, ExploreSpace, Explorer, HardwareFamily, PlacementVariant,
};
use qpd::prelude::*;
use qpd::profile::CouplingProfile;

/// Strategy: a random connected-ish weighted edge list over `3..=n`
/// qubits (self-loops dropped; a chain backbone keeps placement happy).
fn arb_profile(max_qubits: usize) -> impl Strategy<Value = CouplingProfile> {
    (3..=max_qubits).prop_flat_map(move |n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n, 0..n, 1u32..20), 1..=max_edges.min(16)).prop_map(
            move |raw| {
                let mut edges: Vec<(usize, usize, u32)> =
                    (0..n - 1).map(|i| (i, i + 1, 1)).collect();
                edges.extend(
                    raw.into_iter()
                        .filter(|(a, b, _)| a != b)
                        .map(|(a, b, w)| (a.min(b), a.max(b), w)),
                );
                CouplingProfile::from_edges(n, &edges)
            },
        )
    })
}

/// Strategy: one full knob assignment of the flow.
fn arb_flow() -> impl Strategy<Value = DesignFlow> {
    (
        prop_oneof![Just(None), (0u64..100).prop_map(Some)],
        proptest::bool::ANY,
        0usize..3,
        prop_oneof![Just(None), Just(Some(1usize)), Just(Some(3usize))],
        0u64..8,
    )
        .prop_map(|(random_seed, five_freq, aux, max_buses, alloc_seed)| {
            let mut flow = DesignFlow::new()
                .with_allocation_trials(60)
                .with_allocation_seed(alloc_seed)
                .with_auxiliary_qubits(aux)
                .with_max_buses(max_buses);
            if let Some(seed) = random_seed {
                flow = flow.with_bus_strategy(BusStrategy::Random { seed });
            }
            if five_freq {
                flow = flow.with_frequency_strategy(FrequencyStrategy::FiveFrequency);
            }
            flow
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The facade reproduces the monolithic reference bit-for-bit, on a
    /// cold plan, on a warm plan, and with the caches squeezed to a
    /// single entry per stage (eviction on almost every call).
    #[test]
    fn facade_equals_monolithic_reference(
        profile in arb_profile(9),
        flow in arb_flow(),
    ) {
        let reference = flow.design_reference(&profile).unwrap();
        let cold = flow.design(&profile).unwrap();
        prop_assert_eq!(&cold, &reference, "cold facade diverged");
        let warm = flow.design(&profile).unwrap();
        prop_assert_eq!(&warm, &reference, "warm facade diverged");
        let squeezed = flow.clone().with_memo_cap(Some(1));
        prop_assert_eq!(&squeezed.design(&profile).unwrap(), &reference,
            "eviction changed an output");
        prop_assert_eq!(&squeezed.design(&profile).unwrap(), &reference);
    }

    /// A frequency-strategy change on a warm plan reuses placement and
    /// bus selection (cache hits, no new misses) — and still matches the
    /// monolithic reference of the changed flow.
    #[test]
    fn freq_change_reuses_upstream_stages(
        profile in arb_profile(8),
        flow in arb_flow(),
    ) {
        let flow = flow.with_frequency_strategy(FrequencyStrategy::Optimized);
        flow.design(&profile).unwrap();
        let upstream_misses: u64 = flow.plan().stats()[..2].iter().map(|s| s.misses).sum();
        let five = flow.clone().with_frequency_strategy(FrequencyStrategy::FiveFrequency);
        let staged = five.design(&profile).unwrap();
        let stats = five.plan().stats();
        prop_assert_eq!(stats[..2].iter().map(|s| s.misses).sum::<u64>(), upstream_misses,
            "a frequency-only change re-ran placement or bus selection");
        prop_assert!(stats[0].hits >= 1);
        prop_assert_eq!(&staged, &five.design_reference(&profile).unwrap());
    }
}

/// A 6-qubit program with diagonal demand (squares are attractive).
fn demo_circuit() -> Circuit {
    let mut c = Circuit::new(6);
    for _ in 0..3 {
        c.cx(0, 1).cx(1, 2).cx(3, 4).cx(4, 5).cx(0, 3).cx(1, 4).cx(2, 5);
    }
    c.cx(0, 4).cx(1, 3).cx(1, 5).cx(2, 4);
    c
}

fn tiny_config(seed: u64) -> ExploreConfig {
    ExploreConfig {
        alloc_trials: 60,
        yield_trials: 400,
        max_aux: 2,
        seed,
        ..ExploreConfig::quick()
    }
}

fn fresh_explorer(seed: u64) -> Explorer {
    let config = tiny_config(seed);
    Explorer::new(ExploreSpace::new(demo_circuit(), config.max_aux), config).unwrap()
}

/// Strategy: a candidate spec over the demo space's knob surface,
/// covering both placement variants, aux counts, all bus kinds, and
/// every hardware family (the fifth knob).
fn arb_spec() -> impl Strategy<Value = CandidateSpec> {
    (0usize..4, proptest::bool::ANY, 0usize..3, proptest::bool::ANY, 0u64..50, 0usize..3).prop_map(
        |(bus_kind, five, aux, transposed, seed, family)| CandidateSpec {
            bus: match bus_kind {
                0 => BusSpec::Weighted { count: 0 },
                1 => BusSpec::Weighted { count: 2 },
                2 => BusSpec::Random { seed, count: 1 },
                _ => BusSpec::Random { seed, count: 2 },
            },
            frequency: if five {
                FrequencyStrategy::FiveFrequency
            } else {
                FrequencyStrategy::Optimized
            },
            aux_qubits: aux,
            placement: if transposed {
                PlacementVariant::Transposed
            } else {
                PlacementVariant::Identity
            },
            hardware: HardwareFamily::ALL[family],
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The dirtied-stage run equals the cold run: evaluating `b` on an
    /// engine warmed by `a` (only the stages `b` dirties re-run; the
    /// rest come from cache) is bit-identical to evaluating `b` on a
    /// fresh engine — for every knob-diff shape, including placement
    /// variants and auxiliary counts.
    #[test]
    fn dirtied_stage_run_equals_cold_run(
        seed in 0u64..100,
        a in arb_spec(),
        b in arb_spec(),
    ) {
        let warm_engine = fresh_explorer(seed);
        let a_eval = warm_engine.evaluate(&a).unwrap();
        let b_warm = warm_engine.evaluate(&b).unwrap();

        let cold_engine = fresh_explorer(seed);
        let b_cold = cold_engine.evaluate(&b).unwrap();
        prop_assert_eq!(&b_warm, &b_cold, "warm-engine evaluation diverged from cold");

        // And re-evaluating `a` afterwards still matches its original.
        prop_assert_eq!(&warm_engine.evaluate(&a).unwrap(), &a_eval);

        // The dirty set is consistent with what actually re-ran: when
        // nothing upstream of routing is dirty, the route cache gained
        // no misses serving `b`.
        let dirty = b.dirty_stages(&a);
        if !dirty.contains(StageKind::Routing) {
            let before = cold_engine.caches().routes.misses();
            cold_engine.evaluate(&a).unwrap();
            prop_assert_eq!(cold_engine.caches().routes.misses(), before,
                "clean routing stage re-ran");
        }
        // Sanity on the mapping itself: the dirty set is empty exactly
        // when no knob differs (every spec field feeds some stage).
        prop_assert!(a.dirty_stages(&a).is_empty());
        prop_assert_eq!(dirty.is_empty(), a == b);
        prop_assert_eq!(dirty, a.dirty_stages(&b), "dirty set should be symmetric");
    }
}
