//! Determinism of the design-space explorer (the PR 3 subsystem): the
//! Pareto front and the checkpoint *bytes* must be identical for every
//! `QPD_THREADS` value, and a killed-then-resumed run must reproduce the
//! uninterrupted run exactly — including when the resume crosses a
//! process boundary (state round-tripped through checkpoint bytes and a
//! fresh engine with cold caches).

use proptest::prelude::*;

use qpd::explore::{Checkpoint, ExploreConfig, ExploreSpace, Explorer, HardwareSweep};
use qpd::prelude::*;

/// A small program with enough diagonal demand for square moves.
fn demo_circuit(extra_layers: usize) -> Circuit {
    let mut c = Circuit::new(6);
    for _ in 0..(1 + extra_layers) {
        c.cx(0, 1).cx(1, 2).cx(3, 4).cx(4, 5).cx(0, 3).cx(1, 4).cx(2, 5);
    }
    c.cx(0, 4).cx(1, 3).cx(1, 5).cx(2, 4);
    c
}

fn tiny_config(seed: u64) -> ExploreConfig {
    ExploreConfig {
        walks: 3,
        rounds: 2,
        steps_per_round: 2,
        seed,
        max_aux: 1,
        alloc_trials: 60,
        yield_trials: 400,
        ..ExploreConfig::quick()
    }
}

fn explorer(seed: u64, extra_layers: usize) -> Explorer {
    let config = tiny_config(seed);
    Explorer::new(ExploreSpace::new(demo_circuit(extra_layers), config.max_aux), config).unwrap()
}

fn checkpoint_bytes(seed: u64, state: &qpd::explore::ExploreState) -> String {
    Checkpoint {
        run: "prop".into(),
        config: tiny_config(seed),
        state: state.clone(),
        stage_hit_rates: Vec::new(),
        shard: None,
    }
    .render()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The satellite requirement: front and checkpoint bytes are
    /// bit-identical for `QPD_THREADS` ∈ {1, 2, 8}.
    #[test]
    fn front_and_checkpoint_bytes_invariant_under_thread_count(
        seed in 0u64..1_000,
        extra_layers in 0usize..2,
    ) {
        let serial = qpd::par::with_threads(1, || explorer(seed, extra_layers).run().unwrap());
        let serial_bytes = checkpoint_bytes(seed, &serial);
        prop_assert!(!serial.front_indices().is_empty());
        for threads in [2usize, 8] {
            let pooled =
                qpd::par::with_threads(threads, || explorer(seed, extra_layers).run().unwrap());
            prop_assert_eq!(&serial.front_indices(), &pooled.front_indices(),
                "front differs at {} threads", threads);
            prop_assert_eq!(&serial_bytes, &checkpoint_bytes(seed, &pooled),
                "checkpoint bytes differ at {} threads", threads);
        }
    }

    /// A run cut after one round, persisted to checkpoint bytes, and
    /// resumed on a fresh engine (cold caches, as after a process kill)
    /// reproduces the uninterrupted run exactly.
    #[test]
    fn resume_from_checkpoint_equals_uninterrupted(seed in 0u64..1_000) {
        let engine = explorer(seed, 0);
        let uninterrupted = engine.run().unwrap();

        let mut partial = engine.initial_state().unwrap();
        engine.advance_round(&mut partial).unwrap();
        let bytes = checkpoint_bytes(seed, &partial);
        let restored = Checkpoint::parse(&bytes).unwrap();
        prop_assert_eq!(&restored.state, &partial);

        let fresh = explorer(seed, 0);
        let resumed = fresh.resume(restored.state).unwrap();
        prop_assert_eq!(&resumed, &uninterrupted);
        prop_assert_eq!(
            checkpoint_bytes(seed, &resumed),
            checkpoint_bytes(seed, &uninterrupted)
        );
    }
}

fn capped_config(seed: u64) -> ExploreConfig {
    ExploreConfig { archive_cap: Some(5), ..tiny_config(seed) }
}

fn capped_explorer(seed: u64) -> Explorer {
    let config = capped_config(seed);
    Explorer::new(ExploreSpace::new(demo_circuit(0), config.max_aux), config).unwrap()
}

fn capped_checkpoint_bytes(seed: u64, state: &qpd::explore::ExploreState) -> String {
    Checkpoint {
        run: "prop".into(),
        config: capped_config(seed),
        state: state.clone(),
        stage_hit_rates: Vec::new(),
        shard: None,
    }
    .render()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// ε-archive pruning is deterministic across `QPD_THREADS`: the
    /// pruned archive's checkpoint bytes are bit-identical for every
    /// worker count, and the archive respects the cap.
    #[test]
    fn pruned_archive_is_thread_invariant(seed in 0u64..1_000) {
        let serial = qpd::par::with_threads(1, || capped_explorer(seed).run().unwrap());
        prop_assert!(serial.archive.len() <= 5, "archive over its cap");
        prop_assert!(!serial.front_indices().is_empty());
        let serial_bytes = capped_checkpoint_bytes(seed, &serial);
        for threads in [2usize, 8] {
            let pooled =
                qpd::par::with_threads(threads, || capped_explorer(seed).run().unwrap());
            prop_assert_eq!(&serial_bytes, &capped_checkpoint_bytes(seed, &pooled),
                "pruned checkpoint bytes differ at {} threads", threads);
        }
    }

    /// A capped run cut mid-way, persisted, and resumed on a fresh
    /// engine reproduces the uninterrupted capped run exactly — pruning
    /// happens at the round barrier, inside the checkpointed state.
    #[test]
    fn pruned_resume_equals_uninterrupted(seed in 0u64..1_000) {
        let engine = capped_explorer(seed);
        let uninterrupted = engine.run().unwrap();
        let mut partial = engine.initial_state().unwrap();
        engine.advance_round(&mut partial).unwrap();
        let bytes = capped_checkpoint_bytes(seed, &partial);
        let restored = Checkpoint::parse(&bytes).unwrap();
        prop_assert_eq!(restored.config.archive_cap, Some(5),
            "archive_cap lost in the checkpoint round-trip");
        let resumed = capped_explorer(seed).resume(restored.state).unwrap();
        prop_assert_eq!(&resumed, &uninterrupted);
    }
}

fn mixed_config(seed: u64) -> ExploreConfig {
    ExploreConfig { hardware: HardwareSweep::All, ..tiny_config(seed) }
}

fn mixed_explorer(seed: u64) -> Explorer {
    let config = mixed_config(seed);
    Explorer::new(ExploreSpace::new(demo_circuit(0), config.max_aux), config).unwrap()
}

fn mixed_checkpoint_bytes(seed: u64, state: &qpd::explore::ExploreState) -> String {
    Checkpoint {
        run: "prop".into(),
        config: mixed_config(seed),
        state: state.clone(),
        stage_hit_rates: Vec::new(),
        shard: None,
    }
    .render()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The hardware knob keeps the determinism contract: a model-mix
    /// sweep (`--hardware all`, walks seeded across the three families
    /// and family-cycling moves in the proposal stream) produces
    /// bit-identical checkpoint bytes for every `QPD_THREADS` value.
    #[test]
    fn model_mix_sweep_is_thread_invariant(seed in 0u64..1_000) {
        let serial = qpd::par::with_threads(1, || mixed_explorer(seed).run().unwrap());
        prop_assert!(!serial.front_indices().is_empty());
        let serial_bytes = mixed_checkpoint_bytes(seed, &serial);
        prop_assert!(serial_bytes.contains("qpd-explore-checkpoint/3"),
            "mixed sweep should carry the v3 schema tag");
        for threads in [2usize, 8] {
            let pooled =
                qpd::par::with_threads(threads, || mixed_explorer(seed).run().unwrap());
            prop_assert_eq!(&serial_bytes, &mixed_checkpoint_bytes(seed, &pooled),
                "mixed-sweep checkpoint bytes differ at {} threads", threads);
        }
    }

    /// A model-mix run cut after one round, persisted through the v3
    /// checkpoint, and resumed on a fresh engine reproduces the
    /// uninterrupted run exactly — the family knob survives the
    /// round-trip inside every walk and archive spec.
    #[test]
    fn model_mix_resume_equals_uninterrupted(seed in 0u64..1_000) {
        let engine = mixed_explorer(seed);
        let uninterrupted = engine.run().unwrap();
        let mut partial = engine.initial_state().unwrap();
        engine.advance_round(&mut partial).unwrap();
        let bytes = mixed_checkpoint_bytes(seed, &partial);
        let restored = Checkpoint::parse(&bytes).unwrap();
        prop_assert_eq!(&restored.state, &partial,
            "v3 round-trip changed the mixed-sweep state");
        prop_assert_eq!(restored.config.hardware, HardwareSweep::All,
            "hardware sweep lost in the checkpoint round-trip");
        let resumed = mixed_explorer(seed).resume(restored.state).unwrap();
        prop_assert_eq!(&resumed, &uninterrupted);
        prop_assert_eq!(
            mixed_checkpoint_bytes(seed, &resumed),
            mixed_checkpoint_bytes(seed, &uninterrupted)
        );
    }
}
