//! Offline shim for the subset of `criterion` this workspace's benches
//! use: `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::{iter, iter_batched}`,
//! [`BatchSize`], and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it runs a short
//! warm-up, then times `sample_size` batches and reports the mean,
//! median, and min wall-clock time per iteration. That keeps
//! `cargo bench` useful for coarse comparisons while compiling (and
//! running) with no external dependencies.
//!
//! Extensions over the real criterion API (used by `bench_snapshot`):
//!
//! - every benchmark's summary is recorded as a [`BenchResult`],
//!   retrievable via [`Criterion::take_results`];
//! - with `QPD_BENCH_JSON=1` in the environment each benchmark also
//!   prints one machine-readable JSON line ([`BenchResult::json_line`]).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Summary statistics of one benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark id (`group/name`).
    pub id: String,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Median seconds per iteration.
    pub median_s: f64,
    /// Minimum seconds per iteration.
    pub min_s: f64,
    /// Number of timed samples (warm-up excluded).
    pub samples: usize,
}

impl BenchResult {
    /// One line of JSON, the machine-readable counterpart of the human
    /// summary line. Hand-rolled (the workspace serde is a no-op shim).
    pub fn json_line(&self) -> String {
        format!(
            "{{\"id\":\"{}\",\"mean_s\":{:e},\"median_s\":{:e},\"min_s\":{:e},\"samples\":{}}}",
            json_escape(&self.id),
            self.mean_s,
            self.median_s,
            self.min_s,
            self.samples
        )
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Median of unsorted samples; the mean of the middle two for even
/// counts.
fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// How a batched setup's output size relates to the measurement batch.
/// Only a hint in real criterion; ignored here beyond API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: large batches.
    SmallInput,
    /// Large inputs: batch per iteration.
    LargeInput,
    /// One measured call per setup.
    PerIteration,
}

/// Times closures; handed to `bench_function` callbacks.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `iterations` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.min(self.criterion.max_samples);
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        // One warm-up sample, then the timed samples.
        for i in 0..=samples {
            let mut b = Bencher { iterations: 1, elapsed: Duration::ZERO };
            f(&mut b);
            if i > 0 {
                per_iter.push(b.elapsed.as_secs_f64());
            }
        }
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        let result = BenchResult {
            id,
            mean_s: mean,
            median_s: median(&per_iter),
            min_s: min,
            samples: per_iter.len(),
        };
        println!(
            "{:<60} mean {:>12} median {:>12} min {:>12}",
            result.id,
            format_time(result.mean_s),
            format_time(result.median_s),
            format_time(result.min_s)
        );
        if self.criterion.emit_json {
            println!("{}", result.json_line());
        }
        self.criterion.results.push(result);
        self
    }

    /// Ends the group (report flushing in real criterion; a no-op here).
    pub fn finish(&mut self) {}
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    max_samples: usize,
    emit_json: bool,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        // A low cap keeps `cargo bench` runs short; raise with
        // QPD_BENCH_SAMPLES when real measurements are wanted.
        let max_samples = std::env::var("QPD_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            // 0 would collect no samples and report NaN; treat it as 1.
            .map(|n: usize| n.max(1))
            .unwrap_or(3);
        let emit_json =
            std::env::var("QPD_BENCH_JSON").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
        Criterion { max_samples, emit_json, results: Vec::new() }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, criterion: self }
    }

    /// Registers and runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.benchmark_group(id.clone()).bench_function("", f);
        self
    }

    /// Drains the accumulated per-benchmark summaries, in execution
    /// order. Shim extension: `bench_snapshot` times kernels through
    /// this driver and serializes what it takes from here.
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running each group, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_criterion(max_samples: usize) -> Criterion {
        Criterion { max_samples, emit_json: false, results: Vec::new() }
    }

    #[test]
    fn group_runs_and_times() {
        let mut c = test_criterion(2);
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        // 1 warm-up + 2 samples, one iteration each.
        assert_eq!(calls, 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = test_criterion(3);
        let mut group = c.benchmark_group("batched");
        group.sample_size(3);
        let mut setups = 0u32;
        group.bench_function("count", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| x * 2,
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(2.5e-9).ends_with("ns"));
        assert!(format_time(2.5e-6).ends_with("µs"));
        assert!(format_time(2.5e-3).ends_with("ms"));
        assert!(format_time(2.5).ends_with('s'));
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        // Robust to an outlier sample where the mean is not.
        assert_eq!(median(&[1.0, 1.0, 1.0, 1.0, 100.0]), 1.0);
    }

    #[test]
    fn results_accumulate_and_drain() {
        let mut c = test_criterion(3);
        let mut group = c.benchmark_group("grp");
        group.sample_size(3);
        group.bench_function("a", |b| b.iter(|| 1 + 1));
        group.bench_function("b", |b| b.iter(|| 2 + 2));
        group.finish();
        let results = c.take_results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].id, "grp/a");
        assert_eq!(results[1].id, "grp/b");
        for r in &results {
            assert_eq!(r.samples, 3);
            assert!(r.min_s <= r.median_s);
            // The mean is sum/len: with tied samples (common on a
            // coarse timer) the two roundings can land it an ulp below
            // the min, so compare with that much slack.
            assert!(r.mean_s >= r.min_s - 4.0 * f64::EPSILON * r.min_s);
        }
        assert!(c.take_results().is_empty(), "drained");
    }

    #[test]
    fn json_line_shape() {
        let r = BenchResult {
            id: "grp/case \"x\"".into(),
            mean_s: 1.5e-3,
            median_s: 1.25e-3,
            min_s: 1e-3,
            samples: 7,
        };
        let line = r.json_line();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"id\":\"grp/case \\\"x\\\"\""), "{line}");
        assert!(line.contains("\"median_s\":1.25e-3") || line.contains("\"median_s\":1.25e-03"),);
        assert!(line.contains("\"samples\":7"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn json_escape_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
