//! Offline shim for the subset of `criterion` this workspace's benches
//! use: `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::{iter, iter_batched}`,
//! [`BatchSize`], and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it runs a short
//! warm-up, then times `sample_size` batches and reports the mean and
//! min wall-clock time per iteration. That keeps `cargo bench` useful
//! for coarse comparisons while compiling (and running) with no
//! external dependencies.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How a batched setup's output size relates to the measurement batch.
/// Only a hint in real criterion; ignored here beyond API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: large batches.
    SmallInput,
    /// Large inputs: batch per iteration.
    LargeInput,
    /// One measured call per setup.
    PerIteration,
}

/// Times closures; handed to `bench_function` callbacks.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `iterations` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.min(self.criterion.max_samples);
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        // One warm-up sample, then the timed samples.
        for i in 0..=samples {
            let mut b = Bencher { iterations: 1, elapsed: Duration::ZERO };
            f(&mut b);
            if i > 0 {
                per_iter.push(b.elapsed.as_secs_f64());
            }
        }
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        println!("{id:<60} mean {:>12} min {:>12}", format_time(mean), format_time(min));
        self
    }

    /// Ends the group (report flushing in real criterion; a no-op here).
    pub fn finish(&mut self) {}
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    max_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // A low cap keeps `cargo bench` runs short; raise with
        // QPD_BENCH_SAMPLES when real measurements are wanted.
        let max_samples = std::env::var("QPD_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            // 0 would collect no samples and report NaN; treat it as 1.
            .map(|n: usize| n.max(1))
            .unwrap_or(3);
        Criterion { max_samples }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, criterion: self }
    }

    /// Registers and runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.benchmark_group(id.clone()).bench_function("", f);
        self
    }
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running each group, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion { max_samples: 2 };
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        // 1 warm-up + 2 samples, one iteration each.
        assert_eq!(calls, 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion { max_samples: 3 };
        let mut group = c.benchmark_group("batched");
        group.sample_size(3);
        let mut setups = 0u32;
        group.bench_function("count", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| x * 2,
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(2.5e-9).ends_with("ns"));
        assert!(format_time(2.5e-6).ends_with("µs"));
        assert!(format_time(2.5e-3).ends_with("ms"));
        assert!(format_time(2.5).ends_with('s'));
    }
}
