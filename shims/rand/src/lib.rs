//! Offline, API-compatible shim for the subset of the `rand` crate used
//! by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `rand` to this crate (see the root `Cargo.toml`). It
//! implements exactly the surface the QPD crates call:
//!
//! - [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`,
//! - [`SeedableRng`] with the `seed_from_u64` convenience constructor,
//! - [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! - [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Streams are deterministic in the seed and stable across platforms,
//! which is all the workspace's golden tests require. The numerical
//! streams intentionally do **not** match the real `rand` crate's.

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `out` with consecutive [`Self::next_u64`] draws. A bulk
    /// hook for buffered generators (shim extension, not part of the
    /// real `rand_core`): overrides must produce exactly the words
    /// repeated `next_u64` calls would.
    fn fill_u64s(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.next_u64();
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_u64s(&mut self, out: &mut [u64]) {
        (**self).fill_u64s(out)
    }
}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// The raw seed type (a fixed-size byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it to a full seed
    /// with SplitMix64 (the same scheme the real `rand_core` documents
    /// for this constructor, though the exact constants differ).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: used for seed expansion and as the `StdRng` bootstrap.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The `gen::<f64>()` word-to-unit-interval mapping, uniform in
/// `[0, 1)` with 53 bits of precision. Public so bulk consumers of
/// [`RngCore::fill_u64s`] convert with the exact same mapping.
#[inline]
pub fn u64_to_unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u64_to_unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, span)` via Lemire's widening-multiply method
/// with rejection, so integer ranges are exactly uniform.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone: values below `threshold` would be biased.
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain range: every word is valid.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                // Sample the unit interval at the target type's own
                // precision: converting a wider unit sample (e.g. f64
                // to f32) could round up to 1.0 and return `end`,
                // violating the half-open contract.
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The user-facing generator extension trait (blanket-implemented for
/// every [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng, SplitMix64};

    /// The standard generator: xoshiro256++ (Blackman–Vigna), a
    /// high-quality non-cryptographic PRNG. Stream differs from the
    /// real `rand::rngs::StdRng` (ChaCha12) but has equivalent
    /// statistical quality for simulation workloads.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result =
                (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (slot, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                *slot = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                let mut sm = SplitMix64::new(0x853c_49e6_748f_ea9b);
                for slot in &mut s {
                    *slot = sm.next_u64();
                }
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// Extension trait adding random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn unit_floats_are_in_range_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_is_exact_and_covers() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = rng.gen_range(0..10usize);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let x = rng.gen_range(3..=5u32);
            assert!((3..=5).contains(&x));
            let f = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(4);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
