//! Offline shim for the subset of `proptest` this workspace's property
//! tests use.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case panics with the case index; cases
//!   are fully deterministic (fixed RNG seed), so a failure reproduces
//!   by re-running the test.
//! - **Strategies are samplers.** [`strategy::Strategy`] is just
//!   "produce a value from an RNG", with `prop_map` / `prop_flat_map`
//!   combinators, range and tuple strategies, and
//!   [`collection::vec`].
//! - The [`proptest!`] macro accepts the same grammar the workspace
//!   writes: an optional `#![proptest_config(...)]` header followed by
//!   `#[test]` functions whose arguments are `name in strategy`
//!   bindings.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};

    /// Produces values of an associated type from the test RNG.
    pub trait Strategy {
        /// The type of produced values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms produced values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Feeds produced values into a function returning a new
        /// strategy, then samples that.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    impl Strategy for core::ops::Range<u128> {
        type Value = u128;

        fn sample(&self, rng: &mut TestRng) -> u128 {
            let span = self.end - self.start;
            assert!(span > 0, "cannot sample from empty range");
            if span <= u64::MAX as u128 {
                self.start + rng.gen_range(0..span as u64) as u128
            } else {
                // Wide spans: two full words; the modulo bias is
                // acceptable for test generation purposes.
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                self.start + wide % span
            }
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);

    /// A strategy that always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A type-erased strategy: the building block of
    /// [`crate::prop_oneof!`], which needs to mix strategies of
    /// different concrete types that share a value type.
    pub struct BoxedStrategy<T> {
        sampler: Box<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> core::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.sampler)(rng)
        }
    }

    /// Uniformly picks one of several strategies with a common value
    /// type. Real proptest supports per-arm weights; the workspace only
    /// uses the unweighted form.
    #[derive(Debug)]
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
            Union { options }
        }

        /// Type-erases one strategy for use in a union.
        pub fn boxed<S: Strategy<Value = T> + 'static>(strategy: S) -> BoxedStrategy<T> {
            BoxedStrategy { sampler: Box::new(move |rng| strategy.sample(rng)) }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].sample(rng)
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;

    /// The strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    /// Uniform `true` / `false`.
    pub const ANY: Any = Any;
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Element-count bounds for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_inclusive: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_inclusive: n }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The deterministic case runner.

    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Per-run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Overrides the number of cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The RNG driving strategies: ChaCha8 with a fixed seed, so every
    /// run of a property executes the identical case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: ChaCha8Rng,
    }

    impl TestRng {
        /// A generator with the crate's fixed seed.
        pub fn deterministic() -> Self {
            TestRng { inner: ChaCha8Rng::seed_from_u64(0x5eed_cafe_f00d_0001) }
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod prelude {
    //! Everything a property-test module needs, one `use` away.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property; panics (failing the case)
/// when false.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniformly picks one of several strategies producing a common value
/// type (the unweighted subset of real proptest's `prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Union::boxed($strat)),+])
    };
}

/// Declares property tests: an optional `#![proptest_config(...)]`
/// header, then `#[test]` functions with `name in strategy` arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal recursion for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            $(let $arg = $strat;)+
            for case in 0..config.cases {
                let _ = case;
                $(let $arg = $crate::strategy::Strategy::sample(&$arg, &mut rng);)+
                $body
            }
        }
        $crate::__proptest_impl!(($config); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges produce in-range values; tuples and vec compose.
        #[test]
        fn ranges_and_collections(x in 3usize..10, pair in (0u32..4, -2i64..3)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(pair.0 < 4);
            prop_assert!((-2..3).contains(&pair.1));
        }

        #[test]
        fn flat_map_and_vec(v in (1usize..6).prop_flat_map(|n| collection::vec(0usize..n, 1..=n))) {
            prop_assert!(!v.is_empty());
            let max = *v.iter().max().unwrap();
            prop_assert!(max < 5);
        }

        #[test]
        fn map_transforms(s in (0u64..100).prop_map(|x| x.to_string())) {
            prop_assert!(s.parse::<u64>().unwrap() < 100);
        }

        /// `prop_oneof!` mixes heterogeneous strategies with one value
        /// type, and `bool::ANY` produces both values.
        #[test]
        fn oneof_and_bool(
            v in prop_oneof![Just(None), (1u64..10).prop_map(Some)],
            b in crate::bool::ANY,
        ) {
            match v {
                None => {}
                Some(x) => prop_assert!((1..10).contains(&x)),
            }
            // `b` sampled fine; its distribution is pinned by the
            // non-proptest unit test below.
            let _ = b;
        }
    }

    #[test]
    fn oneof_hits_every_arm_and_bool_both_values() {
        use crate::strategy::Strategy;
        let strat = prop_oneof![Just(0usize), Just(1usize), Just(2usize)];
        let mut rng = TestRng::deterministic();
        let mut seen = [false; 3];
        let mut bools = [false; 2];
        for _ in 0..200 {
            seen[strat.sample(&mut rng)] = true;
            bools[crate::bool::ANY.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3], "some prop_oneof! arm never sampled");
        assert_eq!(bools, [true; 2], "bool::ANY is constant");
    }

    #[test]
    fn config_carries_cases() {
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
        assert_eq!(ProptestConfig::default().cases, 256);
    }

    #[test]
    fn deterministic_sampling() {
        use crate::strategy::Strategy;
        let strat = (0u64..1_000_000, 0.0f64..1.0);
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}
