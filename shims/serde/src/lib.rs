//! Offline shim for `serde`'s derive macros.
//!
//! The workspace annotates its data types with
//! `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` attributes so
//! that swapping in the real `serde` (when a registry is available) is a
//! manifest-only change — but nothing in the workspace currently calls a
//! serializer. This shim therefore accepts the derives and expands to
//! nothing: the attributes are validated by the compiler (the `serde`
//! helper attribute is registered below) and otherwise inert.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
