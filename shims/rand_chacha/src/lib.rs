//! Offline shim for the `rand_chacha` crate, implementing [`ChaCha8Rng`]
//! with a genuine ChaCha keystream (8 rounds, RFC 8439 quarter-round),
//! keyed from the 32-byte seed with block counter starting at zero.
//!
//! Only the surface this workspace uses is provided: construction via
//! `SeedableRng` (`from_seed` / `seed_from_u64`) and word extraction via
//! `RngCore` (including the bulk `fill_u64s` hook the noise samplers
//! batch through). The word stream matches the ChaCha8 keystream
//! definition (little-endian words of successive 64-byte blocks), which
//! differs from the real `rand_chacha` crate only in the `seed_from_u64`
//! expansion (ours is SplitMix64, from the `rand` shim).
//!
//! # Performance
//!
//! The generator is the innermost dependency of every Monte Carlo
//! kernel in the workspace, so blocks are produced eight at a time:
//! through an AVX2 lane-per-block kernel when the CPU has it (detected
//! once at runtime), else through an unrolled scalar kernel. Both
//! produce the identical keystream, so results never depend on the
//! host's SIMD features.

use rand::{RngCore, SeedableRng};

/// The ChaCha constants "expand 32-byte k".
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Keystream blocks produced per refill; each block is 16 words.
const LANES: usize = 8;
/// Words buffered per refill.
const BUF_WORDS: usize = 16 * LANES;

macro_rules! quarter_round {
    ($a:ident, $b:ident, $c:ident, $d:ident) => {
        $a = $a.wrapping_add($b);
        $d = ($d ^ $a).rotate_left(16);
        $c = $c.wrapping_add($d);
        $b = ($b ^ $c).rotate_left(12);
        $a = $a.wrapping_add($b);
        $d = ($d ^ $a).rotate_left(8);
        $c = $c.wrapping_add($d);
        $b = ($b ^ $c).rotate_left(7);
    };
}

/// One scalar ChaCha8 block for counter `counter` into `out`.
fn block_scalar(key: &[u32; 8], counter: u64, out: &mut [u32; 16]) {
    let (mut x0, mut x1, mut x2, mut x3) = (SIGMA[0], SIGMA[1], SIGMA[2], SIGMA[3]);
    let (mut x4, mut x5, mut x6, mut x7) = (key[0], key[1], key[2], key[3]);
    let (mut x8, mut x9, mut x10, mut x11) = (key[4], key[5], key[6], key[7]);
    let (mut x12, mut x13, mut x14, mut x15) = (counter as u32, (counter >> 32) as u32, 0u32, 0u32);
    for _ in 0..4 {
        // A double round: 4 column rounds + 4 diagonal rounds.
        quarter_round!(x0, x4, x8, x12);
        quarter_round!(x1, x5, x9, x13);
        quarter_round!(x2, x6, x10, x14);
        quarter_round!(x3, x7, x11, x15);
        quarter_round!(x0, x5, x10, x15);
        quarter_round!(x1, x6, x11, x12);
        quarter_round!(x2, x7, x8, x13);
        quarter_round!(x3, x4, x9, x14);
    }
    out[0] = x0.wrapping_add(SIGMA[0]);
    out[1] = x1.wrapping_add(SIGMA[1]);
    out[2] = x2.wrapping_add(SIGMA[2]);
    out[3] = x3.wrapping_add(SIGMA[3]);
    out[4] = x4.wrapping_add(key[0]);
    out[5] = x5.wrapping_add(key[1]);
    out[6] = x6.wrapping_add(key[2]);
    out[7] = x7.wrapping_add(key[3]);
    out[8] = x8.wrapping_add(key[4]);
    out[9] = x9.wrapping_add(key[5]);
    out[10] = x10.wrapping_add(key[6]);
    out[11] = x11.wrapping_add(key[7]);
    out[12] = x12.wrapping_add(counter as u32);
    out[13] = x13.wrapping_add((counter >> 32) as u32);
    out[14] = x14;
    out[15] = x15;
}

/// Fills `out` with blocks `counter .. counter + LANES` via the scalar
/// kernel.
fn blocks_scalar(key: &[u32; 8], counter: u64, out: &mut [u32; BUF_WORDS]) {
    let mut block = [0u32; 16];
    for lane in 0..LANES {
        block_scalar(key, counter.wrapping_add(lane as u64), &mut block);
        out[lane * 16..(lane + 1) * 16].copy_from_slice(&block);
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{BUF_WORDS, LANES, SIGMA};
    use std::arch::x86_64::*;

    /// Eight ChaCha8 blocks at once: one AVX2 lane per block, one vector
    /// per ChaCha state word. Produces the identical keystream to the
    /// scalar kernel (integer arithmetic is exact on both paths).
    ///
    /// # Safety
    ///
    /// Requires AVX2 (caller checks `is_x86_feature_detected!("avx2")`).
    #[target_feature(enable = "avx2")]
    pub unsafe fn blocks(key: &[u32; 8], counter: u64, out: &mut [u32; BUF_WORDS]) {
        macro_rules! rotl {
            ($x:expr, $n:literal) => {
                _mm256_or_si256(_mm256_slli_epi32::<$n>($x), _mm256_srli_epi32::<{ 32 - $n }>($x))
            };
        }
        macro_rules! qr {
            ($a:expr, $b:expr, $c:expr, $d:expr) => {
                $a = _mm256_add_epi32($a, $b);
                $d = rotl!(_mm256_xor_si256($d, $a), 16);
                $c = _mm256_add_epi32($c, $d);
                $b = rotl!(_mm256_xor_si256($b, $c), 12);
                $a = _mm256_add_epi32($a, $b);
                $d = rotl!(_mm256_xor_si256($d, $a), 8);
                $c = _mm256_add_epi32($c, $d);
                $b = rotl!(_mm256_xor_si256($b, $c), 7);
            };
        }

        let mut init = [_mm256_setzero_si256(); 16];
        for (i, slot) in init.iter_mut().enumerate().take(4) {
            *slot = _mm256_set1_epi32(SIGMA[i] as i32);
        }
        for (i, slot) in init.iter_mut().enumerate().take(12).skip(4) {
            *slot = _mm256_set1_epi32(key[i - 4] as i32);
        }
        // Per-lane counters (64-bit, split into words 12 and 13).
        let mut lo = [0i32; LANES];
        let mut hi = [0i32; LANES];
        for lane in 0..LANES {
            let c = counter.wrapping_add(lane as u64);
            lo[lane] = c as i32;
            hi[lane] = (c >> 32) as i32;
        }
        init[12] = _mm256_setr_epi32(lo[0], lo[1], lo[2], lo[3], lo[4], lo[5], lo[6], lo[7]);
        init[13] = _mm256_setr_epi32(hi[0], hi[1], hi[2], hi[3], hi[4], hi[5], hi[6], hi[7]);
        // Words 14-15 (nonce) stay zero.

        let mut x = init;
        for _ in 0..4 {
            qr!(x[0], x[4], x[8], x[12]);
            qr!(x[1], x[5], x[9], x[13]);
            qr!(x[2], x[6], x[10], x[14]);
            qr!(x[3], x[7], x[11], x[15]);
            qr!(x[0], x[5], x[10], x[15]);
            qr!(x[1], x[6], x[11], x[12]);
            qr!(x[2], x[7], x[8], x[13]);
            qr!(x[3], x[4], x[9], x[14]);
        }

        // Add-back, then scatter from word-major lanes to block-major
        // words.
        let mut stage = [0u32; BUF_WORDS];
        for (i, &v) in x.iter().enumerate() {
            let sum = _mm256_add_epi32(v, init[i]);
            _mm256_storeu_si256(stage.as_mut_ptr().add(i * LANES).cast::<__m256i>(), sum);
        }
        for lane in 0..LANES {
            for word in 0..16 {
                out[lane * 16 + word] = stage[word * LANES + lane];
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static STATE: AtomicU8 = AtomicU8::new(0); // 0 unknown, 1 no, 2 yes
    match STATE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let yes = std::arch::is_x86_feature_detected!("avx2");
            STATE.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
            yes
        }
    }
}

/// Fills `out` with blocks `counter ..` on the fastest available kernel.
fn blocks(key: &[u32; 8], counter: u64, out: &mut [u32; BUF_WORDS]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 presence just checked.
        unsafe { avx2::blocks(key, counter, out) };
        return;
    }
    blocks_scalar(key, counter, out);
}

/// A deterministic ChaCha generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (seed), fixed for the generator's lifetime.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the ChaCha state) of the
    /// *next* refill.
    counter: u64,
    /// Buffered keystream words ([`LANES`] consecutive blocks).
    buf: [u32; BUF_WORDS],
    /// Next unread word in `buf`; `BUF_WORDS` means "refill".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        blocks(&self.key, self.counter, &mut self.buf);
        self.counter = self.counter.wrapping_add(LANES as u64);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
        }
        let word = self.buf[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        if self.index + 2 <= BUF_WORDS {
            let lo = self.buf[self.index] as u64;
            let hi = self.buf[self.index + 1] as u64;
            self.index += 2;
            lo | (hi << 32)
        } else {
            let lo = self.next_u32() as u64;
            let hi = self.next_u32() as u64;
            lo | (hi << 32)
        }
    }

    fn fill_u64s(&mut self, out: &mut [u64]) {
        let mut filled = 0;
        while filled < out.len() {
            if self.index >= BUF_WORDS {
                self.refill();
            }
            let available = (BUF_WORDS - self.index) / 2;
            if available == 0 {
                // One straddling word left in the buffer.
                out[filled] = self.next_u64();
                filled += 1;
                continue;
            }
            let take = available.min(out.len() - filled);
            for (slot, pair) in
                out[filled..filled + take].iter_mut().zip(self.buf[self.index..].chunks_exact(2))
            {
                *slot = pair[0] as u64 | ((pair[1] as u64) << 32);
            }
            self.index += 2 * take;
            filled += take;
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (slot, chunk) in key.iter_mut().zip(seed.chunks(4)) {
            *slot = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, buf: [0; BUF_WORDS], index: BUF_WORDS }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniformity_is_plausible() {
        // Mean of 100k unit floats within 1% of 0.5 — a smoke test that
        // the keystream wiring (counter increments, word order) is sane.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn blocks_differ() {
        // 16 words per block: crossing the boundary must not repeat.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    /// RFC 8439's test vector structure only covers ChaCha20; pin the
    /// 8-round keystream against an independent single-block scalar
    /// evaluation instead, across the buffer boundary.
    #[test]
    fn stream_matches_single_block_reference() {
        let seed = [7u8; 32];
        let mut rng = ChaCha8Rng::from_seed(seed);
        let mut key = [0u32; 8];
        for (slot, chunk) in key.iter_mut().zip(seed.chunks(4)) {
            *slot = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        let mut expected = Vec::new();
        let mut block = [0u32; 16];
        for counter in 0..3 * LANES as u64 {
            block_scalar(&key, counter, &mut block);
            expected.extend_from_slice(&block);
        }
        let got: Vec<u32> = (0..expected.len()).map(|_| rng.next_u32()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn scalar_and_simd_kernels_agree() {
        let key = [0x0123_4567u32, 0x89ab_cdef, 1, 2, 3, 4, 5, 6];
        for counter in [0u64, 1, 1 << 31, u64::MAX - 3] {
            let mut fast = [0u32; BUF_WORDS];
            let mut slow = [0u32; BUF_WORDS];
            blocks(&key, counter, &mut fast);
            blocks_scalar(&key, counter, &mut slow);
            assert_eq!(fast.to_vec(), slow.to_vec(), "counter {counter}");
        }
    }

    #[test]
    fn fill_u64s_matches_sequential_draws() {
        for (start, len) in [(0usize, 500usize), (1, 300), (127, 64), (3, 1)] {
            let mut a = ChaCha8Rng::seed_from_u64(21);
            let mut b = ChaCha8Rng::seed_from_u64(21);
            for _ in 0..start {
                let (x, y) = (a.next_u32(), b.next_u32());
                assert_eq!(x, y);
            }
            let mut bulk = vec![0u64; len];
            a.fill_u64s(&mut bulk);
            let sequential: Vec<u64> = (0..len).map(|_| b.next_u64()).collect();
            assert_eq!(bulk, sequential, "start {start} len {len}");
        }
    }
}
