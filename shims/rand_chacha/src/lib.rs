//! Offline shim for the `rand_chacha` crate, implementing [`ChaCha8Rng`]
//! with a genuine ChaCha keystream (8 rounds, RFC 8439 quarter-round),
//! keyed from the 32-byte seed with block counter starting at zero.
//!
//! Only the surface this workspace uses is provided: construction via
//! `SeedableRng` (`from_seed` / `seed_from_u64`) and word extraction via
//! `RngCore`. The word stream matches the ChaCha8 keystream definition
//! (little-endian words of successive 64-byte blocks), which differs
//! from the real `rand_chacha` crate only in the `seed_from_u64`
//! expansion (ours is SplitMix64, from the `rand` shim).

use rand::{RngCore, SeedableRng};

/// The ChaCha constants "expand 32-byte k".
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A deterministic ChaCha generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (seed), fixed for the generator's lifetime.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the ChaCha state).
    counter: u64,
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "refill".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce is zero (words 14-15): one stream per key.
        let initial = state;
        for _ in 0..4 {
            // A double round: 4 column rounds + 4 diagonal rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.block.iter_mut().zip(state.iter().zip(initial.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (slot, chunk) in key.iter_mut().zip(seed.chunks(4)) {
            *slot = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, block: [0; 16], index: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniformity_is_plausible() {
        // Mean of 100k unit floats within 1% of 0.5 — a smoke test that
        // the keystream wiring (counter increments, word order) is sane.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn blocks_differ() {
        // 16 words per block: crossing the boundary must not repeat.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
