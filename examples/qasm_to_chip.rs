//! Domain example: design a chip for a user-supplied OpenQASM program.
//!
//! Reads OpenQASM 2.0 from a file argument (or uses a built-in adder if
//! none is given), lowers it to the native gate set, and runs the full
//! design flow — the end-to-end path a tool user would follow.
//!
//! Run with:
//!   cargo run --release --example qasm_to_chip [-- path/to/program.qasm]

use qpd::circuit::decompose::decompose_to_native;
use qpd::circuit::qasm;
use qpd::prelude::*;

const BUILTIN: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
// A 1-bit full adder: sum = a xor b xor cin, cout via Toffolis.
qreg a[1];
qreg b[1];
qreg cin[1];
qreg cout[1];
creg c[4];
ccx a[0], b[0], cout[0];
cx a[0], b[0];
ccx b[0], cin[0], cout[0];
cx b[0], cin[0];
measure cin[0] -> c[0];
measure cout[0] -> c[1];
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => BUILTIN.to_string(),
    };

    // Parse and lower to {CX, single-qubit}.
    let parsed = qasm::parse(&source)?;
    let program = decompose_to_native(&parsed)?;
    println!(
        "parsed {} qubits, {} instructions ({} two-qubit after lowering)",
        program.num_qubits(),
        parsed.len(),
        program.two_qubit_gate_count()
    );

    // Profile and design.
    let profile = CouplingProfile::of(&program);
    let chip = DesignFlow::new().with_allocation_trials(1_000).design(&profile)?;
    println!("\ndesigned `{}`:", chip.name());
    print!("{}", qpd::topology::render::ascii(&chip));

    // Report the designed frequencies and expected yield.
    let plan = chip.frequencies().expect("designed chips carry frequencies");
    for q in 0..chip.num_qubits() {
        println!("qubit {q} at {}: {:.2} GHz", chip.coord(q), plan.ghz(q));
    }
    let estimate = YieldSimulator::new().estimate(&chip)?;
    println!("\nexpected fabrication yield: {estimate}");

    // And how it runs.
    let mapped = SabreRouter::new(&chip).route(&program)?;
    println!(
        "mapped with {} swaps -> {} total gates",
        mapped.swap_count(),
        mapped.stats().total_gates
    );

    // Round-trip the mapped circuit back to QASM for downstream tools.
    let qasm_out = qasm::to_qasm(&decompose_to_native(mapped.physical_circuit())?)?;
    println!("\nfirst lines of the mapped program:");
    for line in qasm_out.lines().take(8) {
        println!("  {line}");
    }
    Ok(())
}
