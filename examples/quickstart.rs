//! Quickstart: design an application-specific chip for a small program
//! and compare it against IBM's general-purpose baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use qpd::prelude::*;
use qpd::topology::ibm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 6-qubit program: GHZ preparation followed by a ring of
    // entangling layers — chain-plus-one-edge coupling.
    let mut program = Circuit::new(6);
    program.h(0);
    for q in 0..5u32 {
        program.cx(q, q + 1);
    }
    for _ in 0..4 {
        for q in 0..5u32 {
            program.cx(q, q + 1);
        }
        program.cx(5, 0);
    }
    program.measure_all();

    // Step 1: profile (paper §3) — which qubit pairs interact, how often?
    let profile = CouplingProfile::of(&program);
    println!(
        "program: {} qubits, {} two-qubit gates",
        profile.num_qubits(),
        profile.total_two_qubit_gates()
    );
    println!("pattern: {:?}", PatternReport::of(&profile).shape);

    // Step 2: the design flow (paper §4) — layout, buses, frequencies.
    let flow = DesignFlow::new().with_allocation_trials(1_000);
    let chip = flow.design(&profile)?;
    println!("\ndesigned chip `{}`:", chip.name());
    print!("{}", qpd::topology::render::ascii(&chip));

    // Step 3: evaluate performance (post-mapping gates, paper §5.1)...
    let mapped = SabreRouter::new(&chip).route(&program)?;
    let custom_gates = mapped.stats().total_gates;

    // ...and fabrication yield (Monte Carlo, paper §4.3.1).
    let sim = YieldSimulator::new(); // 10k trials, sigma = 30 MHz
    let custom_yield = sim.estimate(&chip)?;

    // Compare with IBM's 16-qubit general-purpose chip.
    let baseline = ibm::ibm_16q_2x8(BusMode::MaxFourQubit);
    let base_gates = SabreRouter::new(&baseline).route(&program)?.stats().total_gates;
    let base_yield = sim.estimate(&baseline)?;

    println!("\n                 custom        ibm-16q(4-qubit buses)");
    println!("gates            {custom_gates:<13} {base_gates}");
    println!("yield            {:<13.4e} {:.4e}", custom_yield.rate(), base_yield.rate());
    println!(
        "\nThe application-specific chip uses {}x fewer couplings ({} vs {}).",
        baseline.coupling_edges().len() / chip.coupling_edges().len().max(1),
        chip.coupling_edges().len(),
        baseline.coupling_edges().len(),
    );
    if base_yield.successes() == 0 {
        println!(
            "The general-purpose chip did not fabricate once in {} simulated attempts; \
             the custom chip fabricates {:.1}% of the time.",
            base_yield.trials(),
            100.0 * custom_yield.rate()
        );
    } else {
        println!(
            "The custom chip fabricates {:.0}x more reliably.",
            custom_yield.rate() / base_yield.rate()
        );
    }
    Ok(())
}
