//! Domain example: explore the wider design space (paper §6) — auxiliary
//! qubits and the single-pass vs refined frequency allocation — then
//! save the chosen chip in the text interchange format.
//!
//! Run with: `cargo run --release --example design_space`

use qpd::design::FrequencyAllocator;
use qpd::prelude::*;
use qpd::topology::format;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = qpd::benchmarks::build("cm152a_212")?;
    let profile = CouplingProfile::of(&program);
    let sim = YieldSimulator::new();

    // 1. Auxiliary qubits (§6 "Exploring More Design Space"): spend a few
    //    extra physical qubits purely on routing freedom.
    println!("{:<8} {:>7} {:>7} {:>8} {:>12}", "aux", "qubits", "edges", "gates", "yield");
    let mut chips = Vec::new();
    for aux in [0usize, 1, 2, 3] {
        let chip = DesignFlow::new()
            .with_auxiliary_qubits(aux)
            .with_allocation_trials(1_000)
            .with_max_buses(Some(1))
            .design(&profile)?;
        let gates = SabreRouter::new(&chip).route(&program)?.stats().total_gates;
        let yield_rate = sim.estimate(&chip)?.rate();
        println!(
            "{:<8} {:>7} {:>7} {:>8} {:>12.4e}",
            aux,
            chip.num_qubits(),
            chip.coupling_edges().len(),
            gates,
            yield_rate
        );
        chips.push((aux, chip, gates, yield_rate));
    }

    // 2. Frequency allocation ablation: the paper's single pass vs the
    //    refined default on the aux-free topology.
    let base = &chips[0].1;
    let single =
        FrequencyAllocator::new().with_trials(1_000).with_refinement_sweeps(0).allocate(base);
    let refined = base.frequencies().expect("designed chip has frequencies");
    println!(
        "\nfrequency allocation on `{}`: single-pass yield {:.3e}, refined yield {:.3e}",
        base.name(),
        sim.estimate_with_frequencies(base, single.as_slice()).rate(),
        sim.estimate_with_frequencies(base, refined.as_slice()).rate(),
    );

    // 3. Persist the preferred design and read it back.
    let (aux, chip, ..) = &chips[0];
    let text = format::to_text(chip);
    let path = std::env::temp_dir().join("qpd_cm152a_chip.txt");
    std::fs::write(&path, &text)?;
    let reloaded = format::from_text(&std::fs::read_to_string(&path)?)?;
    assert_eq!(&reloaded, chip);
    println!("\nsaved the aux={aux} design to {} and verified the round-trip:", path.display());
    for line in text.lines().take(6) {
        println!("  {line}");
    }
    println!("  ...");
    Ok(())
}
