//! Domain example: a chemistry-VQE accelerator.
//!
//! The paper's motivating vision (§1) is "an array of QC accelerators,
//! each tailored to a specific application". This example designs the
//! accelerator for the UCCSD ansatz workload, sweeps the
//! performance/yield trade-off by varying the 4-qubit bus budget, and
//! prints the Pareto frontier.
//!
//! Run with: `cargo run --release --example vqe_accelerator`

use qpd::design::pareto_front;
use qpd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = qpd::benchmarks::build("UCCSD_ansatz_8")?;
    let profile = CouplingProfile::of(&program);

    println!(
        "UCCSD_ansatz_8: {} qubits, {} two-qubit gates",
        profile.num_qubits(),
        profile.total_two_qubit_gates()
    );
    match PatternReport::of(&profile).shape {
        PatternShape::Chain(order) => println!("coupling graph is a chain: {order:?}"),
        other => println!("coupling shape: {other:?}"),
    }

    // Generate the architecture series (one design per bus budget).
    let flow = DesignFlow::new().with_allocation_trials(1_000);
    let series = flow.design_series(&profile)?;
    let sim = YieldSimulator::new();

    let mut points = Vec::new();
    println!("\n{:<14} {:>6} {:>8} {:>7} {:>12}", "design", "buses", "edges", "gates", "yield");
    for chip in &series {
        let mapped = SabreRouter::new(chip).route(&program)?;
        let gates = mapped.stats().total_gates;
        let yield_rate = sim.estimate(chip)?.rate();
        println!(
            "{:<14} {:>6} {:>8} {:>7} {:>12.4e}",
            chip.name(),
            chip.four_qubit_buses().len(),
            chip.coupling_edges().len(),
            gates,
            yield_rate
        );
        points.push((1.0 / gates as f64, yield_rate));
    }

    let front = pareto_front(&points);
    println!(
        "\nPareto-optimal designs: {:?}",
        front.iter().map(|&i| series[i].name()).collect::<Vec<_>>()
    );

    // Show the most balanced design.
    if let Some(&mid) = front.get(front.len() / 2) {
        println!("\nA balanced choice, `{}`:", series[mid].name());
        print!("{}", qpd::topology::render::ascii(&series[mid]));
        let plan = series[mid].frequencies().expect("designed chips carry frequencies");
        println!("frequencies (GHz): {:?}", plan.as_slice());
    }
    Ok(())
}
