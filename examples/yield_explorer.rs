//! Domain example: explore how fabrication precision drives yield.
//!
//! The paper fixes sigma = 30 MHz (IBM's projection); this example
//! sweeps sigma from today's ~130 MHz down to 10 MHz and shows how the
//! general-purpose baselines and an application-specific design respond —
//! reproducing the motivation that yield collapses as chips grow
//! (§1: "the yield rate of a 17-qubit chip can be lower than 1%").
//!
//! Run with: `cargo run --release --example yield_explorer`

use qpd::prelude::*;
use qpd::topology::ibm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = qpd::benchmarks::build("rd84_142")?;
    let profile = CouplingProfile::of(&program);
    let custom = DesignFlow::new().with_allocation_trials(1_000).design(&profile)?;
    let chips: Vec<Architecture> = vec![
        ibm::ibm_16q_2x8(BusMode::TwoQubitOnly),
        ibm::ibm_16q_2x8(BusMode::MaxFourQubit),
        ibm::ibm_20q_4x5(BusMode::MaxFourQubit),
        custom,
    ];

    let sigmas_mhz = [130.0, 100.0, 60.0, 30.0, 20.0, 10.0];
    print!("{:<22}", "sigma (MHz) ->");
    for s in sigmas_mhz {
        print!("{s:>10}");
    }
    println!();
    for chip in &chips {
        print!("{:<22}", chip.name());
        for s in sigmas_mhz {
            let sim = YieldSimulator::new().with_sigma_ghz(s / 1000.0).with_trials(10_000);
            let estimate = sim.estimate(chip)?;
            print!("{:>10.2e}", estimate.rate());
        }
        println!();
    }
    println!(
        "\nNote how the 20-qubit dense baseline is unbuildable at today's precision \
         while the application-specific chip stays fabricable several process \
         generations earlier."
    );
    Ok(())
}
