//! # QPD — application-specific superconducting quantum processor design
//!
//! A Rust implementation of *Towards Efficient Superconducting Quantum
//! Processor Architecture Design* (Li, Ding, Xie — ASPLOS 2020): an
//! automatic flow that profiles a quantum program and synthesizes a
//! simplified chip — qubit layout, bus selection, frequency allocation —
//! that beats general-purpose designs on the (performance, yield) plane.
//!
//! This crate is the workspace facade: it re-exports every subsystem so
//! applications can depend on one crate.
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`circuit`] | `qpd-circuit` | circuit IR, OpenQASM 2.0, decomposition |
//! | [`benchmarks`] | `qpd-benchmarks` | the paper's twelve workloads |
//! | [`profile`] | `qpd-profile` | coupling strength matrix / degree list |
//! | [`topology`] | `qpd-topology` | lattice, buses, IBM baselines |
//! | [`yield_sim`] | `qpd-yield` | collision model, Monte Carlo yield |
//! | [`mapping`] | `qpd-mapping` | SABRE routing (performance metric) |
//! | [`design`] | `qpd-core` | the three-subroutine design flow |
//! | [`explore`] | `qpd-explore` | multi-objective design-space search over the flow's knobs |
//! | [`eval`] | `qpd-eval` | the §5 experiment harness |
//! | [`serve`] | `qpd-serve` | resident design-service daemon over one shared warm stage graph |
//! | [`par`] | `qpd-par` | deterministic worker pool for the hot kernels |
//!
//! # The stage graph
//!
//! The design cascade is an explicit stage graph ([`design::stage`]):
//! placement → bus insertion → frequency allocation/assembly →
//! { routing, yield }. Each step is a [`design::Stage`] — typed input,
//! typed output, and a content key derived only from its true inputs —
//! served through a bounded [`design::StageCache`] owned by a
//! [`design::StagePlan`]. [`design::DesignFlow`] is a thin facade over
//! the plan (outputs are bit-identical to the retained monolithic
//! reference, [`design::DesignFlow::design_reference`]), and the
//! explorer rides the same graph: a knob change re-runs only the stages
//! it dirties ([`explore::CandidateSpec::dirty_stages`] /
//! [`design::StageKind::invalidates`]). Because routing reads the
//! coupling topology but never the frequencies, a frequency-only move
//! skips placement, bus insertion, *and* routing entirely.
//!
//! # Serving
//!
//! The stage graph is `Arc`-shared and content-keyed, so it also runs
//! resident: [`serve`] wraps it in a TCP daemon (`qpd_serve` binary,
//! `serve_load` load generator) speaking newline-delimited JSON, with
//! every request multiplexed onto one shared warm
//! [`design::StagePlan`] + [`explore::StageCaches`]. The wire grammar,
//! budget fields, admission-control semantics, and shutdown/warm-start
//! story are documented on [`serve`]; responses are byte-reproducible
//! functions of request content.
//!
//! # Environment variables
//!
//! | variable | effect |
//! |---|---|
//! | `QPD_THREADS` | Worker count for the [`par`] pool (frequency allocation, yield simulation, the experiment runner). Defaults to `std::thread::available_parallelism()`; results are bit-identical for every value. [`par::with_threads`] is the in-process equivalent. |
//! | `QPD_MEMO_CAP` | Entry bound per stage cache ([`design::StageCache`]), evicted with a deterministic second-chance rule; `0` = unbounded. When unset, bare [`design::DesignFlow`]s are unbounded and the explorer bounds its caches at [`explore::DEFAULT_MEMO_CAP`]. Caching only changes *when* a stage runs, never its output. |
//! | `QPD_BENCH_SAMPLES` | Caps timed samples per benchmark in the criterion shim and `bench_snapshot` (default 3; raise for real measurements). |
//! | `QPD_BENCH_JSON` | When set to a non-empty value other than `0`, `cargo bench` also prints one machine-readable JSON line per benchmark. |
//! | `QPD_BENCH_QUICK` | Shrinks `bench_snapshot`'s trial counts for CI smoke runs. |
//!
//! # Quickstart
//!
//! ```
//! use qpd::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. A program: 4-qubit GHZ preparation.
//! let mut program = Circuit::new(4);
//! program.h(0).cx(0, 1).cx(1, 2).cx(2, 3).measure_all();
//!
//! // 2. Profile it and design a chip.
//! let profile = CouplingProfile::of(&program);
//! let chip = DesignFlow::new().with_allocation_trials(200).design(&profile)?;
//!
//! // 3. Map the program and estimate fabrication yield.
//! let mapped = SabreRouter::new(&chip).route(&program)?;
//! let yield_rate = YieldSimulator::new().with_trials(1_000).estimate(&chip)?;
//! assert!(mapped.stats().total_gates >= program.gate_count());
//! assert!(yield_rate.rate() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use qpd_benchmarks as benchmarks;
pub use qpd_circuit as circuit;
pub use qpd_core as design;
pub use qpd_eval as eval;
pub use qpd_explore as explore;
pub use qpd_mapping as mapping;
pub use qpd_par as par;
pub use qpd_profile as profile;
pub use qpd_serve as serve;
pub use qpd_topology as topology;
pub use qpd_yield as yield_sim;

/// The commonly used types, one `use` away.
pub mod prelude {
    pub use qpd_circuit::{Circuit, Gate, Qubit};
    pub use qpd_core::{BusStrategy, DesignFlow, FrequencyAllocator, FrequencyStrategy};
    pub use qpd_explore::{ExploreConfig, ExploreSpace, Explorer};
    pub use qpd_mapping::{GreedyRouter, SabreRouter};
    pub use qpd_profile::{CouplingProfile, PatternReport, PatternShape};
    pub use qpd_topology::{Architecture, BusMode, Coord, FrequencyPlan, Square};
    pub use qpd_yield::{CollisionChecker, YieldSimulator};
}
