//! Design-space exploration over the paper's flow (paper §6, "Exploring
//! More Design Space").
//!
//! The paper's pipeline produces *one* architecture series per profile:
//! greedy bus selection, then center-out frequency search. Its own
//! evaluation shows the interesting story is the trade-off *space* —
//! yield against circuit performance against hardware cost. This crate
//! treats the whole [`qpd_core::DesignFlow`] as a point evaluator and
//! searches over its knobs:
//!
//! - bus-selection strategy and budget, plus seeded add/remove/swap
//!   perturbations of the square set (prohibited condition preserved);
//! - frequency strategy (optimized Algorithm 3 vs. the 5-frequency
//!   pattern);
//! - auxiliary-qubit count and placement variants.
//!
//! [`Explorer`] runs seeded walks fanned out on the [`qpd_par`] pool
//! and maintains a Pareto archive over four objectives (Monte Carlo
//! yield, post-mapping gate count, routed depth, and hardware cost =
//! buses plus auxiliary qubits). Since the stage-graph refactor,
//! candidate
//! evaluation is the explicit five-stage cascade of
//! [`qpd_core::stage`]: placement and bus insertion resolve from
//! [`ExploreSpace`]'s precomputed layouts, frequency allocation +
//! assembly run through the shared [`qpd_core::StagePlan`], and routing
//! and yield run through the [`cache::StageCaches`] — every stage
//! content-keyed and bounded by `QPD_MEMO_CAP` (deterministic
//! second-chance eviction). A knob change recomputes only the stages it
//! dirties ([`CandidateSpec::dirty_stages`]): a frequency-only move
//! skips placement, bus insertion, *and* routing entirely, and a
//! revisited candidate costs hash lookups only.
//!
//! Since the v2 engine, acceptance is **archive-guided Pareto
//! dominance** by default ([`AcceptanceMode::Dominance`]): a walk moves
//! onto a candidate that dominates its position or that no round-start
//! front point weakly ε-dominates (the ε-grid lives on the normalized
//! objective vector; see [`qpd_core::epsilon_weakly_dominates_nd`]),
//! with the v1 scalarized temperature rule kept as the escape hatch for
//! dominated moves — and as a full engine mode
//! ([`AcceptanceMode::Scalarized`]) that reproduces the PR 3 engine
//! bit-for-bit. At every round barrier, adjacent walk pairs may
//! **recombine**, exchanging the bus-layout knob block against the
//! frequency/aux/placement block under an RNG keyed by `(seed, round,
//! walk_pair)` only; offspring that dominate their parent's position
//! (or spread the front, by crowding distance) replace it. With
//! [`ExploreConfig::screen_divisor`] > 1, proposals are first screened
//! at reduced Monte Carlo trials and only survivors are re-simulated at
//! full fidelity before archive insertion — the adaptive budget that
//! makes `qft_16`-scale profiles tractable (screening is the yield
//! stage at a reduced trial budget; the budget is part of the content
//! key). With [`ExploreConfig::archive_cap`] set, the archive is pruned
//! at every round barrier by ε-grid occupancy and crowding distance
//! (front points kept first), so arbitrarily long runs hold a bounded
//! archive without losing the front.
//!
//! Runs are **bit-identical for every `QPD_THREADS` value**, and
//! [`Checkpoint`] persists the state as hand-rolled JSON
//! (`EXPLORE_<run>.json`, schema [`SCHEMA`]) from which a killed run
//! resumes exactly; schema-v1 files from the PR 3 engine are migrated
//! on parse, keeping their scalarized-era semantics. Shardable runs
//! ([`ExploreConfig::shardable`]) can additionally split their walk set
//! across independent processes ([`Explorer::run_shard`]) whose
//! shard-tagged checkpoints [`merge`](mod@merge) back into the
//! single-process bytes exactly.
//!
//! ```
//! use qpd_circuit::Circuit;
//! use qpd_explore::{ExploreConfig, ExploreSpace, Explorer};
//!
//! // A small program with diagonal coupling demand.
//! let mut program = Circuit::new(6);
//! for _ in 0..3 {
//!     program.cx(0, 1).cx(1, 2).cx(3, 4).cx(4, 5).cx(0, 3).cx(1, 4).cx(2, 5);
//! }
//! program.cx(0, 4).cx(1, 3);
//!
//! let config = ExploreConfig { rounds: 1, ..ExploreConfig::quick() };
//! let space = ExploreSpace::new(program, config.max_aux);
//! let explorer = Explorer::new(space, config).unwrap();
//! let state = explorer.run().unwrap();
//! assert!(!state.front().is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod checkpoint;
pub mod engine;
pub mod json;
pub mod merge;
pub mod sidecar;
pub mod space;
pub mod spec;

pub use cache::{circuit_key, topology_key, RouteStage, StageCaches, YieldStage};
pub use checkpoint::{Checkpoint, ShardMeta, StageHitRate, SCHEMA, SCHEMA_V1, SCHEMA_V3};
pub use engine::{
    pareto_indices, AcceptanceMode, ExploreConfig, ExploreError, ExploreState, Explorer,
    HardwareSweep, Provenance, ShardSpec, ShardState, WalkState, DEFAULT_MEMO_CAP,
};
pub use json::{Json, JsonError, MAX_PARSE_DEPTH};
pub use merge::{merge_checkpoints, merge_shard_states};
pub use qpd_yield::HardwareFamily;
pub use space::ExploreSpace;
pub use spec::{BusSpec, CandidateSpec, Evaluated, Objectives, PlacementVariant};
