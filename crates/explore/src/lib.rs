//! Design-space exploration over the paper's flow (paper §6, "Exploring
//! More Design Space").
//!
//! The paper's pipeline produces *one* architecture series per profile:
//! greedy bus selection, then center-out frequency search. Its own
//! evaluation shows the interesting story is the trade-off *space* —
//! yield against circuit performance against hardware cost. This crate
//! treats the whole [`qpd_core::DesignFlow`] as a point evaluator and
//! searches over its knobs:
//!
//! - bus-selection strategy and budget, plus seeded add/remove/swap
//!   perturbations of the square set (prohibited condition preserved);
//! - frequency strategy (optimized Algorithm 3 vs. the 5-frequency
//!   pattern);
//! - auxiliary-qubit count and placement variants.
//!
//! [`Explorer`] runs seeded simulated-annealing walks fanned out on the
//! [`qpd_par`] pool, maintains a Pareto archive over four objectives
//! (Monte Carlo yield, post-mapping gate count, routed depth, hardware
//! cost = buses + auxiliary qubits), and memoizes evaluations behind
//! content keys ([`cache`]) so no candidate architecture is ever
//! simulated twice. Runs are **bit-identical for every `QPD_THREADS`
//! value**, and [`Checkpoint`] persists the state as hand-rolled JSON
//! (`EXPLORE_<run>.json`) from which a killed run resumes exactly.
//!
//! ```
//! use qpd_circuit::Circuit;
//! use qpd_explore::{ExploreConfig, ExploreSpace, Explorer};
//!
//! // A small program with diagonal coupling demand.
//! let mut program = Circuit::new(6);
//! for _ in 0..3 {
//!     program.cx(0, 1).cx(1, 2).cx(3, 4).cx(4, 5).cx(0, 3).cx(1, 4).cx(2, 5);
//! }
//! program.cx(0, 4).cx(1, 3);
//!
//! let config = ExploreConfig { rounds: 1, ..ExploreConfig::quick() };
//! let space = ExploreSpace::new(program, config.max_aux);
//! let explorer = Explorer::new(space, config).unwrap();
//! let state = explorer.run().unwrap();
//! assert!(!state.front().is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod checkpoint;
pub mod engine;
pub mod json;
pub mod space;
pub mod spec;

pub use cache::EvalCache;
pub use checkpoint::Checkpoint;
pub use engine::{pareto_indices, ExploreConfig, ExploreError, ExploreState, Explorer, WalkState};
pub use json::Json;
pub use space::ExploreSpace;
pub use spec::{BusSpec, CandidateSpec, Evaluated, Objectives, PlacementVariant};
