//! Deterministic, order-independent merge of shard checkpoints — the
//! reduce half of fleet-scale sharded exploration.
//!
//! A shardable run (see [`ExploreConfig::shardable`]) split as
//! `--shard 0/N … --shard N-1/N` produces N shard-tagged checkpoints.
//! Because every walk keeps its global index and its own
//! `(seed, walk, round)` streams, the union of the shards' work is
//! *exactly* the single-process run's work — the only thing sharding
//! changes is the order archive entries were appended in. Each entry
//! therefore carries its [`Provenance`] `(block, walk, step)`, which is
//! precisely the single-run insertion order; the merge:
//!
//! 1. validates the shards agree (same run, same config, same round
//!    count, one complete cover of `0..N`);
//! 2. reassembles the walk vector by global index (walk `w` lives in
//!    shard `w mod N`);
//! 3. sorts the union of the archives by provenance and re-inserts in
//!    that order with the engine's own content-key dedup — re-creating
//!    the single-run archive **bit-for-bit**.
//!
//! Sorting on provenance (a pure function of each entry's content and
//! origin, never of arrival order) is what makes the merge
//! order-independent: any permutation of the input checkpoints, and any
//! interleaving of shard execution, merges to the same bytes.
//! `tests/shard_merge.rs` proves `shard(N) + merge ≡ single-run` at the
//! checkpoint-byte level.
//!
//! The merged document drops the shard tag (it *is* the whole run) and
//! carries no stage hit rates: those counters describe one process's
//! cache traffic and have no meaningful union.

use crate::checkpoint::Checkpoint;
use crate::engine::{
    push_dedup, ExploreConfig, ExploreError, ExploreState, Provenance, ShardState, WalkState,
};
use crate::spec::Evaluated;
use std::collections::HashMap;

/// Merges a complete set of shard-tagged checkpoints of one run into
/// the whole-run checkpoint, byte-identical to the checkpoint the
/// single-process run writes. Input order is irrelevant.
///
/// # Errors
///
/// [`ExploreError::Shard`] when the inputs are not a complete,
/// consistent shard set: a whole-run document among them, mismatched
/// run labels / configs / round counts, duplicate or missing shard
/// indices, or disagreeing shard counts.
pub fn merge_checkpoints(checkpoints: &[Checkpoint]) -> Result<Checkpoint, ExploreError> {
    let bad = |m: String| ExploreError::Shard(m);
    let first = checkpoints
        .first()
        .ok_or_else(|| bad("merge needs at least one shard checkpoint".into()))?;
    let of = match &first.shard {
        Some(meta) => meta.spec.of,
        None => return Err(bad(format!("`{}` is not a shard checkpoint", first.run))),
    };
    if checkpoints.len() != of {
        return Err(bad(format!(
            "run `{}` was split {of} ways but {} checkpoint(s) were given",
            first.run,
            checkpoints.len()
        )));
    }
    // Index the shards 0..of, rejecting duplicates and inconsistencies;
    // after this loop the merge no longer depends on input order.
    let mut by_index: Vec<Option<&Checkpoint>> = vec![None; of];
    for cp in checkpoints {
        let meta = cp
            .shard
            .as_ref()
            .ok_or_else(|| bad(format!("`{}` is not a shard checkpoint", cp.run)))?;
        if cp.run != first.run {
            return Err(bad(format!("run labels differ: `{}` vs `{}`", first.run, cp.run)));
        }
        if meta.spec.of != of {
            return Err(bad(format!(
                "shard counts differ: {} vs {} (run `{}`)",
                of, meta.spec.of, cp.run
            )));
        }
        if cp.config != first.config {
            return Err(bad(format!(
                "shard {} of run `{}` was produced under a different config",
                meta.spec, cp.run
            )));
        }
        if cp.state.rounds_done != first.state.rounds_done {
            return Err(bad(format!(
                "shard {} finished {} round(s), shard {} finished {}: resume the stragglers \
                 before merging",
                first.shard.as_ref().expect("checked").spec,
                first.state.rounds_done,
                meta.spec,
                cp.state.rounds_done
            )));
        }
        let slot = &mut by_index[meta.spec.index];
        if slot.is_some() {
            return Err(bad(format!("shard {} appears twice", meta.spec)));
        }
        *slot = Some(cp);
    }
    let config = first.config;
    let shards: Vec<&Checkpoint> =
        by_index.into_iter().map(|s| s.expect("complete cover")).collect();

    // Reassemble the walk vector by global index: shard i's walks are
    // the global walks `w ≡ i (mod of)`, ascending, so the w-th global
    // walk is the (w / of)-th walk of shard (w % of).
    let mut walks: Vec<WalkState> = Vec::with_capacity(config.walks);
    for w in 0..config.walks {
        let shard = shards[w % of];
        let local = w / of;
        let walk = shard.state.walks.get(local).ok_or_else(|| {
            bad(format!("shard {}/{of} holds no walk {w} (malformed shard state)", w % of))
        })?;
        walks.push(walk.clone());
    }

    // Union the archives in provenance order. Provenance is unique
    // across shards (a walk lives in exactly one shard; a shard's
    // entries carry distinct (block, walk, step)), so the sort is a
    // total order and the merge is input-order-independent. Content-key
    // dedup in that order reproduces the single-run archive: a key's
    // first evaluation in provenance order is exactly the occurrence
    // the single-process run archived.
    let mut entries: Vec<(Provenance, &Evaluated)> = Vec::new();
    for cp in &shards {
        let meta = cp.shard.as_ref().expect("checked");
        debug_assert_eq!(meta.prov.len(), cp.state.archive.len());
        entries.extend(meta.prov.iter().copied().zip(&cp.state.archive));
    }
    entries.sort_by_key(|&(prov, _)| prov);
    let mut archive: Vec<Evaluated> = Vec::with_capacity(entries.len());
    let mut seen: HashMap<u64, usize> = HashMap::with_capacity(entries.len());
    for (_, eval) in entries {
        push_dedup(&mut archive, &mut seen, eval.clone());
    }

    Ok(Checkpoint {
        run: first.run.clone(),
        config,
        state: ExploreState { rounds_done: first.state.rounds_done, walks, archive },
        stage_hit_rates: Vec::new(),
        shard: None,
    })
}

/// Convenience for drivers holding live shard states rather than
/// parsed checkpoints: packages each [`ShardState`] as a shard
/// checkpoint of `run` under `config` and merges.
///
/// # Errors
///
/// As [`merge_checkpoints`].
pub fn merge_shard_states(
    run: &str,
    config: ExploreConfig,
    shards: &[ShardState],
) -> Result<Checkpoint, ExploreError> {
    let checkpoints: Vec<Checkpoint> =
        shards.iter().map(|s| Checkpoint::from_shard(run, config, s, Vec::new())).collect();
    merge_checkpoints(&checkpoints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ExploreConfig, Explorer, ShardSpec};
    use crate::space::ExploreSpace;
    use qpd_circuit::Circuit;

    fn demo_circuit() -> Circuit {
        let mut c = Circuit::new(6);
        for _ in 0..3 {
            c.cx(0, 1).cx(1, 2).cx(3, 4).cx(4, 5).cx(0, 3).cx(1, 4).cx(2, 5);
        }
        c.cx(0, 4).cx(1, 3).cx(1, 5).cx(2, 4);
        c
    }

    fn explorer(config: ExploreConfig) -> Explorer {
        Explorer::new(ExploreSpace::new(demo_circuit(), config.max_aux), config).unwrap()
    }

    fn shardable_config(seed: u64) -> ExploreConfig {
        ExploreConfig { seed, ..ExploreConfig::quick() }.v1_compat()
    }

    fn shard_checkpoints(config: ExploreConfig, of: usize) -> Vec<Checkpoint> {
        (0..of)
            .map(|index| {
                let shard = explorer(config).run_shard(ShardSpec { index, of }).unwrap();
                Checkpoint::from_shard("demo", config, &shard, Vec::new())
            })
            .collect()
    }

    fn single_run_checkpoint(config: ExploreConfig) -> Checkpoint {
        Checkpoint {
            run: "demo".into(),
            config,
            state: explorer(config).run().unwrap(),
            stage_hit_rates: Vec::new(),
            shard: None,
        }
    }

    #[test]
    fn merge_reproduces_the_single_run_bytes() {
        let config = shardable_config(7);
        let reference = single_run_checkpoint(config).render();
        for of in [1usize, 2, 4] {
            let shards = shard_checkpoints(config, of);
            let merged = merge_checkpoints(&shards).unwrap();
            assert_eq!(merged.render(), reference, "merge of {of} shard(s) diverged");
        }
    }

    #[test]
    fn merge_is_input_order_independent() {
        let config = shardable_config(3);
        let mut shards = shard_checkpoints(config, 4);
        let reference = merge_checkpoints(&shards).unwrap().render();
        // A full permutation sweep lives in tests/shard_merge.rs; spot
        // reversal and a rotation here.
        shards.reverse();
        assert_eq!(merge_checkpoints(&shards).unwrap().render(), reference);
        shards.rotate_left(1);
        assert_eq!(merge_checkpoints(&shards).unwrap().render(), reference);
    }

    #[test]
    fn merge_shard_states_matches_checkpoint_merge() {
        let config = shardable_config(5);
        let of = 2;
        let states: Vec<_> = (0..of)
            .map(|index| explorer(config).run_shard(ShardSpec { index, of }).unwrap())
            .collect();
        let via_states = merge_shard_states("demo", config, &states).unwrap();
        let via_checkpoints = merge_checkpoints(&shard_checkpoints(config, of)).unwrap();
        assert_eq!(via_states, via_checkpoints);
        assert_eq!(via_states.render(), single_run_checkpoint(config).render());
    }

    #[test]
    fn merge_rejects_inconsistent_inputs() {
        let config = shardable_config(1);
        let shards = shard_checkpoints(config, 2);
        // Incomplete set.
        let err = merge_checkpoints(&shards[..1]).unwrap_err();
        assert!(err.to_string().contains("2 ways"), "{err}");
        // Duplicate shard.
        let dup = vec![shards[0].clone(), shards[0].clone()];
        assert!(merge_checkpoints(&dup).unwrap_err().to_string().contains("twice"));
        // A whole-run document is not a shard.
        let whole = single_run_checkpoint(config);
        assert!(merge_checkpoints(&[whole]).unwrap_err().to_string().contains("not a shard"));
        // Mismatched round counts are called out (a killed shard must be
        // resumed before merging).
        let mut uneven = shard_checkpoints(config, 2);
        uneven[1].state.rounds_done -= 1;
        assert!(merge_checkpoints(&uneven).unwrap_err().to_string().contains("resume"));
        // Mismatched configs.
        let mut mixed = shard_checkpoints(config, 2);
        mixed[1].config.seed += 1;
        assert!(merge_checkpoints(&mixed).unwrap_err().to_string().contains("config"));
        // Mismatched run labels.
        let mut renamed = shard_checkpoints(config, 2);
        renamed[1].run = "other".into();
        assert!(merge_checkpoints(&renamed).unwrap_err().to_string().contains("labels differ"));
        // Empty input.
        assert!(merge_checkpoints(&[]).is_err());
    }

    #[test]
    fn killed_and_resumed_shard_merges_identically() {
        let config = shardable_config(9);
        let of = 2;
        // Shard 1 is cut after one round, round-tripped through its
        // checkpoint bytes, and resumed on a fresh engine — the merge
        // must not notice.
        let s0 = explorer(config).run_shard(ShardSpec { index: 0, of }).unwrap();
        let cutter = explorer(config);
        let mut partial = cutter.initial_shard_state(ShardSpec { index: 1, of }).unwrap();
        cutter.advance_shard_round(&mut partial).unwrap();
        let bytes = Checkpoint::from_shard("demo", config, &partial, Vec::new()).render();
        let revived = Checkpoint::parse(&bytes).unwrap().to_shard_state().unwrap();
        let s1 = explorer(config).resume_shard(revived).unwrap();
        let merged = merge_shard_states("demo", config, &[s0, s1]).unwrap();
        assert_eq!(merged.render(), single_run_checkpoint(config).render());
    }
}
