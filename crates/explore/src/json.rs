//! Hand-rolled JSON: one tree type, one writer, one parser.
//!
//! The workspace's serde shim derives are no-ops, so everything that
//! persists structured data — the explorer's `EXPLORE_<run>.json`
//! checkpoints and `bench_snapshot`'s `BENCH_<pr>.json` perf baselines —
//! goes through this module instead of ad-hoc `String` pushes. The
//! emitter escapes strings, renders keys in insertion order (stable
//! bytes for byte-equality tests), and prints `f64`s with Rust's
//! shortest-round-trip formatting so [`Json::parse`] recovers the exact
//! bit pattern; integers beyond 2^53 must be carried as strings.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order, so rendering is
/// deterministic and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Rendered with Rust's shortest-round-trip `f64`
    /// formatting; integral values print without a decimal point.
    Num(f64),
    /// A string (escaped on output, unescaped on parse).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
    /// Pre-rendered JSON spliced in verbatim (never produced by the
    /// parser; for embedding externally produced lines, e.g. the
    /// criterion shim's per-benchmark JSON).
    Raw(String),
}

/// Error from [`Json::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting [`Json::parse`] accepts.
///
/// The parser recurses once per open `[`/`{`, so an adversarial
/// document of nothing but open brackets could otherwise exhaust the
/// stack — and the serve protocol feeds this parser raw socket bytes.
/// Every document the workspace writes (checkpoints, cache sidecars,
/// bench snapshots, serve requests) nests single digits deep, so 128
/// is generous headroom, not a tuning knob.
pub const MAX_PARSE_DEPTH: usize = 128;

impl Json {
    /// Builds an object from key/value pairs (insertion order kept).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not finite (JSON has no NaN/inf).
    pub fn num(v: f64) -> Json {
        assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
        Json::Num(v)
    }

    /// An integer value, exact up to 2^53.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not fit exactly in an `f64`.
    pub fn int(v: u64) -> Json {
        assert!(v <= (1u64 << 53), "{v} exceeds f64-exact integer range; use a string");
        Json::Num(v as f64)
    }

    /// The value at `key`, when this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer, when this is an integral
    /// number within `u64`'s f64-exact range.
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        (v >= 0.0 && v <= (1u64 << 53) as f64 && v.fract() == 0.0).then_some(v as u64)
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean value, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders with 2-space indentation and a trailing newline — the
    /// checkpoint/baseline on-disk format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on one line with no whitespace — the newline-delimited
    /// wire format of the serve protocol. String contents are escaped
    /// (`\n` included), so the output never contains a raw newline;
    /// parsing it back recovers the same tree, and re-rendering the
    /// parse is byte-identical (the byte-equality the serve tests pin).
    /// [`Json::Raw`] values are spliced verbatim, so a raw value
    /// containing a newline would break the one-line guarantee — the
    /// parser never produces `Raw`, and protocol documents must not.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render_compact_into(&mut out);
        out
    }

    fn render_compact_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                debug_assert!(v.is_finite());
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => escape_into(s, out),
            Json::Raw(s) => out.push_str(s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_compact_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_compact_into(out);
                }
                out.push('}');
            }
        }
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                debug_assert!(v.is_finite());
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => escape_into(s, out),
            Json::Raw(s) => out.push_str(s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push('\n');
                    indent(out, depth + 1);
                    item.render_into(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push('\n');
                    indent(out, depth + 1);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.render_into(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first
    /// problem. Containers nested deeper than [`MAX_PARSE_DEPTH`] are
    /// rejected rather than recursed into (stack-safety on untrusted
    /// input).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after document"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(at: usize, message: impl Into<String>) -> JsonError {
    JsonError { at, message: message.into() }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected `{}`", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected `{word}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    let v: f64 = text.parse().map_err(|_| err(start, format!("invalid number `{text}`")))?;
    if !v.is_finite() {
        return Err(err(start, "number overflows f64"));
    }
    Ok(Json::Num(v))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(err(*pos, "unterminated string"));
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(err(*pos, "unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        *pos += 4;
                        // Surrogates are not emitted by our writer; map
                        // them to the replacement character on input.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => {
                        return Err(err(*pos - 1, format!("bad escape `\\{}`", other as char)))
                    }
                }
            }
            _ => {
                // Copy one UTF-8 scalar (multi-byte sequences included).
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "invalid UTF-8 in string"))?;
                let c = s.chars().next().expect("non-empty by guard");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn check_depth(at: usize, depth: usize) -> Result<(), JsonError> {
    if depth >= MAX_PARSE_DEPTH {
        return Err(err(at, format!("nesting exceeds {MAX_PARSE_DEPTH} levels")));
    }
    Ok(())
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    check_depth(*pos, depth)?;
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]` in array")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    check_depth(*pos, depth)?;
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(err(*pos, "expected `,` or `}` in object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip_is_exact() {
        let doc = Json::obj([
            ("name", Json::str("run \"alpha\"\nline2")),
            ("count", Json::int(12)),
            ("rate", Json::num(0.1)),
            ("sigma", Json::num(0.030_000_000_000_000_002)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            ("items", Json::Arr(vec![Json::int(1), Json::num(-2.5), Json::str("x")])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = doc.render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        // Bytes are stable under a second render (fixpoint).
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn float_round_trip_preserves_bits() {
        for v in [0.1, 1.0 / 3.0, 2.0f64.powi(-40), 9_007_199_254_740_991.0, -0.030] {
            let text = Json::num(v).render();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "value {v}");
        }
    }

    /// Checkpoints cross process boundaries under `--shard`/`--merge`,
    /// so the f64 edge cases must round-trip bit-exactly through both
    /// renderers and the parser: negative zero (sign bit preserved),
    /// subnormals down to the smallest (5e-324), and values at the
    /// 1e308 scale up to `f64::MAX`.
    #[test]
    fn f64_edge_cases_round_trip_bit_exactly() {
        let cases = [
            -0.0,
            5e-324, // smallest positive subnormal
            -5e-324,
            2.225_073_858_507_201e-308, // largest subnormal
            f64::MIN_POSITIVE,          // smallest normal
            1e308,
            -1e308,
            f64::MAX,
            f64::MIN,
        ];
        for v in cases {
            for text in [Json::num(v).render(), Json::num(v).render_compact()] {
                let back = Json::parse(&text).unwrap().as_f64().unwrap();
                assert_eq!(back.to_bits(), v.to_bits(), "value {v:e} via {text:?}");
            }
        }
        // The sign of zero survives in the rendered text itself, not
        // just in memory: "-0" parses back to the negative-zero bits.
        assert_eq!(Json::num(-0.0).render_compact(), "-0");
        assert_eq!(Json::parse("-0").unwrap().as_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        // Scientific-notation input is accepted and maps to the same
        // bits as the decimal expansion the renderer emits.
        assert_eq!(Json::parse("5e-324").unwrap().as_f64().unwrap().to_bits(), 5e-324f64.to_bits());
        assert_eq!(Json::parse("1E308").unwrap().as_f64().unwrap().to_bits(), 1e308f64.to_bits());
        // Just past the finite range is a parse error, not an Inf that
        // would poison a later render.
        assert!(Json::parse("1e309").is_err());
    }

    #[test]
    fn integral_numbers_render_without_decimal_point() {
        assert_eq!(Json::int(10_000).render(), "10000\n");
        assert_eq!(Json::num(3.0).render(), "3\n");
    }

    #[test]
    fn escapes_cover_control_and_quotes() {
        let s = "a\"b\\c\nd\te\u{1}";
        let text = Json::str(s).render();
        assert_eq!(Json::parse(&text).unwrap().as_str().unwrap(), s);
        assert!(text.contains("\\u0001"));
    }

    #[test]
    fn key_order_is_insertion_order() {
        let doc = Json::obj([("zebra", Json::int(1)), ("alpha", Json::int(2))]);
        let text = doc.render();
        assert!(text.find("zebra").unwrap() < text.find("alpha").unwrap());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1.2.3", "\"unterminated", "{} extra"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let doc = Json::obj([("a", Json::int(5)), ("b", Json::str("x"))]);
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(5));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::num(1.5).as_u64(), None, "non-integral");
    }

    #[test]
    fn compact_render_is_one_line_and_round_trips() {
        let doc = Json::obj([
            ("name", Json::str("line1\nline2 \"quoted\"")),
            ("items", Json::Arr(vec![Json::int(1), Json::num(-2.5), Json::Null])),
            ("nested", Json::obj([("flag", Json::Bool(true))])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let line = doc.render_compact();
        assert!(!line.contains('\n'), "compact render leaked a newline: {line:?}");
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(parsed, doc);
        // Byte-stable: re-rendering the parse reproduces the line.
        assert_eq!(parsed.render_compact(), line);
        assert_eq!(Json::obj([("a", Json::int(1))]).render_compact(), "{\"a\":1}");
    }

    #[test]
    fn raw_values_splice_verbatim() {
        let doc = Json::obj([("line", Json::Raw("{\"k\": 1}".into()))]);
        assert!(doc.render().contains("\"line\": {\"k\": 1}"));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_numbers_rejected() {
        let _ = Json::num(f64::NAN);
    }

    // ---- adversarial input (the serve protocol feeds this parser raw
    // socket bytes, so every failure must be an `Err`, never a panic or
    // a stack overflow) ----

    #[test]
    fn truncated_documents_error_at_the_cut() {
        let full = Json::obj([
            ("k", Json::str("v")),
            ("arr", Json::Arr(vec![Json::int(1), Json::Bool(false)])),
            ("nested", Json::obj([("x", Json::num(-2.5))])),
        ])
        .render();
        // Drop the trailing newline: `…}` is already complete.
        let full = full.trim_end();
        // Every strict prefix must fail cleanly (the document only
        // parses whole).
        for cut in 1..full.len() {
            if !full.is_char_boundary(cut) {
                continue;
            }
            assert!(Json::parse(&full[..cut]).is_err(), "accepted prefix of {cut} bytes");
        }
    }

    #[test]
    fn malformed_documents_rejected_with_offsets() {
        let cases = [
            ("{\"a\": 1,}", "expected"),         // trailing comma
            ("[1, 2,]", "invalid number"),       // trailing comma in array
            ("{\"a\": }", "invalid number"),     // missing value
            ("{a: 1}", "expected"),              // unquoted key
            ("{\"a\": 1 \"b\": 2}", "expected"), // missing comma
            ("[1 2]", "expected"),               // missing comma in array
            ("nul", "expected `null`"),
            ("truefalse", "trailing"),
            ("\"bad \\x escape\"", "bad escape"),
            ("\"trunc \\u00", "truncated"),
            ("01e", "invalid number"),
            ("-", "invalid number"),
            (".5e", "invalid number"),
        ];
        for (bad, want) in cases {
            match Json::parse(bad) {
                Err(e) => {
                    assert!(
                        e.message.contains(want),
                        "{bad:?}: got `{}`, want `{want}`",
                        e.message
                    );
                    assert!(e.at <= bad.len(), "{bad:?}: offset {} out of range", e.at);
                }
                Ok(v) => panic!("accepted {bad:?} as {v:?}"),
            }
        }
    }

    #[test]
    fn nan_and_inf_spellings_rejected() {
        // Rust's f64 parser accepts `NaN`/`inf` spellings, so the
        // number scanner must never hand them through — and the keyword
        // paths must not be tricked either.
        for bad in ["NaN", "nan", "inf", "Infinity", "-inf", "-Infinity", "1e999", "-1e999"] {
            match Json::parse(bad) {
                Err(_) => {}
                Ok(v) => {
                    panic!("accepted {bad:?} as {v:?}");
                }
            }
        }
        // Embedded in containers too (the realistic attack shape).
        assert!(Json::parse("{\"v\": 1e999}").is_err());
        assert!(Json::parse("[NaN]").is_err());
    }

    #[test]
    fn nesting_is_bounded_not_stack_bound() {
        // Just under the cap parses…
        let deep_ok = "[".repeat(MAX_PARSE_DEPTH) + &"]".repeat(MAX_PARSE_DEPTH);
        assert!(Json::parse(&deep_ok).is_ok());
        // …one past it errors…
        let over = "[".repeat(MAX_PARSE_DEPTH + 1) + &"]".repeat(MAX_PARSE_DEPTH + 1);
        let e = Json::parse(&over).unwrap_err();
        assert!(e.message.contains("nesting"), "got `{}`", e.message);
        // …and a megabyte of open brackets errors instead of
        // overflowing the stack (objects recurse through values too).
        for deep in ["[".repeat(1 << 20), "{\"k\":".repeat(1 << 17)] {
            assert!(Json::parse(&deep).is_err());
        }
    }

    #[test]
    fn invalid_utf8_escapes_and_surrogates_degrade_safely() {
        // Lone surrogate escapes map to U+FFFD rather than producing
        // invalid strings.
        let parsed = Json::parse("\"\\ud800\"").unwrap();
        assert_eq!(parsed.as_str().unwrap(), "\u{fffd}");
        // Raw DEL and multi-byte UTF-8 pass through unmangled.
        let parsed = Json::parse("\"\u{7f}é\"").unwrap();
        assert_eq!(parsed.as_str().unwrap(), "\u{7f}é");
    }
}
