//! Hand-rolled JSON: one tree type, one writer, one parser.
//!
//! The workspace's serde shim derives are no-ops, so everything that
//! persists structured data — the explorer's `EXPLORE_<run>.json`
//! checkpoints and `bench_snapshot`'s `BENCH_<pr>.json` perf baselines —
//! goes through this module instead of ad-hoc `String` pushes. The
//! emitter escapes strings, renders keys in insertion order (stable
//! bytes for byte-equality tests), and prints `f64`s with Rust's
//! shortest-round-trip formatting so [`Json::parse`] recovers the exact
//! bit pattern; integers beyond 2^53 must be carried as strings.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order, so rendering is
/// deterministic and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Rendered with Rust's shortest-round-trip `f64`
    /// formatting; integral values print without a decimal point.
    Num(f64),
    /// A string (escaped on output, unescaped on parse).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
    /// Pre-rendered JSON spliced in verbatim (never produced by the
    /// parser; for embedding externally produced lines, e.g. the
    /// criterion shim's per-benchmark JSON).
    Raw(String),
}

/// Error from [`Json::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs (insertion order kept).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not finite (JSON has no NaN/inf).
    pub fn num(v: f64) -> Json {
        assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
        Json::Num(v)
    }

    /// An integer value, exact up to 2^53.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not fit exactly in an `f64`.
    pub fn int(v: u64) -> Json {
        assert!(v <= (1u64 << 53), "{v} exceeds f64-exact integer range; use a string");
        Json::Num(v as f64)
    }

    /// The value at `key`, when this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer, when this is an integral
    /// number within `u64`'s f64-exact range.
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        (v >= 0.0 && v <= (1u64 << 53) as f64 && v.fract() == 0.0).then_some(v as u64)
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean value, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders with 2-space indentation and a trailing newline — the
    /// checkpoint/baseline on-disk format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                debug_assert!(v.is_finite());
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => escape_into(s, out),
            Json::Raw(s) => out.push_str(s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push('\n');
                    indent(out, depth + 1);
                    item.render_into(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push('\n');
                    indent(out, depth + 1);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.render_into(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after document"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(at: usize, message: impl Into<String>) -> JsonError {
    JsonError { at, message: message.into() }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected `{}`", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected `{word}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    let v: f64 = text.parse().map_err(|_| err(start, format!("invalid number `{text}`")))?;
    if !v.is_finite() {
        return Err(err(start, "number overflows f64"));
    }
    Ok(Json::Num(v))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(err(*pos, "unterminated string"));
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(err(*pos, "unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        *pos += 4;
                        // Surrogates are not emitted by our writer; map
                        // them to the replacement character on input.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => {
                        return Err(err(*pos - 1, format!("bad escape `\\{}`", other as char)))
                    }
                }
            }
            _ => {
                // Copy one UTF-8 scalar (multi-byte sequences included).
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "invalid UTF-8 in string"))?;
                let c = s.chars().next().expect("non-empty by guard");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]` in array")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(err(*pos, "expected `,` or `}` in object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip_is_exact() {
        let doc = Json::obj([
            ("name", Json::str("run \"alpha\"\nline2")),
            ("count", Json::int(12)),
            ("rate", Json::num(0.1)),
            ("sigma", Json::num(0.030_000_000_000_000_002)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            ("items", Json::Arr(vec![Json::int(1), Json::num(-2.5), Json::str("x")])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = doc.render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        // Bytes are stable under a second render (fixpoint).
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn float_round_trip_preserves_bits() {
        for v in [0.1, 1.0 / 3.0, 2.0f64.powi(-40), 9_007_199_254_740_991.0, -0.030] {
            let text = Json::num(v).render();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "value {v}");
        }
    }

    #[test]
    fn integral_numbers_render_without_decimal_point() {
        assert_eq!(Json::int(10_000).render(), "10000\n");
        assert_eq!(Json::num(3.0).render(), "3\n");
    }

    #[test]
    fn escapes_cover_control_and_quotes() {
        let s = "a\"b\\c\nd\te\u{1}";
        let text = Json::str(s).render();
        assert_eq!(Json::parse(&text).unwrap().as_str().unwrap(), s);
        assert!(text.contains("\\u0001"));
    }

    #[test]
    fn key_order_is_insertion_order() {
        let doc = Json::obj([("zebra", Json::int(1)), ("alpha", Json::int(2))]);
        let text = doc.render();
        assert!(text.find("zebra").unwrap() < text.find("alpha").unwrap());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1.2.3", "\"unterminated", "{} extra"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let doc = Json::obj([("a", Json::int(5)), ("b", Json::str("x"))]);
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(5));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::num(1.5).as_u64(), None, "non-integral");
    }

    #[test]
    fn raw_values_splice_verbatim() {
        let doc = Json::obj([("line", Json::Raw("{\"k\": 1}".into()))]);
        assert!(doc.render().contains("\"line\": {\"k\": 1}"));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_numbers_rejected() {
        let _ = Json::num(f64::NAN);
    }
}
