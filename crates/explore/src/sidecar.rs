//! Stage-cache sidecar: persisting warm route/yield entries.
//!
//! Alongside every `EXPLORE_<run>.json` checkpoint the explorer writes
//! `EXPLORE_<run>_caches.json`, a sidecar carrying the routing and
//! yield stage-cache entries. Loading it back warms the caches of a
//! resumed run — or, since PR 8, of a freshly booted `qpd_serve`
//! daemon — so work the previous process already paid for is never
//! recomputed. Stages are pure functions of their content keys, so warm
//! entries can only skip recomputation, never change a result; that is
//! why loading is best-effort (a missing, stale, or malformed sidecar
//! is reported but never an error).
//!
//! The format is key-sorted with keys as decimal strings (they exceed
//! the f64-exact integer range), values as `[a, b]` pairs — byte-stable
//! for a given cache content, diff-friendly, and shared verbatim
//! between `explore_run` and the serve daemon.

use std::path::Path;

use crate::cache::StageCaches;
use crate::json::Json;

/// Sidecar schema tag for the persisted stage-cache entries.
pub const SCHEMA: &str = "qpd-explore-caches/1";

/// The cache sidecar riding along with `EXPLORE_<run>.json`.
pub fn file_name(run: &str) -> String {
    format!("EXPLORE_{run}_caches.json")
}

/// What [`load`] found — the caller decides how loudly to report it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SidecarLoad {
    /// No file at the path: the cold-start case, not an anomaly.
    Missing,
    /// A file existed but was skipped (unparseable, or an unknown
    /// schema tag); the str says which.
    Ignored(&'static str),
    /// Entries restored, counted per stage.
    Loaded {
        /// Routing-stage entries inserted.
        routes: usize,
        /// Yield-stage entries inserted.
        yields: usize,
    },
}

impl SidecarLoad {
    /// Total entries restored (zero unless `Loaded`).
    pub fn total(&self) -> usize {
        match self {
            SidecarLoad::Loaded { routes, yields } => routes + yields,
            _ => 0,
        }
    }
}

/// Serializes the routing and yield cache entries so the next process
/// starts warm instead of re-simulating everything already paid for.
pub fn render(caches: &StageCaches) -> String {
    let table = |entries: Vec<(u64, (u64, u64))>| {
        Json::Arr(
            entries
                .into_iter()
                .map(|(key, (a, b))| {
                    Json::obj([
                        ("key", Json::str(key.to_string())),
                        ("value", Json::Arr(vec![Json::int(a), Json::int(b)])),
                    ])
                })
                .collect(),
        )
    };
    Json::obj([
        ("schema", Json::str(SCHEMA)),
        ("routes", table(caches.routes.entries())),
        ("yields", table(caches.yields.entries())),
    ])
    .render()
}

/// Loads a sidecar into `caches`, reporting what happened per stage.
/// Warm entries can only skip recomputation, never change a result, so
/// every failure mode degrades to "start cold" instead of erroring.
pub fn load(path: &Path, caches: &StageCaches) -> SidecarLoad {
    let Ok(text) = std::fs::read_to_string(path) else {
        return SidecarLoad::Missing;
    };
    let Ok(doc) = Json::parse(&text) else {
        return SidecarLoad::Ignored("unparseable document");
    };
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return SidecarLoad::Ignored("unknown schema");
    }
    let mut counts = [0usize; 2];
    for (slot, (field, cache)) in
        [("routes", &caches.routes), ("yields", &caches.yields)].into_iter().enumerate()
    {
        let Some(entries) = doc.get(field).and_then(Json::as_arr) else {
            continue;
        };
        for e in entries {
            let key = e.get("key").and_then(Json::as_str).and_then(|s| s.parse::<u64>().ok());
            let value = e.get("value").and_then(Json::as_arr).and_then(|pair| {
                match (pair.first().and_then(Json::as_u64), pair.get(1).and_then(Json::as_u64)) {
                    (Some(a), Some(b)) => Some((a, b)),
                    _ => None,
                }
            });
            if let (Some(key), Some(value)) = (key, value) {
                cache.insert(key, value);
                counts[slot] += 1;
            }
        }
    }
    SidecarLoad::Loaded { routes: counts[0], yields: counts[1] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_load_round_trips_per_stage() {
        let caches = StageCaches::default();
        caches.routes.insert(1, (10, 20));
        caches.routes.insert(2, (30, 40));
        caches.yields.insert(99, (7, 8));
        let text = render(&caches);
        assert!(text.contains(SCHEMA));

        let dir = std::env::temp_dir().join("qpd_sidecar_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(file_name("unit"));
        std::fs::write(&path, &text).unwrap();

        let fresh = StageCaches::default();
        assert_eq!(load(&path, &fresh), SidecarLoad::Loaded { routes: 2, yields: 1 });
        assert_eq!(fresh.routes.get(2), Some((30, 40)));
        assert_eq!(fresh.yields.get(99), Some((7, 8)));
        // Warm caches render the same bytes back (entries are key-sorted).
        assert_eq!(render(&fresh), text);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_and_malformed_sidecars_degrade_to_cold() {
        let caches = StageCaches::default();
        let dir = std::env::temp_dir().join("qpd_sidecar_test_bad");
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(load(&dir.join("absent.json"), &caches), SidecarLoad::Missing);

        let garbled = dir.join("garbled.json");
        std::fs::write(&garbled, "not json").unwrap();
        assert_eq!(load(&garbled, &caches), SidecarLoad::Ignored("unparseable document"));

        let alien = dir.join("alien.json");
        std::fs::write(&alien, "{\"schema\": \"other/1\"}").unwrap();
        assert_eq!(load(&alien, &caches), SidecarLoad::Ignored("unknown schema"));

        assert_eq!(caches.routes.len() + caches.yields.len(), 0, "nothing leaked in");
        std::fs::remove_file(&garbled).ok();
        std::fs::remove_file(&alien).ok();
    }

    #[test]
    fn file_name_convention() {
        assert_eq!(file_name("sym6_145"), "EXPLORE_sym6_145_caches.json");
    }
}
