//! The search space: knob bounds, layout variants, and perturbation
//! moves over one profiled program.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use qpd_circuit::Circuit;
use qpd_core::{
    candidate_squares, place_auxiliary, place_qubits, select_buses_random, select_buses_weighted,
};
use qpd_profile::CouplingProfile;
use qpd_topology::{Coord, Square};

use crate::spec::{BusSpec, CandidateSpec, PlacementVariant};

/// One precomputed layout: the coordinates and square universe for an
/// (auxiliary count, placement variant) combination.
#[derive(Debug, Clone)]
struct Layout {
    coords: Vec<Coord>,
    /// All squares with >= 3 placed corners, ascending by origin.
    candidates: Vec<Square>,
    /// Algorithm 2's full weighted selection order.
    weighted_order: Vec<Square>,
}

/// The design space over one profiled program: every knob combination a
/// [`CandidateSpec`] can name, with the layouts precomputed so resolving
/// and mutating candidates is cheap and allocation-free of surprises.
#[derive(Debug, Clone)]
pub struct ExploreSpace {
    profile: CouplingProfile,
    circuit: Circuit,
    max_aux: usize,
    /// Indexed `[variant][aux]`, variant 0 = identity, 1 = transposed.
    layouts: Vec<Vec<Layout>>,
}

fn transpose(coords: &[Coord]) -> Vec<Coord> {
    coords.iter().map(|c| Coord::new(c.col, c.row)).collect()
}

impl ExploreSpace {
    /// Builds the space for a program: its coupling profile (placement,
    /// bus weights) and the circuit itself (the routing objective), with
    /// auxiliary-qubit counts `0..=max_aux` in scope.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has no qubits.
    pub fn new(circuit: Circuit, max_aux: usize) -> Self {
        let profile = CouplingProfile::of(&circuit);
        assert!(profile.num_qubits() > 0, "cannot explore an empty program");
        let base = place_qubits(&profile);
        let layouts = [false, true]
            .iter()
            .map(|&transposed| {
                let placed = if transposed { transpose(&base) } else { base.clone() };
                (0..=max_aux)
                    .map(|aux| {
                        let mut coords = placed.clone();
                        if aux > 0 {
                            coords.extend(place_auxiliary(&coords, aux));
                        }
                        let candidates = candidate_squares(&coords);
                        let weighted_order = select_buses_weighted(&coords, &profile, usize::MAX);
                        Layout { coords, candidates, weighted_order }
                    })
                    .collect()
            })
            .collect();
        ExploreSpace { profile, circuit, max_aux, layouts }
    }

    /// The profiled program's coupling profile.
    pub fn profile(&self) -> &CouplingProfile {
        &self.profile
    }

    /// The program being routed against every candidate.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The largest auxiliary-qubit count in scope.
    pub fn max_aux(&self) -> usize {
        self.max_aux
    }

    /// Length of the full weighted bus order for the identity layout —
    /// the `eff-full` bus count.
    pub fn full_weighted_len(&self) -> usize {
        self.layouts[0][0].weighted_order.len()
    }

    fn layout(&self, spec: &CandidateSpec) -> &Layout {
        let variant = match spec.placement {
            PlacementVariant::Identity => 0,
            PlacementVariant::Transposed => 1,
        };
        &self.layouts[variant][spec.aux_qubits.min(self.max_aux)]
    }

    /// Materializes a spec into coordinates and a concrete square set.
    /// Explicit sets pass through; strategy-derived sets are resolved
    /// against the spec's layout.
    pub fn resolve(&self, spec: &CandidateSpec) -> (Vec<Coord>, Vec<Square>) {
        let layout = self.layout(spec);
        let squares = match &spec.bus {
            BusSpec::Weighted { count } => {
                let k = (*count).min(layout.weighted_order.len());
                layout.weighted_order[..k].to_vec()
            }
            BusSpec::Random { seed, count } => select_buses_random(&layout.coords, *count, *seed),
            BusSpec::Explicit(squares) => squares.clone(),
        };
        (layout.coords.clone(), squares)
    }

    /// Squares of `layout` that can join `set` without violating the
    /// prohibited condition, ascending.
    fn addable(&self, layout: &Layout, set: &[Square]) -> Vec<Square> {
        layout
            .candidates
            .iter()
            .copied()
            .filter(|s| !set.contains(s) && !set.iter().any(|t| s.neighbors4().contains(t)))
            .collect()
    }

    /// One perturbation move: a new spec differing from `spec` in one
    /// knob — frequency strategy, auxiliary count, placement variant, a
    /// bus-set square move (add / remove / swap under the prohibited
    /// condition), or a reseeded random selection. Deterministic in the
    /// RNG state; inapplicable moves fall through to the next kind.
    pub fn mutate(&self, spec: &CandidateSpec, rng: &mut ChaCha8Rng) -> CandidateSpec {
        const KINDS: u32 = 6;
        let base_kind = rng.gen_range(0..KINDS);
        for attempt in 0..KINDS {
            let kind = (base_kind + attempt) % KINDS;
            if let Some(next) = self.apply_move(spec, kind, rng) {
                return next;
            }
        }
        spec.clone()
    }

    fn apply_move(
        &self,
        spec: &CandidateSpec,
        kind: u32,
        rng: &mut ChaCha8Rng,
    ) -> Option<CandidateSpec> {
        use qpd_core::FrequencyStrategy;
        let mut next = spec.clone();
        match kind {
            // Toggle the frequency strategy.
            0 => {
                next.frequency = match spec.frequency {
                    FrequencyStrategy::Optimized => FrequencyStrategy::FiveFrequency,
                    FrequencyStrategy::FiveFrequency => FrequencyStrategy::Optimized,
                };
                Some(next)
            }
            // Re-draw the auxiliary count (always different from the
            // current one).
            1 => {
                if self.max_aux == 0 {
                    return None;
                }
                let offset = rng.gen_range(0..self.max_aux as u32) as usize;
                next.aux_qubits = (spec.aux_qubits + 1 + offset) % (self.max_aux + 1);
                self.rebase_buses(&mut next);
                Some(next)
            }
            // Toggle the placement variant.
            2 => {
                next.placement = match spec.placement {
                    PlacementVariant::Identity => PlacementVariant::Transposed,
                    PlacementVariant::Transposed => PlacementVariant::Identity,
                };
                self.rebase_buses(&mut next);
                Some(next)
            }
            // Square moves on the explicit set.
            3 => self.square_add(spec, rng),
            4 => self.square_remove(spec, rng),
            5 => self.square_swap(spec, rng),
            _ => unreachable!("move kind out of range"),
        }
    }

    /// After a layout change (auxiliary count or placement variant) the
    /// old square set may reference coordinates that no longer exist;
    /// re-derive it from the weighted order at the same budget.
    fn rebase_buses(&self, spec: &mut CandidateSpec) {
        let budget = match &spec.bus {
            BusSpec::Weighted { count } => *count,
            BusSpec::Random { count, .. } => *count,
            BusSpec::Explicit(squares) => squares.len(),
        };
        let order_len = self.layout(spec).weighted_order.len();
        spec.bus = BusSpec::Weighted { count: budget.min(order_len) };
    }

    /// Makes a spec assembled from foreign knob blocks (cross-walk
    /// recombination) valid for its own layout: an explicit square set
    /// carried over from a different (auxiliary count, placement)
    /// combination may reference squares that no longer have three
    /// placed corners, or collide under the prohibited condition — such
    /// sets are rebased onto the weighted order at the same budget.
    /// Strategy-derived sets are already layout-independent and pass
    /// through untouched.
    pub fn sanitize(&self, spec: CandidateSpec) -> CandidateSpec {
        let BusSpec::Explicit(squares) = &spec.bus else {
            return spec;
        };
        let layout = self.layout(&spec);
        let valid = squares.iter().all(|s| layout.candidates.contains(s))
            && squares
                .iter()
                .enumerate()
                .all(|(i, a)| squares[i + 1..].iter().all(|b| !a.neighbors4().contains(b)));
        if valid {
            spec
        } else {
            let mut rebased = spec;
            self.rebase_buses(&mut rebased);
            rebased
        }
    }

    fn square_add(&self, spec: &CandidateSpec, rng: &mut ChaCha8Rng) -> Option<CandidateSpec> {
        let layout = self.layout(spec);
        let (_, set) = self.resolve(spec);
        let avail = self.addable(layout, &set);
        if avail.is_empty() {
            return None;
        }
        let pick = avail[rng.gen_range(0..avail.len())];
        let mut squares = set;
        squares.push(pick);
        squares.sort_unstable();
        Some(CandidateSpec { bus: BusSpec::Explicit(squares), ..spec.clone() })
    }

    fn square_remove(&self, spec: &CandidateSpec, rng: &mut ChaCha8Rng) -> Option<CandidateSpec> {
        let (_, mut squares) = self.resolve(spec);
        if squares.is_empty() {
            return None;
        }
        squares.remove(rng.gen_range(0..squares.len()));
        squares.sort_unstable();
        Some(CandidateSpec { bus: BusSpec::Explicit(squares), ..spec.clone() })
    }

    fn square_swap(&self, spec: &CandidateSpec, rng: &mut ChaCha8Rng) -> Option<CandidateSpec> {
        let layout = self.layout(spec);
        let (_, mut squares) = self.resolve(spec);
        if squares.is_empty() {
            return None;
        }
        squares.remove(rng.gen_range(0..squares.len()));
        let avail = self.addable(layout, &squares);
        if avail.is_empty() {
            return None;
        }
        squares.push(avail[rng.gen_range(0..avail.len())]);
        squares.sort_unstable();
        Some(CandidateSpec { bus: BusSpec::Explicit(squares), ..spec.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// A 6-qubit program with enough diagonal demand to make squares
    /// attractive.
    fn demo_circuit() -> Circuit {
        let mut c = Circuit::new(6);
        for _ in 0..4 {
            c.cx(0, 1).cx(1, 2).cx(3, 4).cx(4, 5).cx(0, 3).cx(1, 4).cx(2, 5);
        }
        c.cx(0, 4).cx(1, 3).cx(1, 5).cx(2, 4);
        c
    }

    fn space() -> ExploreSpace {
        ExploreSpace::new(demo_circuit(), 2)
    }

    #[test]
    fn eff_full_resolves_to_the_weighted_selection() {
        let space = space();
        let spec = CandidateSpec::eff_full(space.full_weighted_len());
        let (coords, squares) = space.resolve(&spec);
        assert_eq!(coords.len(), 6);
        assert_eq!(squares.len(), space.full_weighted_len());
        assert!(space.full_weighted_len() >= 1, "demo profile should want a bus");
    }

    #[test]
    fn transposed_layout_swaps_rows_and_columns() {
        let space = space();
        let id =
            CandidateSpec { placement: PlacementVariant::Identity, ..CandidateSpec::eff_full(0) };
        let tr =
            CandidateSpec { placement: PlacementVariant::Transposed, ..CandidateSpec::eff_full(0) };
        let (a, _) = space.resolve(&id);
        let (b, _) = space.resolve(&tr);
        assert_eq!(b, transpose(&a));
    }

    #[test]
    fn aux_qubits_extend_coords() {
        let space = space();
        let spec = CandidateSpec { aux_qubits: 2, ..CandidateSpec::eff_full(0) };
        let (coords, _) = space.resolve(&spec);
        assert_eq!(coords.len(), 8);
        // All distinct.
        let mut sorted = coords.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
    }

    #[test]
    fn mutation_preserves_prohibited_condition() {
        let space = space();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut spec = CandidateSpec::eff_full(space.full_weighted_len());
        for step in 0..60 {
            spec = space.mutate(&spec, &mut rng);
            let (coords, squares) = space.resolve(&spec);
            for (i, a) in squares.iter().enumerate() {
                for b in &squares[i + 1..] {
                    assert!(!a.neighbors4().contains(b), "step {step}: adjacent {a:?} {b:?}");
                }
                // Each square still has >= 3 placed corners.
                let corners = a.corners().iter().filter(|c| coords.contains(c)).count();
                assert!(corners >= 3, "step {step}: floating square {a:?}");
            }
        }
    }

    #[test]
    fn mutation_is_deterministic_in_the_stream() {
        let space = space();
        let spec = CandidateSpec::eff_full(space.full_weighted_len());
        let walk = |seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut s = spec.clone();
            (0..20)
                .map(|_| {
                    s = space.mutate(&s, &mut rng);
                    s.clone()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(walk(3), walk(3));
        assert_ne!(walk(3), walk(4), "different seeds should diverge");
    }

    #[test]
    fn sanitize_rebases_foreign_explicit_sets_and_keeps_valid_ones() {
        let space = space();
        // A valid explicit set for the identity/0-aux layout.
        let (_, squares) = space.resolve(&CandidateSpec::eff_full(space.full_weighted_len()));
        let valid =
            CandidateSpec { bus: BusSpec::Explicit(squares.clone()), ..CandidateSpec::eff_full(0) };
        assert_eq!(space.sanitize(valid.clone()), valid, "valid sets pass through");
        // The same squares under the transposed layout are (generally)
        // floating; sanitize must produce a resolvable spec either way.
        let foreign = CandidateSpec { placement: PlacementVariant::Transposed, ..valid };
        let fixed = space.sanitize(foreign);
        let (coords, fixed_squares) = space.resolve(&fixed);
        for (i, a) in fixed_squares.iter().enumerate() {
            assert!(a.corners().iter().filter(|c| coords.contains(c)).count() >= 3);
            for b in &fixed_squares[i + 1..] {
                assert!(!a.neighbors4().contains(b));
            }
        }
        // A square that exists on no layout is always rebased.
        let bogus = CandidateSpec {
            bus: BusSpec::Explicit(vec![Square::new(99, 99)]),
            ..CandidateSpec::eff_full(0)
        };
        let rebased = space.sanitize(bogus);
        assert!(matches!(rebased.bus, BusSpec::Weighted { count: 1 }));
    }

    #[test]
    fn mutation_changes_something() {
        let space = space();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let spec = CandidateSpec::eff_full(space.full_weighted_len());
        let mut changed = 0;
        let mut s = spec.clone();
        for _ in 0..30 {
            let next = space.mutate(&s, &mut rng);
            if next != s {
                changed += 1;
            }
            s = next;
        }
        assert!(changed >= 25, "only {changed}/30 moves changed the spec");
    }
}
