//! The explorer's knob surface: one point in the design space.

use qpd_core::{FrequencyStrategy, StageKind, StageSet};
use qpd_topology::Square;
use qpd_yield::HardwareFamily;

use crate::json::Json;

/// How a candidate's 4-qubit bus set is derived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusSpec {
    /// The first `count` squares of Algorithm 2's weighted order for the
    /// candidate's layout.
    Weighted {
        /// Number of buses taken from the weighted order.
        count: usize,
    },
    /// `count` squares chosen by the seeded uniform-random selection
    /// (the paper's `eff-rd-bus` knob).
    Random {
        /// Seed of the random selection.
        seed: u64,
        /// Number of buses requested.
        count: usize,
    },
    /// An explicit square set — the result of add/remove/swap
    /// perturbation moves. Always kept valid under the prohibited
    /// condition by the move generator.
    Explicit(Vec<Square>),
}

/// Deterministic transform applied to the placed layout.
///
/// Placement itself (Algorithm 1) is deterministic in the profile; the
/// variants give the search distinct but equally valid embeddings —
/// transposition changes the five-frequency pattern assignment and the
/// center-out allocation order, so the same logical design lands on a
/// different point of the objective space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementVariant {
    /// Algorithm 1's placement as-is.
    Identity,
    /// Rows and columns swapped (reflection across the main diagonal).
    Transposed,
}

/// One candidate architecture, described by knobs rather than by the
/// materialized chip — cheap to mutate, hash, and checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateSpec {
    /// Bus-set derivation.
    pub bus: BusSpec,
    /// Frequency strategy (optimized Algorithm 3 or the 5-frequency
    /// pattern).
    pub frequency: FrequencyStrategy,
    /// Auxiliary physical qubits appended around the placed layout.
    pub aux_qubits: usize,
    /// Layout transform.
    pub placement: PlacementVariant,
    /// Hardware family the candidate is designed for — the fifth knob.
    /// Supplies the frequency band, pattern menu, collision constraints,
    /// and effective fabrication noise of the frequency and yield stages
    /// (placement, buses, and routing are hardware-independent).
    pub hardware: HardwareFamily,
}

impl CandidateSpec {
    /// The paper's `eff-full` configuration with every beneficial bus:
    /// weighted selection (uncapped), optimized frequencies, no
    /// auxiliary qubits, untransformed placement.
    pub fn eff_full(full_weighted_len: usize) -> Self {
        CandidateSpec {
            bus: BusSpec::Weighted { count: full_weighted_len },
            frequency: FrequencyStrategy::Optimized,
            aux_qubits: 0,
            placement: PlacementVariant::Identity,
            hardware: HardwareFamily::FixedFrequencyTransmon,
        }
    }

    /// The stages a move from `baseline` to this spec dirties — the
    /// spec-diff half of the stage graph's dirty tracking. Each changed
    /// knob dirties the first stage that consumes it plus everything
    /// downstream ([`StageKind::invalidates`]); every stage upstream of
    /// the first dirty stage is served from cache when the candidate is
    /// evaluated. Notably a frequency-only change dirties `{frequency,
    /// yield}` but **not** routing, which reads topology only.
    pub fn dirty_stages(&self, baseline: &CandidateSpec) -> StageSet {
        let mut dirty = StageSet::empty();
        if self.placement != baseline.placement || self.aux_qubits != baseline.aux_qubits {
            dirty = dirty.union(StageKind::Placement.invalidates());
        }
        if self.bus != baseline.bus {
            dirty = dirty.union(StageKind::Bus.invalidates());
        }
        if self.frequency != baseline.frequency {
            dirty = dirty.union(StageKind::Frequency.invalidates());
        }
        if self.hardware != baseline.hardware {
            // A family change re-bands frequency allocation and re-runs
            // yield under the family's constraints; topology (and hence
            // routing) is untouched.
            dirty = dirty.union(StageKind::Frequency.invalidates());
        }
        dirty
    }

    /// Serializes the spec for checkpoints.
    pub fn to_json(&self) -> Json {
        let bus = match &self.bus {
            BusSpec::Weighted { count } => {
                Json::obj([("kind", Json::str("weighted")), ("count", Json::int(*count as u64))])
            }
            BusSpec::Random { seed, count } => Json::obj([
                ("kind", Json::str("random")),
                ("seed", Json::str(seed.to_string())),
                ("count", Json::int(*count as u64)),
            ]),
            BusSpec::Explicit(squares) => Json::obj([
                ("kind", Json::str("explicit")),
                (
                    "squares",
                    Json::Arr(
                        squares
                            .iter()
                            .map(|s| {
                                Json::Arr(vec![
                                    Json::num(s.origin.row as f64),
                                    Json::num(s.origin.col as f64),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        };
        let mut fields = vec![
            ("bus", bus),
            (
                "frequency",
                Json::str(match self.frequency {
                    FrequencyStrategy::Optimized => "optimized",
                    FrequencyStrategy::FiveFrequency => "five",
                }),
            ),
            ("aux", Json::int(self.aux_qubits as u64)),
            (
                "placement",
                Json::str(match self.placement {
                    PlacementVariant::Identity => "identity",
                    PlacementVariant::Transposed => "transposed",
                }),
            ),
        ];
        // Written only for non-default families, so default-config
        // checkpoints stay byte-identical to the pre-hardware schema.
        if !self.hardware.is_default() {
            fields.push(("hardware", Json::str(self.hardware.as_str())));
        }
        Json::obj(fields)
    }

    /// Deserializes a spec from checkpoint JSON.
    pub fn from_json(json: &Json) -> Option<Self> {
        let bus_json = json.get("bus")?;
        let bus = match bus_json.get("kind")?.as_str()? {
            "weighted" => BusSpec::Weighted { count: bus_json.get("count")?.as_u64()? as usize },
            "random" => BusSpec::Random {
                seed: bus_json.get("seed")?.as_str()?.parse().ok()?,
                count: bus_json.get("count")?.as_u64()? as usize,
            },
            "explicit" => {
                let mut squares = Vec::new();
                for entry in bus_json.get("squares")?.as_arr()? {
                    let pair = entry.as_arr()?;
                    if pair.len() != 2 {
                        return None;
                    }
                    let row = pair[0].as_f64()? as i32;
                    let col = pair[1].as_f64()? as i32;
                    squares.push(Square::new(row, col));
                }
                BusSpec::Explicit(squares)
            }
            _ => return None,
        };
        let frequency = match json.get("frequency")?.as_str()? {
            "optimized" => FrequencyStrategy::Optimized,
            "five" => FrequencyStrategy::FiveFrequency,
            _ => return None,
        };
        let placement = match json.get("placement")?.as_str()? {
            "identity" => PlacementVariant::Identity,
            "transposed" => PlacementVariant::Transposed,
            _ => return None,
        };
        let hardware = match json.get("hardware") {
            None => HardwareFamily::FixedFrequencyTransmon,
            Some(tag) => HardwareFamily::parse(tag.as_str()?)?,
        };
        Some(CandidateSpec {
            bus,
            frequency,
            aux_qubits: json.get("aux")?.as_u64()? as usize,
            placement,
            hardware,
        })
    }
}

/// The objective vector of one evaluated candidate. Raw integer counts
/// only — exact to store, exact to compare, exact to checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Objectives {
    /// Collision-free Monte Carlo fabrications.
    pub yield_successes: u64,
    /// Total Monte Carlo fabrications.
    pub yield_trials: u64,
    /// Post-mapping gate count (SWAP = 3 CX) on the profiled benchmark.
    pub total_gates: u64,
    /// Post-mapping circuit depth.
    pub routed_depth: u64,
    /// Hardware cost: 4-qubit buses plus auxiliary qubits.
    pub hardware_cost: u64,
}

impl Objectives {
    /// The estimated yield rate in `[0, 1]`.
    pub fn yield_rate(&self) -> f64 {
        self.yield_successes as f64 / self.yield_trials as f64
    }

    /// The objectives as a larger-is-better vector for Pareto dominance
    /// ([`qpd_core::pareto_front_nd`]'s convention): yield up, gate
    /// count / depth / hardware cost negated.
    pub fn as_maximization(&self) -> Vec<f64> {
        vec![
            self.yield_rate(),
            -(self.total_gates as f64),
            -(self.routed_depth as f64),
            -(self.hardware_cost as f64),
        ]
    }

    /// Serializes for checkpoints.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("successes", Json::int(self.yield_successes)),
            ("trials", Json::int(self.yield_trials)),
            ("gates", Json::int(self.total_gates)),
            ("depth", Json::int(self.routed_depth)),
            ("cost", Json::int(self.hardware_cost)),
        ])
    }

    /// Deserializes from checkpoint JSON.
    pub fn from_json(json: &Json) -> Option<Self> {
        Some(Objectives {
            yield_successes: json.get("successes")?.as_u64()?,
            yield_trials: json.get("trials")?.as_u64()?,
            total_gates: json.get("gates")?.as_u64()?,
            routed_depth: json.get("depth")?.as_u64()?,
            hardware_cost: json.get("cost")?.as_u64()?,
        })
    }
}

/// One evaluated point: the spec, the chip it produced, and where it
/// landed on the objective space.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluated {
    /// The knobs that produced the point.
    pub spec: CandidateSpec,
    /// The materialized architecture's name.
    pub arch_name: String,
    /// Content key of the materialized architecture (see
    /// [`qpd_yield::YieldSimulator::content_key`]); equal keys mean
    /// equal points, so the archive dedupes on it.
    pub key: u64,
    /// The objective vector.
    pub objectives: Objectives,
}

impl Evaluated {
    /// Serializes for checkpoints.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("key", Json::str(self.key.to_string())),
            ("arch", Json::str(&self.arch_name)),
            ("spec", self.spec.to_json()),
            ("objectives", self.objectives.to_json()),
        ])
    }

    /// Deserializes from checkpoint JSON.
    pub fn from_json(json: &Json) -> Option<Self> {
        Some(Evaluated {
            spec: CandidateSpec::from_json(json.get("spec")?)?,
            arch_name: json.get("arch")?.as_str()?.to_string(),
            key: json.get("key")?.as_str()?.parse().ok()?,
            objectives: Objectives::from_json(json.get("objectives")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<CandidateSpec> {
        vec![
            CandidateSpec::eff_full(4),
            CandidateSpec {
                bus: BusSpec::Random { seed: u64::MAX, count: 2 },
                frequency: FrequencyStrategy::FiveFrequency,
                aux_qubits: 3,
                placement: PlacementVariant::Transposed,
                hardware: HardwareFamily::FixedFrequencyTransmon,
            },
            CandidateSpec {
                bus: BusSpec::Explicit(vec![Square::new(-1, 2), Square::new(3, 0)]),
                frequency: FrequencyStrategy::Optimized,
                aux_qubits: 0,
                placement: PlacementVariant::Identity,
                hardware: HardwareFamily::FixedFrequencyTransmon,
            },
            CandidateSpec {
                hardware: HardwareFamily::TunableCoupler,
                ..CandidateSpec::eff_full(1)
            },
            CandidateSpec { hardware: HardwareFamily::HeavyHex, ..CandidateSpec::eff_full(0) },
        ]
    }

    #[test]
    fn dirty_stages_maps_knob_diffs_onto_the_graph() {
        let base = CandidateSpec::eff_full(3);
        assert!(base.dirty_stages(&base).is_empty(), "identical specs dirty nothing");
        let freq = CandidateSpec { frequency: FrequencyStrategy::FiveFrequency, ..base.clone() };
        assert_eq!(
            freq.dirty_stages(&base),
            StageSet::of(&[StageKind::Frequency, StageKind::Yield]),
            "a frequency flip must leave routing clean"
        );
        let bus = CandidateSpec { bus: BusSpec::Weighted { count: 1 }, ..base.clone() };
        let bus_dirty = bus.dirty_stages(&base);
        assert!(bus_dirty.contains(StageKind::Routing));
        assert!(!bus_dirty.contains(StageKind::Placement));
        let aux = CandidateSpec { aux_qubits: 1, ..base.clone() };
        assert_eq!(aux.dirty_stages(&base), StageSet::all());
        let layout = CandidateSpec { placement: PlacementVariant::Transposed, ..base.clone() };
        assert_eq!(layout.dirty_stages(&base), StageSet::all());
        // Diffs union: frequency + bus dirties everything but placement.
        let both = CandidateSpec {
            frequency: FrequencyStrategy::FiveFrequency,
            bus: BusSpec::Weighted { count: 1 },
            ..base.clone()
        };
        let dirty = both.dirty_stages(&base);
        assert_eq!(dirty.len(), 4);
        assert!(!dirty.contains(StageKind::Placement));
        // The fifth knob: a hardware flip re-runs frequency allocation
        // and yield but leaves the topology (and routing) clean.
        let hw = CandidateSpec { hardware: HardwareFamily::TunableCoupler, ..base.clone() };
        assert_eq!(hw.dirty_stages(&base), StageSet::of(&[StageKind::Frequency, StageKind::Yield]),);
    }

    #[test]
    fn default_hardware_is_json_silent() {
        // Default-config checkpoints must not change by a byte: the
        // hardware key appears only for non-default families.
        let spec = CandidateSpec::eff_full(2);
        assert!(!spec.to_json().render().contains("hardware"));
        let tc = CandidateSpec { hardware: HardwareFamily::TunableCoupler, ..spec };
        let bytes = tc.to_json().render();
        assert!(bytes.contains("\"hardware\": \"tunable\""), "{bytes}");
    }

    #[test]
    fn spec_json_round_trips() {
        for spec in specs() {
            let json = spec.to_json();
            let back = CandidateSpec::from_json(&json).unwrap();
            assert_eq!(back, spec);
            // And through actual bytes.
            let reparsed = crate::json::Json::parse(&json.render()).unwrap();
            assert_eq!(CandidateSpec::from_json(&reparsed).unwrap(), spec);
        }
    }

    #[test]
    fn objectives_round_trip_and_orientation() {
        let o = Objectives {
            yield_successes: 123,
            yield_trials: 1_000,
            total_gates: 450,
            routed_depth: 90,
            hardware_cost: 5,
        };
        assert_eq!(Objectives::from_json(&o.to_json()).unwrap(), o);
        assert!((o.yield_rate() - 0.123).abs() < 1e-12);
        let v = o.as_maximization();
        assert_eq!(v.len(), 4);
        // Fewer gates must be better (larger) in the maximization view.
        let better = Objectives { total_gates: 400, ..o };
        assert!(better.as_maximization()[1] > v[1]);
    }

    #[test]
    fn evaluated_round_trips() {
        let e = Evaluated {
            spec: CandidateSpec::eff_full(2),
            arch_name: "eff-6q-b2".into(),
            key: u64::MAX - 7,
            objectives: Objectives {
                yield_successes: 1,
                yield_trials: 2,
                total_gates: 3,
                routed_depth: 4,
                hardware_cost: 5,
            },
        };
        let bytes = e.to_json().render();
        let back = Evaluated::from_json(&crate::json::Json::parse(&bytes).unwrap()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn malformed_spec_is_rejected_not_panicked() {
        let bad = crate::json::Json::parse("{\"bus\": {\"kind\": \"hexagonal\"}}").unwrap();
        assert!(CandidateSpec::from_json(&bad).is_none());
    }
}
