//! The exploration engine: seeded annealing walks over the knob space,
//! fanned out on the `qpd-par` pool, with archive-guided Pareto
//! acceptance, cross-walk recombination at round barriers, and a
//! deterministic merge into a Pareto archive.
//!
//! # Acceptance (v2)
//!
//! [`AcceptanceMode::Dominance`] (the default since schema v2) accepts a
//! candidate when it Pareto-dominates the walk's current position or
//! when it is not weakly ε-dominated by the round-start front snapshot
//! (i.e. it would extend the front's ε-grid coverage). Dominated moves
//! fall back to the v1 temperature rule on the walk's scalarized energy,
//! so walks still escape local optima. [`AcceptanceMode::Scalarized`]
//! retains the PR 3 rule exactly — resumed v1 checkpoints keep their
//! original semantics.
//!
//! # Batched evaluation
//!
//! Rounds are **step-synchronized**: at every step each walk proposes
//! one candidate from its own RNG stream (walk order), and the whole
//! round's worth of proposals is submitted as *one batch* —
//! materialization and routing fan out per candidate on the `qpd-par`
//! pool, and every yield-cache miss runs through
//! [`qpd_yield::YieldSimulator::evaluate_batch`], which groups
//! candidates sharing a fabrication-noise trial stream (same seed,
//! trial budget, effective sigma, and qubit count) and generates each
//! stream once for the group instead of once per candidate. Acceptance
//! then replays per walk in walk order. Because each walk's stream is
//! consumed by that walk alone, and evaluation is a pure function of
//! content, the batched round is bit-identical to running the walks'
//! steps sequentially — the batch changes *when* simulations run and
//! how wide the SIMD kernels operate, never what any walk observes.
//!
//! # Determinism
//!
//! The run is bit-identical for every `QPD_THREADS` value and for a
//! resumed run, by construction:
//!
//! - each walk's RNG stream is derived from `(seed, walk, round)` only —
//!   never from thread identity or timing — and a walk consumes its
//!   stream exclusively for move selection and acceptance;
//! - steps are synchronized barriers: a step's proposals are drawn
//!   before any of them evaluates, and acceptance decisions replay in
//!   walk order against values that are pure functions of content, so
//!   batching cannot reorder anything a walk can see;
//! - the dominance acceptor compares against a front snapshot taken at
//!   the round barrier, never against the live archive, so mid-round
//!   insertion order is invisible to every walk;
//! - recombination RNG streams derive from `(seed, round, walk_pair)`
//!   only, and offspring merge in pair order at the barrier;
//! - every candidate evaluation is a pure function of its content
//!   (profile, knobs, simulator settings), so the shared memo cache can
//!   only change *when* a value is computed, never *what* it is;
//! - per-round results are merged in walk order, and the archive dedupes
//!   by content key keeping the first occurrence.
//!
//! # Adaptive budgets
//!
//! With `screen_divisor > 1` each proposal is first simulated at
//! `yield_trials / screen_divisor` Monte Carlo trials. Clearly dominated
//! proposals (weakly ε-dominated by the front snapshot, and rejected by
//! the temperature fallback) stop there and are never archived; every
//! screening survivor is re-evaluated at full fidelity before it enters
//! the archive, so the archive and its front are always full-fidelity.
//! This is what makes `qft_16`-scale profiles tractable.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qpd_core::{
    crowding_distances, dominates_nd, epsilon_weakly_dominates_nd, DesignError, DesignFlow,
    FrequencyStrategy, LayoutJob, Stage, StageCacheStats,
};
use qpd_mapping::MappingError;
use qpd_topology::Architecture;
use qpd_yield::{BatchRequest, HardwareFamily, YieldError, YieldSimulator};

use crate::cache::{circuit_key, RouteStage, StageCaches, YieldStage};
use crate::space::ExploreSpace;
use crate::spec::{CandidateSpec, Evaluated, Objectives};

/// How a walk decides whether to move onto a proposed candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptanceMode {
    /// The PR 3 rule: scalarized energy under the walk's weights with a
    /// temperature-controlled uphill probability. Kept for resumed v1
    /// checkpoints and as the recorded baseline the quality regression
    /// tests compare against.
    Scalarized,
    /// Archive-guided Pareto acceptance: accept on dominance over the
    /// current position or ε-front extension, with the scalarized
    /// temperature rule as the fallback for dominated moves.
    Dominance,
}

impl AcceptanceMode {
    /// Checkpoint tag.
    pub fn as_str(self) -> &'static str {
        match self {
            AcceptanceMode::Scalarized => "scalarized",
            AcceptanceMode::Dominance => "dominance",
        }
    }

    /// Parses a checkpoint tag.
    pub fn from_str_tag(tag: &str) -> Option<Self> {
        match tag {
            "scalarized" => Some(AcceptanceMode::Scalarized),
            "dominance" => Some(AcceptanceMode::Dominance),
            _ => None,
        }
    }
}

/// Which hardware families a run searches over — the fifth knob's
/// scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HardwareSweep {
    /// Every candidate designs for the one given family. Pinned to the
    /// default family this is bit-identical to the pre-hardware-layer
    /// engine: walks draw the exact same RNG streams (no extra draws)
    /// and every content key is unchanged.
    Pinned(HardwareFamily),
    /// Mixed mode: walk starting points spread across all families and
    /// a dedicated move kind can flip a candidate's family, so the
    /// archive grows a cross-family Pareto front.
    All,
}

impl Default for HardwareSweep {
    fn default() -> Self {
        HardwareSweep::Pinned(HardwareFamily::FixedFrequencyTransmon)
    }
}

impl HardwareSweep {
    /// Checkpoint tag: the pinned family's tag, or `"all"`.
    pub fn as_str(self) -> &'static str {
        match self {
            HardwareSweep::Pinned(family) => family.as_str(),
            HardwareSweep::All => "all",
        }
    }

    /// Parses a checkpoint / CLI tag (`fixed`, `tunable`, `heavyhex`,
    /// or `all`).
    pub fn parse(tag: &str) -> Option<Self> {
        if tag == "all" {
            return Some(HardwareSweep::All);
        }
        HardwareFamily::parse(tag).map(HardwareSweep::Pinned)
    }

    /// True for the default sweep (pinned to the default family) — the
    /// checkpoint writer omits the field in that case so default-config
    /// checkpoints stay byte-identical to the pre-hardware schema.
    pub fn is_default(self) -> bool {
        self == HardwareSweep::default()
    }
}

/// Budgets and knob bounds of one exploration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExploreConfig {
    /// Independent annealing walks (fanned out on the worker pool).
    pub walks: usize,
    /// Rounds of the search; a checkpoint can be cut after any round.
    pub rounds: usize,
    /// Mutation/evaluation steps each walk takes per round.
    pub steps_per_round: usize,
    /// Base seed; every stream in the run derives from it.
    pub seed: u64,
    /// Largest auxiliary-qubit count in scope.
    pub max_aux: usize,
    /// Monte Carlo trials inside frequency allocation.
    pub alloc_trials: usize,
    /// Monte Carlo trials per yield estimate.
    pub yield_trials: u64,
    /// Fabrication precision in GHz.
    pub sigma_ghz: f64,
    /// Initial annealing temperature (in units of scalarized energy).
    pub initial_temperature: f64,
    /// Multiplicative cooling factor per global step, in `(0, 1]`.
    pub cooling: f64,
    /// The acceptance rule walks apply.
    pub acceptance: AcceptanceMode,
    /// Whether walks exchange knob blocks at round barriers.
    pub recombine: bool,
    /// Finer-grained recombination exchange blocks: when set, each
    /// exchanging pair makes one extra draw deciding whether the
    /// frequency-strategy knob travels with the **bus** block instead
    /// of the placement/aux block, so frequency × layout combinations
    /// recombine independently. Off by default — the extra draw shifts
    /// every later draw in the pair's `(seed, round, pair)` stream, so
    /// the flag is opt-in to keep default-config trajectories (and
    /// their checkpoints) byte-identical to the coarse-block engine.
    pub fine_recombine: bool,
    /// Adaptive screening: proposals are first simulated at
    /// `yield_trials / screen_divisor` trials; `1` disables screening.
    pub screen_divisor: u64,
    /// ε-grid width of the dominance acceptor, applied to the
    /// normalized objective vector (every axis lives in `(0, 1]`).
    pub epsilon: f64,
    /// Hardware families in scope: pinned to one family (the default
    /// family reproduces the pre-hardware engine bit-for-bit) or `All`
    /// for a mixed-family search with the family as a mutable knob.
    pub hardware: HardwareSweep,
    /// Bound on the Pareto archive (`None` — or `Some(0)`, which the
    /// checkpoint writer normalizes to the same thing — keeps every
    /// full-fidelity point, the pre-pruning behavior). When set, the
    /// archive is pruned at
    /// every round barrier by ε-grid occupancy and crowding distance:
    /// front points are kept first, then points opening a new ε-cell,
    /// then the rest — evicting the most crowded (then newest) points
    /// first. Pruning happens at a deterministic point of the round, so
    /// runs stay bit-identical across `QPD_THREADS` and kill/resume.
    pub archive_cap: Option<usize>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            walks: 6,
            rounds: 4,
            steps_per_round: 6,
            seed: 0,
            max_aux: 2,
            alloc_trials: 400,
            yield_trials: 2_000,
            sigma_ghz: 0.030,
            initial_temperature: 0.08,
            cooling: 0.92,
            acceptance: AcceptanceMode::Dominance,
            recombine: true,
            fine_recombine: false,
            screen_divisor: 1,
            epsilon: 0.02,
            hardware: HardwareSweep::default(),
            archive_cap: None,
        }
    }
}

impl ExploreConfig {
    /// A tiny-budget configuration for tests and CI smoke runs.
    pub fn quick() -> Self {
        ExploreConfig {
            walks: 3,
            rounds: 2,
            steps_per_round: 3,
            max_aux: 1,
            alloc_trials: 80,
            yield_trials: 600,
            ..ExploreConfig::default()
        }
    }

    /// The adaptive-budget profile for large programs (`qft_16`-scale):
    /// quick budgets plus 4x screening, so clearly dominated proposals
    /// cost a quarter of a yield simulation.
    pub fn adaptive_quick() -> Self {
        ExploreConfig { screen_divisor: 4, ..ExploreConfig::quick() }
    }

    /// The PR 3 engine's configuration shape: scalarized acceptance, no
    /// recombination, no screening. Resumed v1 checkpoints migrate onto
    /// this so their semantics never change mid-run.
    pub fn v1_compat(self) -> Self {
        ExploreConfig {
            acceptance: AcceptanceMode::Scalarized,
            recombine: false,
            fine_recombine: false,
            screen_divisor: 1,
            archive_cap: None,
            ..self
        }
    }

    /// Whether this configuration can be **sharded**: split across
    /// independent processes that each run a subset of the walks and
    /// later merge bit-for-bit into the single-process result.
    ///
    /// Sharding is sound exactly when no walk ever observes another
    /// walk's work mid-run. Three knobs break that:
    ///
    /// - the **dominance acceptor** compares every proposal against a
    ///   cross-walk front snapshot taken at the round barrier;
    /// - **recombination** exchanges knob blocks between walk pairs;
    /// - **`archive_cap`** prunes against the global archive, so which
    ///   points survive a round depends on every walk's output.
    ///
    /// Scalarized acceptance with those three off is the PR 3
    /// independent-walk engine: each walk touches only its own
    /// `(seed, walk, round)` stream, its own weights, and its own
    /// current position, so any partition of the walk set runs
    /// unchanged. Screening (`screen_divisor`) is inert under
    /// scalarized acceptance and does not block sharding.
    ///
    /// # Errors
    ///
    /// Returns every blocking knob, comma-joined, for CLI messages.
    pub fn shardable(&self) -> Result<(), String> {
        let mut blockers: Vec<&str> = Vec::new();
        if self.acceptance != AcceptanceMode::Scalarized {
            blockers.push("acceptance must be `scalarized` (the dominance acceptor reads a cross-walk front snapshot)");
        }
        if self.recombine {
            blockers.push("`recombine` must be off (recombination exchanges knobs across walks)");
        }
        if self.archive_cap.unwrap_or(0) > 0 {
            blockers.push("`archive_cap` must be unset (pruning depends on the global archive)");
        }
        if blockers.is_empty() {
            Ok(())
        } else {
            Err(blockers.join("; "))
        }
    }
}

/// Which slice of a run one process owns: the walks `w ≡ index (mod
/// of)` of the global walk set, keeping their **global** walk indices —
/// so every `(seed, walk, round)` RNG stream, every weight vector, and
/// every starting spec is exactly what the single-process run draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's index, `< of`.
    pub index: usize,
    /// The total shard count of the run.
    pub of: usize,
}

impl ShardSpec {
    /// Validates `index < of` (and `of >= 1`).
    ///
    /// # Errors
    ///
    /// Returns a CLI-ready message for an out-of-range pair.
    pub fn new(index: usize, of: usize) -> Result<Self, String> {
        if of == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index >= of {
            return Err(format!("shard index {index} out of range for {of} shard(s)"));
        }
        Ok(ShardSpec { index, of })
    }

    /// Parses the CLI form `i/N` (e.g. `0/4`).
    ///
    /// # Errors
    ///
    /// Returns a CLI-ready message for malformed or out-of-range input.
    pub fn parse(tag: &str) -> Result<Self, String> {
        let (index, of) = tag
            .split_once('/')
            .ok_or_else(|| format!("shard spec `{tag}` is not of the form i/N"))?;
        let index = index
            .trim()
            .parse::<usize>()
            .map_err(|_| format!("shard index `{index}` is not a number"))?;
        let of = of
            .trim()
            .parse::<usize>()
            .map_err(|_| format!("shard count `{of}` is not a number"))?;
        ShardSpec::new(index, of)
    }

    /// The global walk indices this shard owns, ascending: the walks
    /// `w ≡ index (mod of)` among `0..walks`. A shard of a run with
    /// fewer walks than shards can legitimately own none.
    pub fn walk_ids(self, walks: usize) -> Vec<usize> {
        (0..walks).filter(|w| w % self.of == self.index).collect()
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.of)
    }
}

/// Where one archive entry came from: the insertion block (0 for the
/// initial evaluations, round `r`'s merge is block `r + 1`), the
/// **global** walk index that produced it, and the step within the
/// round. The derived lexicographic order `(block, walk, step)` is
/// exactly the single-process archive's insertion order — the initial
/// state pushes walk-major, and every round's merge loop iterates walks
/// outer, steps inner — which is what lets a merge re-create the
/// single-run archive bit-for-bit from any partition of its entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Provenance {
    /// Insertion block: 0 = initial evaluations, block `r + 1` = the
    /// merge barrier of round `r`.
    pub block: u64,
    /// Global walk index that first evaluated the entry.
    pub walk: u64,
    /// Step within the round (0 in block 0).
    pub step: u64,
}

/// One shard's resumable state: the walks it owns (ascending global
/// index), plus per-entry [`Provenance`] parallel to
/// [`ExploreState::archive`] so a merge can interleave shard archives
/// in single-run insertion order.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardState {
    /// Which slice of the run this is.
    pub spec: ShardSpec,
    /// The shard's walks and archive. `walks` holds only this shard's
    /// walks; `archive` holds only points this shard evaluated.
    pub state: ExploreState,
    /// `prov[i]` is where `state.archive[i]` came from.
    pub prov: Vec<Provenance>,
}

/// Error from the exploration engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExploreError {
    /// A candidate failed to materialize.
    Design(DesignError),
    /// Routing the benchmark onto a candidate failed.
    Mapping(MappingError),
    /// Yield simulation failed.
    Yield(YieldError),
    /// A checkpoint could not be parsed.
    Checkpoint(String),
    /// A shard run or checkpoint merge was asked for something its
    /// independence guarantees cannot deliver (non-shardable config,
    /// out-of-range shard spec, inconsistent merge inputs).
    Shard(String),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Design(e) => write!(f, "candidate design failed: {e}"),
            ExploreError::Mapping(e) => write!(f, "candidate routing failed: {e}"),
            ExploreError::Yield(e) => write!(f, "candidate yield simulation failed: {e}"),
            ExploreError::Checkpoint(m) => write!(f, "checkpoint invalid: {m}"),
            ExploreError::Shard(m) => write!(f, "shard invalid: {m}"),
        }
    }
}

impl Error for ExploreError {}

impl From<DesignError> for ExploreError {
    fn from(e: DesignError) -> Self {
        ExploreError::Design(e)
    }
}

impl From<MappingError> for ExploreError {
    fn from(e: MappingError) -> Self {
        ExploreError::Mapping(e)
    }
}

impl From<YieldError> for ExploreError {
    fn from(e: YieldError) -> Self {
        ExploreError::Yield(e)
    }
}

/// One walk's live position.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkState {
    /// The walk's current spec.
    pub spec: CandidateSpec,
    /// The current spec's objectives (for the acceptance rule).
    pub objectives: Objectives,
}

/// The resumable state of a run: how far it got, where each walk
/// stands, and everything evaluated so far.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreState {
    /// Completed rounds.
    pub rounds_done: usize,
    /// Per-walk positions, walk order.
    pub walks: Vec<WalkState>,
    /// All distinct full-fidelity evaluated points, in first-evaluation
    /// order. (Screened low-trial evaluations never enter the archive.)
    pub archive: Vec<Evaluated>,
}

impl ExploreState {
    /// Indices into [`Self::archive`] of the non-dominated points.
    pub fn front_indices(&self) -> Vec<usize> {
        pareto_indices(&self.archive)
    }

    /// The non-dominated points themselves, archive order.
    pub fn front(&self) -> Vec<&Evaluated> {
        self.front_indices().into_iter().map(|i| &self.archive[i]).collect()
    }
}

/// Indices of the Pareto-optimal entries of an archive (yield up, gate
/// count / depth / hardware cost down).
pub fn pareto_indices(archive: &[Evaluated]) -> Vec<usize> {
    let points: Vec<Vec<f64>> = archive.iter().map(|e| e.objectives.as_maximization()).collect();
    qpd_core::pareto_front_nd(&points)
}

/// Entries per stage cache when `QPD_MEMO_CAP` is unset: the explorer's
/// frequency/assembly cache holds whole [`Architecture`]s, so an
/// unbounded table would grow with every distinct candidate of a very
/// long adaptive run — exactly what `archive_cap` bounds on the archive
/// side. 4096 keeps CI- and paper-scale runs fully warm.
pub const DEFAULT_MEMO_CAP: usize = 4096;

/// The explorer's per-stage cache bound: `QPD_MEMO_CAP` when set (an
/// explicit `0` means unbounded, matching [`qpd_core::StageCache::new`]),
/// [`DEFAULT_MEMO_CAP`] otherwise — including when the variable is set
/// but unparsable, so a typo can never silently disable the memory
/// bound. Caching never changes outputs; the bound trades recomputation
/// for memory only.
fn explorer_memo_cap() -> Option<usize> {
    match std::env::var(qpd_core::MEMO_CAP_ENV) {
        Err(_) => Some(DEFAULT_MEMO_CAP),
        Ok(v) => match v.parse::<usize>() {
            Ok(0) => None,
            Ok(cap) => Some(cap),
            Err(_) => Some(DEFAULT_MEMO_CAP),
        },
    }
}

/// The engine: a space, a budget, and the shared per-stage caches.
///
/// Evaluation runs the explicit stage cascade: placement and bus
/// resolution from the space's precomputed layouts, frequency
/// allocation + assembly through the flow's shared
/// [`qpd_core::StagePlan`], routing and yield through [`StageCaches`].
/// Every stage is content-keyed, so a knob change recomputes only the
/// stages it dirties ([`CandidateSpec::dirty_stages`]) — a freq-only
/// move skips placement, bus insertion, and routing entirely.
#[derive(Debug)]
pub struct Explorer {
    space: ExploreSpace,
    config: ExploreConfig,
    /// The base design flow (allocation knobs fixed by the config); its
    /// stage plan is shared by every per-candidate clone, so the
    /// frequency/assembly cache persists across evaluations.
    flow: DesignFlow,
    /// The downstream routing/yield tables. `Arc`-shared so a resident
    /// server can hand every request's engine the same warm caches;
    /// sharing is observation-free — stages are pure functions of their
    /// content keys, so shared tables change *when* work happens, never
    /// what any engine computes.
    caches: Arc<StageCaches>,
    /// Content fingerprint of the routed program, folded into routing
    /// keys.
    circuit_key: u64,
    /// Gate count of the zero-bus identity design — the normalization
    /// scale for the performance and depth axes (and the scalarization
    /// fallback).
    baseline_gates: u64,
    baseline_depth: u64,
}

impl Explorer {
    /// Builds an engine, routing the zero-bus baseline once to anchor
    /// the objective normalization.
    ///
    /// # Errors
    ///
    /// Fails only if the baseline design cannot be built or routed.
    pub fn new(space: ExploreSpace, config: ExploreConfig) -> Result<Self, ExploreError> {
        let cap = explorer_memo_cap();
        let flow = DesignFlow::new()
            .with_allocation_trials(config.alloc_trials)
            .with_allocation_seed(config.seed)
            .with_sigma_ghz(config.sigma_ghz)
            .with_memo_cap(cap);
        Self::with_flow(space, config, flow, Arc::new(StageCaches::with_cap(cap)))
    }

    /// Like [`Explorer::new`], but evaluating through a caller-supplied
    /// stage plan and downstream caches — the resident-server path,
    /// where every request's engine shares one warm set of tables.
    ///
    /// Correctness does not depend on what the shared tables already
    /// hold: every stage is a pure function of its content key (the
    /// allocation trials, seed, sigma, and hardware family are all part
    /// of the keys), so a warm entry is exactly the value this engine
    /// would have computed. Callers should still share only across
    /// engines with equal allocation settings if they want the *plan*
    /// caches to actually hit.
    ///
    /// # Errors
    ///
    /// Fails only if the baseline design cannot be built or routed.
    pub fn with_shared(
        space: ExploreSpace,
        config: ExploreConfig,
        plan: Arc<qpd_core::StagePlan>,
        caches: Arc<StageCaches>,
    ) -> Result<Self, ExploreError> {
        let flow = DesignFlow::new()
            .with_allocation_trials(config.alloc_trials)
            .with_allocation_seed(config.seed)
            .with_sigma_ghz(config.sigma_ghz)
            .with_plan(plan);
        Self::with_flow(space, config, flow, caches)
    }

    fn with_flow(
        space: ExploreSpace,
        config: ExploreConfig,
        flow: DesignFlow,
        caches: Arc<StageCaches>,
    ) -> Result<Self, ExploreError> {
        let program_key = circuit_key(space.circuit());
        let mut explorer = Explorer {
            space,
            config,
            flow,
            caches,
            circuit_key: program_key,
            baseline_gates: 1,
            baseline_depth: 1,
        };
        // The normalization anchor is always the default family's
        // zero-bus design: routing never reads frequencies, so the
        // scale is family-independent, and keeping it fixed means a
        // pinned-family run and a mixed run normalize identically.
        let baseline = CandidateSpec {
            bus: crate::spec::BusSpec::Weighted { count: 0 },
            frequency: FrequencyStrategy::FiveFrequency,
            aux_qubits: 0,
            placement: crate::spec::PlacementVariant::Identity,
            hardware: HardwareFamily::FixedFrequencyTransmon,
        };
        let arch = explorer.materialize(&baseline)?;
        let (gates, depth) = explorer.route(&arch)?;
        explorer.baseline_gates = gates;
        explorer.baseline_depth = depth;
        Ok(explorer)
    }

    /// The configuration in use.
    pub fn config(&self) -> &ExploreConfig {
        &self.config
    }

    /// The space being searched.
    pub fn space(&self) -> &ExploreSpace {
        &self.space
    }

    /// The shared downstream (routing, yield) stage caches, with their
    /// hit/miss counters for reporting.
    pub fn caches(&self) -> &StageCaches {
        &self.caches
    }

    /// Hit/miss counters of every cached stage of the cascade, pipeline
    /// order: placement, bus, and frequency from the flow's shared
    /// [`qpd_core::StagePlan`], then routing and yield.
    pub fn stage_stats(&self) -> Vec<StageCacheStats> {
        let mut stats = self.flow.plan().stats();
        stats.extend(self.caches.stats());
        stats
    }

    /// Drops every cached stage value — the upstream plan caches and the
    /// downstream routing/yield tables (counters keep accumulating).
    /// `bench_snapshot`'s cold-cache kernel uses this to re-measure
    /// uncached evaluation without rebuilding the engine.
    pub fn clear_stage_caches(&self) {
        self.flow.plan().clear();
        self.caches.clear();
    }

    fn flow(&self, spec: &CandidateSpec) -> DesignFlow {
        // The clone shares the base flow's stage plan, so every
        // frequency/hardware variant draws from one assembly cache (the
        // family is part of the assembly content key, so families never
        // collide in it).
        self.flow.clone().with_frequency_strategy(spec.frequency).with_hardware(spec.hardware)
    }

    fn yield_stage(&self, spec: &CandidateSpec, trials: u64) -> YieldStage {
        YieldStage {
            trials,
            seed: self.config.seed,
            sigma_ghz: self.config.sigma_ghz,
            hardware: spec.hardware,
        }
    }

    fn materialize(&self, spec: &CandidateSpec) -> Result<Architecture, ExploreError> {
        let (coords, squares) = self.space.resolve(spec);
        Ok(self.flow(spec).design_with_layout(&coords, &squares)?)
    }

    fn route(&self, arch: &Architecture) -> Result<(u64, u64), ExploreError> {
        let stage = RouteStage { circuit_key: self.circuit_key };
        let (_, v) = self.caches.routes.run_stage(&stage, &(arch, self.space.circuit()))?;
        Ok(v)
    }

    /// The number of screening trials, `>= 1`.
    fn screen_trials(&self) -> u64 {
        (self.config.yield_trials / self.config.screen_divisor.max(1)).max(1)
    }

    /// Evaluates one candidate at full fidelity, memoized end to end:
    /// routing by topology, yield by full content. Repeated candidates
    /// cost two hash lookups.
    ///
    /// # Errors
    ///
    /// Propagates design, routing, and yield failures.
    pub fn evaluate(&self, spec: &CandidateSpec) -> Result<Evaluated, ExploreError> {
        self.evaluate_at(spec, self.config.yield_trials)
    }

    /// Evaluates many candidates at full fidelity as **one batch**: the
    /// public face of the batched round path (`evaluate_batch_at` at
    /// the configured yield-trial budget). Results are bit-identical
    /// to per-spec [`Self::evaluate`] calls, in input order; the batch
    /// only shares work — assemble-stage misses share one allocation
    /// scratch, and yield-cache misses group into SoA simulation runs.
    ///
    /// # Errors
    ///
    /// Propagates the first (in input order) design, routing, or yield
    /// failure.
    pub fn evaluate_all(&self, specs: &[CandidateSpec]) -> Result<Vec<Evaluated>, ExploreError> {
        self.evaluate_batch_at(specs, self.config.yield_trials)
    }

    /// Evaluates one candidate at an explicit yield-trial budget (the
    /// screening path); the simulator settings are part of the content
    /// key, so screened and full-fidelity results never collide in the
    /// memo table.
    fn evaluate_at(&self, spec: &CandidateSpec, trials: u64) -> Result<Evaluated, ExploreError> {
        let arch = self.materialize(spec)?;
        let (total_gates, routed_depth) = self.route(&arch)?;
        let (key, (yield_successes, yield_trials)) =
            self.caches.yields.run_stage(&self.yield_stage(spec, trials), &&arch)?;
        // The layout resolver clamps out-of-range auxiliary counts to
        // the space's bound; cost the clamped value actually built, so
        // equal content keys always carry equal objective vectors.
        let aux_built = spec.aux_qubits.min(self.space.max_aux()) as u64;
        let hardware_cost = arch.four_qubit_buses().len() as u64 + aux_built;
        Ok(Evaluated {
            spec: spec.clone(),
            arch_name: arch.name().to_string(),
            key,
            objectives: Objectives {
                yield_successes,
                yield_trials,
                total_gates,
                routed_depth,
                hardware_cost,
            },
        })
    }

    /// Evaluates a round's worth of candidates as **one batch** — the
    /// engine half of the batched-yield path.
    ///
    /// Layout resolution fans out per candidate on the worker pool,
    /// then the whole round assembles as one
    /// [`DesignFlow::design_with_layout_batch`] submission: the
    /// assemble-stage misses of the round share one compiled-region
    /// cache and one set of fabrication-noise planes instead of
    /// rebuilding them per candidate, while cache accounting stays
    /// per-job (every candidate still contributes exactly one assemble
    /// hit or miss, and each plan is bit-identical to its singleton
    /// [`Self::evaluate`] result). Routing then fans out per
    /// architecture. The yield stage runs in three passes that
    /// together preserve the singleton cache accounting exactly — every
    /// candidate contributes precisely one hit or one miss:
    ///
    /// 1. probe the yield cache per candidate, in order (hits counted);
    /// 2. hand the *distinct* missed keys to
    ///    [`YieldSimulator::evaluate_batch`], which groups jobs by
    ///    shared trial stream and runs the collision kernels SoA across
    ///    the whole batch;
    /// 3. insert once per missed occurrence (misses counted), so
    ///    `hits + misses` equals the candidate count just as it would
    ///    for N singleton calls.
    ///
    /// Results return in input order; the first failure (in input
    /// order) propagates.
    ///
    /// # Errors
    ///
    /// Propagates design, routing, and yield failures.
    fn evaluate_batch_at(
        &self,
        specs: &[CandidateSpec],
        trials: u64,
    ) -> Result<Vec<Evaluated>, ExploreError> {
        if specs.is_empty() {
            return Ok(Vec::new());
        }
        let layouts = qpd_par::par_map(specs, |spec| self.space.resolve(spec));
        let jobs: Vec<LayoutJob<'_>> = specs
            .iter()
            .zip(&layouts)
            .map(|(spec, (coords, squares))| LayoutJob {
                coords,
                squares,
                frequency: spec.frequency,
                hardware: spec.hardware,
            })
            .collect();
        let assembled = self.flow.design_with_layout_batch(&jobs)?;
        let routed = qpd_par::par_map(&assembled, |arch| self.route(arch));
        let mut archs = Vec::with_capacity(specs.len());
        for (arch, r) in assembled.into_iter().zip(routed) {
            let (gates, depth) = r?;
            archs.push((arch, gates, depth));
        }
        let stages: Vec<YieldStage> =
            specs.iter().map(|spec| self.yield_stage(spec, trials)).collect();
        let keys: Vec<u64> =
            stages.iter().zip(&archs).map(|(s, (arch, _, _))| s.content_key(&arch)).collect();
        // Pass 1: probe in order. A found key counts its hit here; a
        // missed key counts its miss at insertion below.
        let cached: Vec<Option<(u64, u64)>> =
            keys.iter().map(|&k| self.caches.yields.get(k)).collect();
        // Pass 2: one grouped simulation over the distinct misses.
        let mut first_miss: Vec<usize> = Vec::new();
        let mut miss_keys: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for i in 0..specs.len() {
            if cached[i].is_none() && miss_keys.insert(keys[i]) {
                first_miss.push(i);
            }
        }
        let requests: Vec<BatchRequest<'_>> = first_miss
            .iter()
            .map(|&i| BatchRequest { simulator: stages[i].simulator(), arch: &archs[i].0 })
            .collect();
        let mut computed: HashMap<u64, (u64, u64)> = HashMap::with_capacity(first_miss.len());
        for (&i, outcome) in first_miss.iter().zip(YieldSimulator::evaluate_batch(&requests)) {
            let estimate = outcome?;
            computed.insert(keys[i], (estimate.successes(), estimate.trials()));
        }
        // Pass 3: insert per missed occurrence and assemble results in
        // input order.
        let mut out = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let (yield_successes, yield_trials) = match cached[i] {
                Some(v) => v,
                None => {
                    let v = computed[&keys[i]];
                    self.caches.yields.insert(keys[i], v);
                    v
                }
            };
            let (arch, total_gates, routed_depth) = &archs[i];
            let aux_built = spec.aux_qubits.min(self.space.max_aux()) as u64;
            let hardware_cost = arch.four_qubit_buses().len() as u64 + aux_built;
            out.push(Evaluated {
                spec: spec.clone(),
                arch_name: arch.name().to_string(),
                key: keys[i],
                objectives: Objectives {
                    yield_successes,
                    yield_trials,
                    total_gates: *total_gates,
                    routed_depth: *routed_depth,
                    hardware_cost,
                },
            });
        }
        Ok(out)
    }

    /// The objectives as a normalized larger-is-better vector with every
    /// axis in `(0, 1]`: yield rate, baseline-relative reciprocal gate
    /// count and depth, and reciprocal hardware cost. The dominance
    /// acceptor's ε-grid lives on this vector so one ε is meaningful on
    /// every axis.
    fn normalized(&self, o: &Objectives) -> [f64; 4] {
        [
            o.yield_rate(),
            self.baseline_gates as f64 / o.total_gates as f64,
            self.baseline_depth as f64 / o.routed_depth as f64,
            1.0 / (1.0 + o.hardware_cost as f64),
        ]
    }

    /// The walk's scalarization weights: a fixed pure function of the
    /// walk index, spreading the walks across the objective trade-offs.
    fn walk_weights(&self, walk: usize) -> [f64; 4] {
        let mut w = [0.0; 4];
        for (i, slot) in w.iter_mut().enumerate() {
            let x = splitmix(self.config.seed ^ ((walk as u64) << 8) ^ i as u64);
            *slot = 0.25 + 0.75 * (x >> 11) as f64 / (1u64 << 53) as f64;
        }
        w
    }

    fn energy(&self, o: &Objectives, weights: &[f64; 4]) -> f64 {
        let n = self.normalized(o);
        -(weights[0] * n[0] + weights[1] * n[1] + weights[2] * n[2] + weights[3] * n[3])
    }

    fn temperature(&self, round: usize, step: usize) -> f64 {
        let global_step = (round * self.config.steps_per_round + step) as i32;
        self.config.initial_temperature * self.config.cooling.powi(global_step)
    }

    /// The family a walk starts on: the pinned family, or — in mixed
    /// mode — the families round-robined across walks so every family
    /// is represented from the first evaluation (walk 0 stays on the
    /// default family, keeping `eff-full` the paper's design).
    fn initial_family(&self, walk: usize) -> HardwareFamily {
        match self.config.hardware {
            HardwareSweep::Pinned(family) => family,
            HardwareSweep::All => HardwareFamily::ALL[walk % HardwareFamily::ALL.len()],
        }
    }

    /// One proposal move. Pinned to a family this is exactly the space
    /// mutation (identical RNG stream to the pre-hardware engine); in
    /// mixed mode one extra move kind — drawn *before* the space
    /// mutation so the gate is a pure function of the walk stream —
    /// cycles the candidate's hardware family instead.
    fn propose(&self, spec: &CandidateSpec, rng: &mut ChaCha8Rng) -> CandidateSpec {
        if let HardwareSweep::All = self.config.hardware {
            // Six space move kinds plus one family move: weight the
            // family flip as a seventh equally likely kind.
            if rng.gen_range(0..7u32) == 6 {
                let all = HardwareFamily::ALL;
                let at = all.iter().position(|&f| f == spec.hardware).unwrap_or(0);
                return CandidateSpec { hardware: all[(at + 1) % all.len()], ..spec.clone() };
            }
        }
        self.space.mutate(spec, rng)
    }

    /// The walk's starting point. Walk 0 always starts at the paper's
    /// `eff-full` configuration, so that design is an evaluated point of
    /// every run; the rest spread over bus budgets, strategies, layout
    /// variants, and (in mixed mode) hardware families.
    fn initial_spec(&self, walk: usize) -> CandidateSpec {
        use crate::spec::{BusSpec, PlacementVariant};
        let full = self.space.full_weighted_len();
        if walk == 0 {
            return CandidateSpec {
                hardware: self.initial_family(walk),
                ..CandidateSpec::eff_full(full)
            };
        }
        let bus = if walk % 3 == 2 {
            BusSpec::Random {
                seed: self.config.seed ^ walk as u64,
                count: 1 + (walk % full.max(1)),
            }
        } else {
            BusSpec::Weighted { count: walk * full / self.config.walks.max(1) }
        };
        CandidateSpec {
            bus,
            frequency: if walk.is_multiple_of(2) {
                FrequencyStrategy::Optimized
            } else {
                FrequencyStrategy::FiveFrequency
            },
            aux_qubits: walk % (self.config.max_aux + 1),
            placement: if walk % 4 == 3 {
                PlacementVariant::Transposed
            } else {
                PlacementVariant::Identity
            },
            hardware: self.initial_family(walk),
        }
    }

    fn walk_rng(&self, walk: usize, round: usize) -> ChaCha8Rng {
        let a = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(walk as u64 + 1);
        let b = 0xd134_2543_de82_ef95u64.wrapping_mul(round as u64 + 1);
        ChaCha8Rng::seed_from_u64(self.config.seed ^ a ^ b)
    }

    /// Recombination stream: a pure function of `(seed, round, pair)` —
    /// never of thread identity, walk content, or timing — so any
    /// kill/resume and any `QPD_THREADS` reproduce the same exchanges.
    fn recombine_rng(&self, round: usize, pair: usize) -> ChaCha8Rng {
        let a = 0xa076_1d64_78bd_642fu64.wrapping_mul(round as u64 + 1);
        let b = 0xe703_7ed1_a0b4_28dbu64.wrapping_mul(pair as u64 + 1);
        ChaCha8Rng::seed_from_u64(splitmix(self.config.seed ^ a ^ b))
    }

    /// Evaluates every walk's starting spec; round count 0.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation failure, in walk order.
    pub fn initial_state(&self) -> Result<ExploreState, ExploreError> {
        let specs: Vec<CandidateSpec> =
            (0..self.config.walks).map(|w| self.initial_spec(w)).collect();
        let evals = self.evaluate_batch_at(&specs, self.config.yield_trials)?;
        let mut archive = Vec::new();
        let mut seen = HashMap::new();
        let mut walks = Vec::with_capacity(specs.len());
        for (spec, eval) in specs.into_iter().zip(evals) {
            walks.push(WalkState { spec, objectives: eval.objectives });
            push_dedup(&mut archive, &mut seen, eval);
        }
        Ok(ExploreState { rounds_done: 0, walks, archive })
    }

    /// The normalized vectors of the archive's current front — the
    /// snapshot the dominance acceptor compares against for one round.
    fn front_snapshot(&self, state: &ExploreState) -> Vec<[f64; 4]> {
        state
            .front_indices()
            .into_iter()
            .map(|i| self.normalized(&state.archive[i].objectives))
            .collect()
    }

    /// Runs one round: `steps_per_round` synchronized steps in which
    /// every walk proposes from its own `(seed, walk, round)` stream,
    /// the step's proposals evaluate as one batch, and acceptance
    /// replays per walk in walk order. Results merge in walk order,
    /// then (when enabled) adjacent walk pairs recombine at the
    /// barrier. Bit-identical to running each walk's round serially:
    /// no walk's RNG stream or observed values depend on the batch.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation failure of the earliest failing
    /// step, in walk order; `state` is left unmodified.
    pub fn advance_round(&self, state: &mut ExploreState) -> Result<(), ExploreError> {
        let round = state.rounds_done;
        let front = self.front_snapshot(state);
        let walks = state.walks.len();
        let mut rngs: Vec<ChaCha8Rng> = (0..walks).map(|w| self.walk_rng(w, round)).collect();
        let weights: Vec<[f64; 4]> = (0..walks).map(|w| self.walk_weights(w)).collect();
        let mut currents: Vec<WalkState> = state.walks.clone();
        let mut round_evals: Vec<Vec<Evaluated>> = vec![Vec::new(); walks];
        for step in 0..self.config.steps_per_round {
            match self.config.acceptance {
                AcceptanceMode::Scalarized => self.step_scalarized(
                    round,
                    step,
                    &mut rngs,
                    &weights,
                    &mut currents,
                    &mut round_evals,
                )?,
                AcceptanceMode::Dominance => self.step_dominance(
                    round,
                    step,
                    &front,
                    &mut rngs,
                    &weights,
                    &mut currents,
                    &mut round_evals,
                )?,
            }
        }
        let mut seen: HashMap<u64, usize> =
            state.archive.iter().enumerate().map(|(i, e)| (e.key, i)).collect();
        for (walk, (end, evals)) in currents.into_iter().zip(round_evals).enumerate() {
            state.walks[walk] = end;
            for eval in evals {
                push_dedup(&mut state.archive, &mut seen, eval);
            }
        }
        if self.config.recombine && state.walks.len() >= 2 {
            self.recombine_round(state, round, &mut seen)?;
        }
        self.prune_archive(state);
        state.rounds_done = round + 1;
        Ok(())
    }

    /// Bounds the archive to [`ExploreConfig::archive_cap`] at the round
    /// barrier: keep-priority is front membership first, then ε-grid
    /// novelty (the first point of each ε-cell of the normalized
    /// objective space, first-evaluation order), with crowding distance
    /// breaking ties inside each class — the most crowded point is
    /// evicted first, and among equals the newest goes. Survivors keep
    /// their first-evaluation order, so checkpoint bytes stay a pure
    /// function of the search trajectory (thread count and kill/resume
    /// invariant).
    ///
    /// An evicted point is not blacklisted: if a walk re-proposes it,
    /// the stage caches re-serve its evaluation and it re-enters the
    /// archive — pruning bounds memory, it does not narrow the space.
    fn prune_archive(&self, state: &mut ExploreState) {
        // `Some(0)` is "no pruning", like `None`: the checkpoint writer
        // omits both, so resume behavior always matches the live run.
        let Some(cap) = self.config.archive_cap.filter(|&cap| cap > 0) else {
            return;
        };
        self.prune_archive_to(state, cap);
    }

    /// Bounds `state`'s archive to `cap` entries by the archive-cap
    /// rule, regardless of [`ExploreConfig::archive_cap`] — the same
    /// keep-priority (front > ε-cell novelty > rest, crowding distance
    /// then recency breaking ties; see the round-barrier pruner) applied
    /// at an explicit cap. This is the re-prune step of a checkpoint
    /// **merge**: the union of shard archives can exceed any bound a
    /// capped run would have maintained, and because the keep decision
    /// is a pure function of the archive contents (via
    /// [`qpd_core::epsilon_cell`] and [`crowding_distances`]), pruning
    /// the merged archive is deterministic and independent of merge
    /// input order. A no-op when the archive already fits.
    pub fn prune_archive_to(&self, state: &mut ExploreState, cap: usize) {
        if state.archive.len() <= cap {
            return;
        }
        let points: Vec<Vec<f64>> =
            state.archive.iter().map(|e| self.normalized(&e.objectives).to_vec()).collect();
        let front: std::collections::HashSet<usize> = state.front_indices().into_iter().collect();
        let eps = self.config.epsilon;
        let mut seen_cells: std::collections::HashSet<Vec<i64>> = std::collections::HashSet::new();
        let novel: Vec<bool> = points
            .iter()
            .map(|p| {
                // ε = 0 degenerates to every point being its own cell.
                eps <= 0.0 || seen_cells.insert(qpd_core::epsilon_cell(p, eps))
            })
            .collect();
        let crowd = crowding_distances(&points);
        let class = |i: usize| -> u8 {
            if front.contains(&i) {
                2
            } else if novel[i] {
                1
            } else {
                0
            }
        };
        // Lowest keep-priority first: class ascending, crowding distance
        // ascending (most crowded = smallest distance evicted first),
        // newest (largest index) first on exact ties.
        let mut order: Vec<usize> = (0..state.archive.len()).collect();
        order.sort_by(|&a, &b| {
            class(a).cmp(&class(b)).then(crowd[a].total_cmp(&crowd[b])).then(b.cmp(&a))
        });
        let evicted: std::collections::HashSet<usize> =
            order.into_iter().take(state.archive.len() - cap).collect();
        let mut index = 0;
        state.archive.retain(|_| {
            let keep = !evicted.contains(&index);
            index += 1;
            keep
        });
    }

    /// One synchronized step under the PR 3 acceptance rule,
    /// bit-for-bit: every walk proposes (walk order), the proposals
    /// evaluate as one full-fidelity batch, and the scalarized
    /// temperature rule replays per walk. Each walk's RNG sees exactly
    /// the draws the sequential rule made: propose, then one uphill
    /// draw when `delta > 0`.
    #[allow(clippy::too_many_arguments)]
    fn step_scalarized(
        &self,
        round: usize,
        step: usize,
        rngs: &mut [ChaCha8Rng],
        weights: &[[f64; 4]],
        currents: &mut [WalkState],
        round_evals: &mut [Vec<Evaluated>],
    ) -> Result<(), ExploreError> {
        let proposals: Vec<CandidateSpec> = currents
            .iter()
            .zip(rngs.iter_mut())
            .map(|(current, rng)| self.propose(&current.spec, rng))
            .collect();
        let evals = self.evaluate_batch_at(&proposals, self.config.yield_trials)?;
        for (walk, eval) in evals.into_iter().enumerate() {
            let delta = self.energy(&eval.objectives, &weights[walk])
                - self.energy(&currents[walk].objectives, &weights[walk]);
            let accept = if delta <= 0.0 {
                true
            } else {
                let p = (-delta / self.temperature(round, step)).exp();
                rngs[walk].gen::<f64>() < p
            };
            if accept {
                currents[walk] = WalkState { spec: eval.spec.clone(), objectives: eval.objectives };
            }
            round_evals[walk].push(eval);
        }
        Ok(())
    }

    /// One synchronized step under the v2 acceptance rule. Every walk's
    /// proposal is screened in one batch (at reduced trials when
    /// `screen_divisor > 1`), then per walk, in walk order:
    ///
    /// - **improve**: it dominates the walk's position — accept;
    /// - **extend**: no front-snapshot point weakly ε-dominates it — it
    ///   covers a new ε-cell of the front — accept;
    /// - otherwise a dominated move: accept with the temperature rule on
    ///   scalarized energy (the annealing escape hatch).
    ///
    /// The step's surviving proposals are re-evaluated at full fidelity
    /// in a second batch before they enter the archive; a walk only
    /// moves onto the full-fidelity point if the re-check still passes
    /// (annealing escapes move unconditionally), but a survivor whose
    /// re-check fails has been paid for and stays archived. Proposals
    /// rejected at the screening stage cost the screening simulation
    /// only and are never archived when screening is on.
    ///
    /// RNG parity with the sequential rule: each walk draws for its
    /// proposal, then one uphill draw iff its screened candidate
    /// neither improves nor extends — both pure functions of the walk's
    /// own stream and content, so batching adds or removes no draw.
    #[allow(clippy::too_many_arguments)]
    fn step_dominance(
        &self,
        round: usize,
        step: usize,
        front: &[[f64; 4]],
        rngs: &mut [ChaCha8Rng],
        weights: &[[f64; 4]],
        currents: &mut [WalkState],
        round_evals: &mut [Vec<Evaluated>],
    ) -> Result<(), ExploreError> {
        let screening = self.config.screen_divisor > 1;
        let eps = self.config.epsilon;
        let proposals: Vec<CandidateSpec> = currents
            .iter()
            .zip(rngs.iter_mut())
            .map(|(current, rng)| self.propose(&current.spec, rng))
            .collect();
        let screen_trials = if screening { self.screen_trials() } else { self.config.yield_trials };
        let screened = self.evaluate_batch_at(&proposals, screen_trials)?;
        // Decision pass, walk order: who survives to full fidelity, and
        // whether annealing (which moves unconditionally) let them in.
        let mut survivors: Vec<(usize, bool)> = Vec::with_capacity(proposals.len());
        for (walk, candidate) in screened.iter().enumerate() {
            let cur_n = self.normalized(&currents[walk].objectives);
            let cand_n = self.normalized(&candidate.objectives);
            let improves = dominates_nd(&cand_n, &cur_n);
            let extends = !front.iter().any(|f| epsilon_weakly_dominates_nd(f, &cand_n, eps));
            let mut annealed = false;
            if !(improves || extends) {
                // A dominated move: the v1 temperature rule decides.
                let delta = self.energy(&candidate.objectives, &weights[walk])
                    - self.energy(&currents[walk].objectives, &weights[walk]);
                annealed = delta <= 0.0 || {
                    let p = (-delta / self.temperature(round, step)).exp();
                    rngs[walk].gen::<f64>() < p
                };
                if !annealed {
                    // Clearly dominated: when screening, the full-trial
                    // simulation never runs and nothing is archived.
                    if !screening {
                        round_evals[walk].push(candidate.clone());
                    }
                    continue;
                }
            }
            survivors.push((walk, annealed));
        }
        // Full-fidelity re-check batch before archive insertion.
        let fulls: Vec<Evaluated> = if screening {
            let specs: Vec<CandidateSpec> =
                survivors.iter().map(|&(walk, _)| proposals[walk].clone()).collect();
            self.evaluate_batch_at(&specs, self.config.yield_trials)?
        } else {
            survivors.iter().map(|&(walk, _)| screened[walk].clone()).collect()
        };
        for (&(walk, annealed), full) in survivors.iter().zip(fulls) {
            let cur_n = self.normalized(&currents[walk].objectives);
            let full_n = self.normalized(&full.objectives);
            let still_good = dominates_nd(&full_n, &cur_n)
                || !front.iter().any(|f| epsilon_weakly_dominates_nd(f, &full_n, eps));
            if annealed || still_good {
                currents[walk] = WalkState { spec: full.spec.clone(), objectives: full.objectives };
            }
            round_evals[walk].push(full);
        }
        Ok(())
    }

    /// Cross-walk recombination at the round barrier: adjacent walk
    /// pairs `(2p, 2p+1)` exchange knob blocks — the bus layout block
    /// against the frequency/aux/placement block — producing two
    /// offspring per exchanging pair, evaluated together as one batch.
    /// Offspring are archived and replace their parent's position when
    /// they dominate it (or, if mutually non-dominated, when they sit
    /// in a less crowded region of the front).
    ///
    /// In mixed-family sweeps ([`HardwareSweep::All`]) the hardware
    /// knob is its **own exchange block**: one extra draw per
    /// exchanging pair decides whether offspring inherit the family
    /// from the bus-block parent instead of the frequency-block parent,
    /// so family × layout combinations recombine independently of the
    /// frequency knobs. Pinned sweeps make no such draw (both parents
    /// share the family anyway), so their exchange streams — and every
    /// pre-mixed-mode trajectory — are preserved exactly.
    ///
    /// With [`ExploreConfig::fine_recombine`] the frequency-strategy
    /// knob becomes its own exchange block too: one further draw per
    /// exchanging pair decides whether offspring take the frequency
    /// strategy from the bus-block parent instead of the placement/aux
    /// parent. The draw order is gate, family (mixed sweeps only),
    /// frequency — appended strictly after the existing draws and made
    /// only when the flag is set, so default-config streams are
    /// untouched.
    fn recombine_round(
        &self,
        state: &mut ExploreState,
        round: usize,
        seen: &mut HashMap<u64, usize>,
    ) -> Result<(), ExploreError> {
        let mut jobs: Vec<(usize, CandidateSpec)> = Vec::new();
        for pair in 0..state.walks.len() / 2 {
            let mut rng = self.recombine_rng(round, pair);
            // Half the pairs exchange each round; which half varies by
            // (seed, round, pair) only.
            if rng.gen::<f64>() >= 0.5 {
                continue;
            }
            let family_with_bus =
                self.config.hardware == HardwareSweep::All && rng.gen::<f64>() < 0.5;
            let freq_with_bus = self.config.fine_recombine && rng.gen::<f64>() < 0.5;
            let (i, j) = (2 * pair, 2 * pair + 1);
            let (a, b) = (&state.walks[i].spec, &state.walks[j].spec);
            let cross = |bus_from: &CandidateSpec, rest_from: &CandidateSpec| {
                self.space.sanitize(CandidateSpec {
                    bus: bus_from.bus.clone(),
                    frequency: if freq_with_bus { bus_from.frequency } else { rest_from.frequency },
                    aux_qubits: rest_from.aux_qubits,
                    placement: rest_from.placement,
                    hardware: if family_with_bus { bus_from.hardware } else { rest_from.hardware },
                })
            };
            jobs.push((i, cross(a, b)));
            jobs.push((j, cross(b, a)));
        }
        if jobs.is_empty() {
            return Ok(());
        }
        let specs: Vec<CandidateSpec> = jobs.iter().map(|(_, spec)| spec.clone()).collect();
        let evals = self.evaluate_batch_at(&specs, self.config.yield_trials)?;
        let mut offspring: Vec<(usize, Evaluated)> = Vec::with_capacity(jobs.len());
        for ((walk, _), eval) in jobs.into_iter().zip(evals) {
            push_dedup(&mut state.archive, seen, eval.clone());
            offspring.push((walk, eval));
        }
        // Replacement decisions compare against the post-merge front, so
        // they see everything this round produced.
        let front = self.front_snapshot(state);
        for (walk, off) in offspring {
            let parent_n = self.normalized(&state.walks[walk].objectives);
            let off_n = self.normalized(&off.objectives);
            let replace = if dominates_nd(&off_n, &parent_n) {
                true
            } else if dominates_nd(&parent_n, &off_n) {
                false
            } else {
                // Mutually non-dominated: prefer the less crowded
                // position relative to the front. The two contestants'
                // own archived copies are excluded from the context, so
                // neither competes against a duplicate of itself. Ties
                // keep the parent.
                let is_contestant = |f: &[f64; 4]| f[..] == parent_n[..] || f[..] == off_n[..];
                let mut pts: Vec<Vec<f64>> =
                    front.iter().filter(|f| !is_contestant(f)).map(|f| f.to_vec()).collect();
                pts.push(parent_n.to_vec());
                pts.push(off_n.to_vec());
                let d = crowding_distances(&pts);
                d[pts.len() - 1] > d[pts.len() - 2]
            };
            if replace {
                state.walks[walk] =
                    WalkState { spec: off.spec.clone(), objectives: off.objectives };
            }
        }
        Ok(())
    }

    /// Continues `state` until the configured round budget is spent.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation failure.
    pub fn resume(&self, mut state: ExploreState) -> Result<ExploreState, ExploreError> {
        while state.rounds_done < self.config.rounds {
            self.advance_round(&mut state)?;
        }
        Ok(state)
    }

    /// A full run: initial evaluations plus every configured round.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation failure.
    pub fn run(&self) -> Result<ExploreState, ExploreError> {
        self.resume(self.initial_state()?)
    }

    /// Validates that this engine's configuration supports sharding
    /// ([`ExploreConfig::shardable`]) and that `spec` is in range.
    fn check_shard(&self, spec: ShardSpec) -> Result<(), ExploreError> {
        ShardSpec::new(spec.index, spec.of)
            .map_err(|m| ExploreError::Shard(format!("invalid shard spec: {m}")))?;
        self.config
            .shardable()
            .map_err(|m| ExploreError::Shard(format!("config is not shardable: {m}")))
    }

    /// Evaluates the starting specs of the walks `spec` owns — the
    /// shard half of [`Self::initial_state`]. Walks keep their global
    /// indices (streams, weights, starting specs are bit-identical to
    /// the single-process run); the archive records per-entry
    /// [`Provenance`] so a later merge can restore single-run insertion
    /// order.
    ///
    /// # Errors
    ///
    /// Rejects non-[`shardable`](ExploreConfig::shardable) configs and
    /// out-of-range shard specs; propagates evaluation failures.
    pub fn initial_shard_state(&self, spec: ShardSpec) -> Result<ShardState, ExploreError> {
        self.check_shard(spec)?;
        let ids = spec.walk_ids(self.config.walks);
        let specs: Vec<CandidateSpec> = ids.iter().map(|&w| self.initial_spec(w)).collect();
        let evals = self.evaluate_batch_at(&specs, self.config.yield_trials)?;
        let mut archive = Vec::new();
        let mut prov = Vec::new();
        let mut seen = HashMap::new();
        let mut walks = Vec::with_capacity(specs.len());
        for ((&walk, spec), eval) in ids.iter().zip(specs).zip(evals) {
            walks.push(WalkState { spec, objectives: eval.objectives });
            if push_dedup(&mut archive, &mut seen, eval) {
                prov.push(Provenance { block: 0, walk: walk as u64, step: 0 });
            }
        }
        Ok(ShardState { spec, state: ExploreState { rounds_done: 0, walks, archive }, prov })
    }

    /// Runs one round of the shard's walks: the same synchronized
    /// [`step_scalarized`](Self::advance_round) steps the full run
    /// takes, over this shard's subset. Because scalarized walks never
    /// read each other (which the shard-spec validation enforces), every
    /// walk draws and observes exactly what it does in the
    /// single-process run.
    ///
    /// # Errors
    ///
    /// As [`Self::initial_shard_state`]; on evaluation failure `shard`
    /// is left unmodified.
    pub fn advance_shard_round(&self, shard: &mut ShardState) -> Result<(), ExploreError> {
        self.check_shard(shard.spec)?;
        let round = shard.state.rounds_done;
        let ids = shard.spec.walk_ids(self.config.walks);
        if ids.len() != shard.state.walks.len() {
            return Err(ExploreError::Shard(format!(
                "shard {} of a {}-walk run must hold {} walk(s), found {}",
                shard.spec,
                self.config.walks,
                ids.len(),
                shard.state.walks.len()
            )));
        }
        let mut rngs: Vec<ChaCha8Rng> = ids.iter().map(|&w| self.walk_rng(w, round)).collect();
        let weights: Vec<[f64; 4]> = ids.iter().map(|&w| self.walk_weights(w)).collect();
        let mut currents: Vec<WalkState> = shard.state.walks.clone();
        let mut round_evals: Vec<Vec<Evaluated>> = vec![Vec::new(); ids.len()];
        for step in 0..self.config.steps_per_round {
            self.step_scalarized(
                round,
                step,
                &mut rngs,
                &weights,
                &mut currents,
                &mut round_evals,
            )?;
        }
        let mut seen: HashMap<u64, usize> =
            shard.state.archive.iter().enumerate().map(|(i, e)| (e.key, i)).collect();
        for (local, (end, evals)) in currents.into_iter().zip(round_evals).enumerate() {
            shard.state.walks[local] = end;
            // Scalarized steps archive exactly one evaluation per walk
            // per step, so the position in the walk's round list *is*
            // the step index.
            for (step, eval) in evals.into_iter().enumerate() {
                if push_dedup(&mut shard.state.archive, &mut seen, eval) {
                    shard.prov.push(Provenance {
                        block: round as u64 + 1,
                        walk: ids[local] as u64,
                        step: step as u64,
                    });
                }
            }
        }
        shard.state.rounds_done = round + 1;
        Ok(())
    }

    /// Continues a shard until the configured round budget is spent —
    /// the shard half of [`Self::resume`].
    ///
    /// # Errors
    ///
    /// As [`Self::advance_shard_round`].
    pub fn resume_shard(&self, mut shard: ShardState) -> Result<ShardState, ExploreError> {
        while shard.state.rounds_done < self.config.rounds {
            self.advance_shard_round(&mut shard)?;
        }
        Ok(shard)
    }

    /// A full shard run: initial evaluations of the owned walks plus
    /// every configured round.
    ///
    /// # Errors
    ///
    /// As [`Self::advance_shard_round`].
    pub fn run_shard(&self, spec: ShardSpec) -> Result<ShardState, ExploreError> {
        self.resume_shard(self.initial_shard_state(spec)?)
    }
}

/// Appends `eval` unless its content key is already archived; true when
/// it was appended.
pub(crate) fn push_dedup(
    archive: &mut Vec<Evaluated>,
    seen: &mut HashMap<u64, usize>,
    eval: Evaluated,
) -> bool {
    if let std::collections::hash_map::Entry::Vacant(slot) = seen.entry(eval.key) {
        slot.insert(archive.len());
        archive.push(eval);
        true
    } else {
        false
    }
}

/// SplitMix64 finalizer: the engine's cheap pure mixing function.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpd_circuit::Circuit;

    fn demo_circuit() -> Circuit {
        let mut c = Circuit::new(6);
        for _ in 0..3 {
            c.cx(0, 1).cx(1, 2).cx(3, 4).cx(4, 5).cx(0, 3).cx(1, 4).cx(2, 5);
        }
        c.cx(0, 4).cx(1, 3).cx(1, 5).cx(2, 4);
        c
    }

    fn quick_explorer(seed: u64) -> Explorer {
        let config = ExploreConfig { seed, ..ExploreConfig::quick() };
        Explorer::new(ExploreSpace::new(demo_circuit(), config.max_aux), config).unwrap()
    }

    fn explorer_with(config: ExploreConfig) -> Explorer {
        Explorer::new(ExploreSpace::new(demo_circuit(), config.max_aux), config).unwrap()
    }

    #[test]
    fn run_produces_a_nonempty_front_with_eff_full() {
        let explorer = quick_explorer(0);
        let state = explorer.run().unwrap();
        assert_eq!(state.rounds_done, explorer.config().rounds);
        assert!(!state.archive.is_empty());
        let front = state.front_indices();
        assert!(!front.is_empty());
        // Walk 0 starts at eff-full: it must be an evaluated point.
        let full = explorer.space().full_weighted_len();
        let eff_full = CandidateSpec::eff_full(full);
        assert!(
            state.archive.iter().any(|e| e.spec == eff_full),
            "eff-full missing from the archive"
        );
    }

    #[test]
    fn archive_keys_are_unique() {
        let state = quick_explorer(1).run().unwrap();
        let mut keys: Vec<u64> = state.archive.iter().map(|e| e.key).collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before, "archive contains duplicate content keys");
    }

    #[test]
    fn repeated_runs_are_identical() {
        let a = quick_explorer(7).run().unwrap();
        let b = quick_explorer(7).run().unwrap();
        assert_eq!(a, b);
        let c = quick_explorer(8).run().unwrap();
        assert_ne!(a.archive, c.archive, "different seeds should explore differently");
    }

    #[test]
    fn fine_recombine_is_deterministic_and_opt_in() {
        // The finer exchange blocks stay bit-identical run to run…
        let fine = ExploreConfig { seed: 7, fine_recombine: true, ..ExploreConfig::quick() };
        let a = explorer_with(fine).run().unwrap();
        let b = explorer_with(fine).run().unwrap();
        assert_eq!(a, b);
        // …and the default config never makes the extra draw: its
        // trajectory is byte-identical whether or not the build knows
        // about the flag, which `repeated_runs_are_identical` pins and
        // this asserts structurally — the flag is off.
        assert!(!ExploreConfig::default().fine_recombine);
        assert!(!ExploreConfig::quick().fine_recombine);
    }

    #[test]
    fn shared_caches_and_plan_reproduce_the_owned_run() {
        // The resident-server path: two engines sharing one plan and
        // one downstream cache set must produce the same state as a
        // fresh owning engine — warm tables change *when* work happens,
        // never the result.
        let config = ExploreConfig { seed: 11, ..ExploreConfig::quick() };
        let owned = explorer_with(config).run().unwrap();
        let plan = Arc::new(qpd_core::StagePlan::with_cap(Some(DEFAULT_MEMO_CAP)));
        let caches = Arc::new(StageCaches::with_cap(Some(DEFAULT_MEMO_CAP)));
        let space = || ExploreSpace::new(demo_circuit(), config.max_aux);
        let first = Explorer::with_shared(space(), config, plan.clone(), caches.clone())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(first, owned);
        // Second engine starts fully warm and still matches.
        let warm = Explorer::with_shared(space(), config, plan, caches.clone()).unwrap();
        let second = warm.run().unwrap();
        assert_eq!(second, owned);
        assert!(caches.yields.hits() > 0, "the shared tables were not consulted");
    }

    #[test]
    fn resume_mid_run_matches_uninterrupted() {
        let explorer = quick_explorer(3);
        let uninterrupted = explorer.run().unwrap();
        // Cut after the first round, then resume on a *fresh* engine
        // (empty caches), as a process restart would.
        let mut partial = explorer.initial_state().unwrap();
        explorer.advance_round(&mut partial).unwrap();
        let resumed = quick_explorer(3).resume(partial).unwrap();
        assert_eq!(uninterrupted, resumed);
    }

    #[test]
    fn cache_hits_accumulate() {
        let explorer = quick_explorer(2);
        let state = explorer.run().unwrap();
        // Evaluations happened, and memoization actually served repeats:
        // the dedup'd archive is smaller than the evaluation count, and
        // every one of those repeats must have been a yield-cache hit.
        assert!(explorer.caches().yields.misses() > 0);
        assert!(
            explorer.caches().yields.hits() > 0,
            "no memo hits: the content-keyed cache is not being consulted"
        );
        let evaluations = explorer.config().walks
            * (1 + explorer.config().rounds * explorer.config().steps_per_round);
        assert!(state.archive.len() <= evaluations + 2 * explorer.config().rounds);
    }

    #[test]
    fn out_of_range_aux_is_clamped_consistently() {
        // A spec asking for more auxiliary qubits than the space bounds
        // must evaluate exactly like the clamped spec — same content
        // key *and* same objectives — so the archive dedup can never
        // depend on which form evaluated first.
        let explorer = quick_explorer(0);
        let max = explorer.space().max_aux();
        let clamped = CandidateSpec {
            aux_qubits: max,
            ..CandidateSpec::eff_full(explorer.space().full_weighted_len())
        };
        let oversized = CandidateSpec { aux_qubits: max + 4, ..clamped.clone() };
        let a = explorer.evaluate(&clamped).unwrap();
        let b = explorer.evaluate(&oversized).unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(a.objectives, b.objectives);
    }

    #[test]
    fn front_is_actually_nondominated() {
        let state = quick_explorer(5).run().unwrap();
        let front = state.front();
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    assert!(
                        !qpd_core::dominates_nd(
                            &a.objectives.as_maximization(),
                            &b.objectives.as_maximization()
                        ),
                        "front point {} dominates front point {}",
                        a.arch_name,
                        b.arch_name
                    );
                }
            }
        }
    }

    #[test]
    fn scalarized_mode_reproduces_the_v1_engine_shape() {
        // Scalarized + no recombination archives every proposal: the
        // evaluation count is exactly the v1 budget formula.
        let config = ExploreConfig { seed: 4, ..ExploreConfig::quick() }.v1_compat();
        let explorer = explorer_with(config);
        let state = explorer.run().unwrap();
        let cache = explorer.caches();
        let budget = config.walks * (1 + config.rounds * config.steps_per_round);
        assert_eq!(cache.yields.hits() + cache.yields.misses(), budget as u64);
        assert!(!state.front_indices().is_empty());
    }

    #[test]
    fn dominance_mode_stays_within_the_v1_candidate_budget() {
        // Proposals (1 eval each, screening off) plus at most one
        // offspring pair per walk pair per round.
        let config = ExploreConfig { seed: 4, ..ExploreConfig::quick() };
        let explorer = explorer_with(config);
        explorer.run().unwrap();
        let cache = explorer.caches();
        let proposals = config.walks * (1 + config.rounds * config.steps_per_round);
        let offspring_cap = 2 * (config.walks / 2) * config.rounds;
        assert!(cache.yields.hits() + cache.yields.misses() <= (proposals + offspring_cap) as u64);
    }

    #[test]
    fn screening_archives_full_fidelity_only() {
        let config = ExploreConfig { seed: 9, ..ExploreConfig::adaptive_quick() };
        let explorer = explorer_with(config);
        let state = explorer.run().unwrap();
        assert!(!state.front_indices().is_empty());
        for e in &state.archive {
            assert_eq!(
                e.objectives.yield_trials, config.yield_trials,
                "archived point {} carries a screened trial budget",
                e.arch_name
            );
        }
    }

    #[test]
    fn explorer_caches_are_bounded_by_default() {
        // The archive_cap memory story only holds if the stage caches
        // (the assembly cache retains whole architectures) are bounded
        // too: without QPD_MEMO_CAP the explorer must apply the default.
        let explorer = quick_explorer(0);
        if std::env::var(qpd_core::MEMO_CAP_ENV).is_err() {
            assert_eq!(explorer.caches().yields.cap(), Some(DEFAULT_MEMO_CAP));
            assert_eq!(explorer.caches().routes.cap(), Some(DEFAULT_MEMO_CAP));
        }
    }

    #[test]
    fn freq_only_move_skips_placement_bus_and_routing() {
        // The load-bearing stage-graph property: after evaluating a
        // spec, the frequency-flipped variant is a new assembly (new
        // frequency plan, new yield simulation) but never re-routes —
        // routing reads topology only, which the flip leaves untouched.
        let explorer = quick_explorer(0);
        let spec = CandidateSpec::eff_full(explorer.space().full_weighted_len());
        explorer.evaluate(&spec).unwrap();
        let route_misses = explorer.caches().routes.misses();
        let yield_misses = explorer.caches().yields.misses();
        let flipped = CandidateSpec { frequency: FrequencyStrategy::FiveFrequency, ..spec.clone() };
        assert_eq!(
            flipped.dirty_stages(&spec).to_string(),
            "{frequency, yield}",
            "a frequency flip should dirty exactly the frequency and yield stages"
        );
        explorer.evaluate(&flipped).unwrap();
        assert_eq!(
            explorer.caches().routes.misses(),
            route_misses,
            "a freq-only move re-ran routing"
        );
        assert!(explorer.caches().routes.hits() > 0, "routing was not served from cache");
        assert!(
            explorer.caches().yields.misses() > yield_misses,
            "the dirtied yield stage must re-run"
        );
    }

    #[test]
    fn repeated_evaluations_skip_every_stage() {
        // A revisited candidate costs hash lookups only: the frequency
        // allocation that the pre-stage-graph engine re-ran on every
        // evaluate call is now served by the shared plan cache.
        let explorer = quick_explorer(0);
        let spec = CandidateSpec::eff_full(explorer.space().full_weighted_len());
        let first = explorer.evaluate(&spec).unwrap();
        let assemble_misses: u64 = explorer
            .stage_stats()
            .iter()
            .find(|s| s.kind == qpd_core::StageKind::Frequency)
            .unwrap()
            .misses;
        let second = explorer.evaluate(&spec).unwrap();
        assert_eq!(first, second);
        let stats = explorer.stage_stats();
        let assemble = stats.iter().find(|s| s.kind == qpd_core::StageKind::Frequency).unwrap();
        assert_eq!(assemble.misses, assemble_misses, "repeat evaluation re-ran frequency alloc");
        assert!(assemble.hits > 0);
    }

    #[test]
    fn archive_cap_bounds_the_archive_and_keeps_the_front() {
        let uncapped = ExploreConfig { seed: 11, ..ExploreConfig::quick() };
        let reference = explorer_with(uncapped).run().unwrap();
        let cap = reference.front_indices().len().max(3);
        let capped_config = ExploreConfig { archive_cap: Some(cap), ..uncapped };
        let capped = explorer_with(capped_config).run().unwrap();
        assert!(capped.archive.len() <= cap, "{} > cap {cap}", capped.archive.len());
        assert!(!capped.front_indices().is_empty());
        // Determinism: the capped run reproduces itself exactly.
        let again = explorer_with(capped_config).run().unwrap();
        assert_eq!(capped, again);
    }

    #[test]
    fn pruning_prefers_front_points() {
        // With a cap at exactly the front size after an uncapped run,
        // pruning a snapshot of that run keeps a front that dominates
        // the same region (front points have top keep-priority).
        let config = ExploreConfig { seed: 2, ..ExploreConfig::quick() };
        let explorer = explorer_with(config);
        let mut state = explorer.run().unwrap();
        let front_keys: Vec<u64> =
            state.front_indices().iter().map(|&i| state.archive[i].key).collect();
        let cap = front_keys.len();
        let capped = ExploreConfig { archive_cap: Some(cap), ..config };
        let pruner = explorer_with(capped);
        pruner.prune_archive(&mut state);
        assert_eq!(state.archive.len(), cap);
        let kept: Vec<u64> = state.archive.iter().map(|e| e.key).collect();
        assert_eq!(kept, front_keys, "pruning evicted a front point over a dominated one");
    }

    #[test]
    fn pinned_default_sweep_matches_the_pre_hardware_stream() {
        // `Pinned(default)` is the default config: the sweep must be
        // invisible — explicitly spelling it out changes nothing.
        let implicit = quick_explorer(7).run().unwrap();
        let spelled = ExploreConfig {
            seed: 7,
            hardware: HardwareSweep::Pinned(HardwareFamily::FixedFrequencyTransmon),
            ..ExploreConfig::quick()
        };
        let explicit = explorer_with(spelled).run().unwrap();
        assert_eq!(implicit, explicit);
        assert!(implicit.archive.iter().all(|e| e.spec.hardware.is_default()));
    }

    #[test]
    fn pinned_family_runs_stay_on_that_family() {
        let config = ExploreConfig {
            seed: 3,
            hardware: HardwareSweep::Pinned(HardwareFamily::TunableCoupler),
            ..ExploreConfig::quick()
        };
        let state = explorer_with(config).run().unwrap();
        assert!(!state.front_indices().is_empty());
        for e in &state.archive {
            assert_eq!(
                e.spec.hardware,
                HardwareFamily::TunableCoupler,
                "pinned run archived a foreign family: {}",
                e.arch_name
            );
        }
        // The family rides into the design names.
        assert!(state.archive.iter().any(|e| e.arch_name.contains("-tc-")));
    }

    #[test]
    fn mixed_sweep_builds_a_cross_family_archive_deterministically() {
        let config =
            ExploreConfig { seed: 5, hardware: HardwareSweep::All, ..ExploreConfig::quick() };
        let state = explorer_with(config).run().unwrap();
        let mut families: Vec<HardwareFamily> =
            state.archive.iter().map(|e| e.spec.hardware).collect();
        families.sort_by_key(|f| *f as u8);
        families.dedup();
        assert!(families.len() >= 2, "mixed sweep never left one family: {families:?}");
        assert!(!state.front_indices().is_empty());
        // Bit-identical on repeat, and kill/resume invariant.
        let again = explorer_with(config).run().unwrap();
        assert_eq!(state, again);
        let resumer = explorer_with(config);
        let mut partial = resumer.initial_state().unwrap();
        resumer.advance_round(&mut partial).unwrap();
        let resumed = explorer_with(config).resume(partial).unwrap();
        assert_eq!(state, resumed);
    }

    #[test]
    fn hardware_sweep_tags_round_trip() {
        for sweep in [
            HardwareSweep::Pinned(HardwareFamily::FixedFrequencyTransmon),
            HardwareSweep::Pinned(HardwareFamily::TunableCoupler),
            HardwareSweep::Pinned(HardwareFamily::HeavyHex),
            HardwareSweep::All,
        ] {
            assert_eq!(HardwareSweep::parse(sweep.as_str()), Some(sweep));
        }
        assert_eq!(HardwareSweep::parse("warp-core"), None);
        assert!(HardwareSweep::default().is_default());
        assert!(!HardwareSweep::All.is_default());
    }

    #[test]
    fn shard_spec_parse_and_walk_ids() {
        assert_eq!(ShardSpec::parse("0/1"), Ok(ShardSpec { index: 0, of: 1 }));
        assert_eq!(ShardSpec::parse("3/4"), Ok(ShardSpec { index: 3, of: 4 }));
        assert!(ShardSpec::parse("4/4").is_err());
        assert!(ShardSpec::parse("1/0").is_err());
        assert!(ShardSpec::parse("2").is_err());
        assert!(ShardSpec::parse("a/b").is_err());
        assert_eq!(ShardSpec { index: 1, of: 3 }.walk_ids(7), vec![1, 4]);
        assert_eq!(ShardSpec { index: 0, of: 1 }.walk_ids(3), vec![0, 1, 2]);
        // More shards than walks: trailing shards legitimately own none.
        assert!(ShardSpec { index: 5, of: 8 }.walk_ids(3).is_empty());
        // Every walk lands in exactly one shard.
        let mut owned: Vec<usize> =
            (0..4).flat_map(|i| ShardSpec { index: i, of: 4 }.walk_ids(10)).collect();
        owned.sort_unstable();
        assert_eq!(owned, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shardable_rejects_cross_walk_knobs() {
        let good = ExploreConfig::quick().v1_compat();
        assert!(good.shardable().is_ok());
        let dominance = ExploreConfig::quick();
        let err = dominance.shardable().unwrap_err();
        assert!(err.contains("scalarized"), "{err}");
        assert!(err.contains("recombin"), "{err}");
        let capped = ExploreConfig { archive_cap: Some(8), ..good };
        assert!(capped.shardable().unwrap_err().contains("archive_cap"));
        // `Some(0)` is normalized no-pruning: shardable.
        assert!(ExploreConfig { archive_cap: Some(0), ..good }.shardable().is_ok());
        // Screening is inert under scalarized acceptance: shardable.
        assert!(ExploreConfig { screen_divisor: 4, ..good }.shardable().is_ok());
    }

    #[test]
    fn shard_runs_reject_unshardable_configs() {
        let explorer = quick_explorer(0); // dominance + recombine
        let spec = ShardSpec { index: 0, of: 2 };
        let err = explorer.initial_shard_state(spec).unwrap_err();
        assert!(matches!(err, ExploreError::Shard(_)), "{err}");
    }

    #[test]
    fn single_shard_run_matches_the_full_run_with_provenance() {
        let config = ExploreConfig { seed: 7, ..ExploreConfig::quick() }.v1_compat();
        let full = explorer_with(config).run().unwrap();
        let shard = explorer_with(config).run_shard(ShardSpec { index: 0, of: 1 }).unwrap();
        assert_eq!(shard.state, full);
        assert_eq!(shard.prov.len(), shard.state.archive.len());
        // Provenance is strictly increasing in single-run insertion
        // order — the invariant the merge sort relies on.
        assert!(shard.prov.windows(2).all(|w| w[0] < w[1]), "{:?}", shard.prov);
    }

    #[test]
    fn shard_kill_resume_matches_uninterrupted() {
        let config = ExploreConfig { seed: 9, ..ExploreConfig::quick() }.v1_compat();
        let spec = ShardSpec { index: 1, of: 2 };
        let uninterrupted = explorer_with(config).run_shard(spec).unwrap();
        let cutter = explorer_with(config);
        let mut partial = cutter.initial_shard_state(spec).unwrap();
        cutter.advance_shard_round(&mut partial).unwrap();
        let resumed = explorer_with(config).resume_shard(partial).unwrap();
        assert_eq!(uninterrupted, resumed);
    }

    #[test]
    fn recombination_exchanges_are_keyed_by_seed_round_pair_only() {
        // Same seed, same state -> same exchanges regardless of walk
        // content arriving via different thread counts is covered by the
        // integration tests; here: toggling recombine changes the run,
        // and the toggle alone (not the RNG streams) is responsible.
        let on = ExploreConfig { seed: 6, ..ExploreConfig::quick() };
        let off = ExploreConfig { recombine: false, ..on };
        let a = explorer_with(on).run().unwrap();
        let b = explorer_with(off).run().unwrap();
        assert_eq!(a.rounds_done, b.rounds_done);
        assert_ne!(a, b, "recombination had no effect at this seed");
    }
}
