//! The exploration engine: seeded simulated-annealing walks over the
//! knob space, fanned out on the `qpd-par` pool, with a deterministic
//! merge into a Pareto archive.
//!
//! # Determinism
//!
//! The run is bit-identical for every `QPD_THREADS` value and for a
//! resumed run, by construction:
//!
//! - each walk's RNG stream is derived from `(seed, walk, round)` only —
//!   never from thread identity or timing — and a walk consumes its
//!   stream exclusively for move selection and acceptance;
//! - every candidate evaluation is a pure function of its content
//!   (profile, knobs, simulator settings), so the shared memo cache can
//!   only change *when* a value is computed, never *what* it is;
//! - per-round results are merged in walk order, and the archive dedupes
//!   by content key keeping the first occurrence.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qpd_core::{DesignError, DesignFlow, FrequencyStrategy};
use qpd_mapping::{MappingError, SabreRouter};
use qpd_topology::Architecture;
use qpd_yield::{YieldError, YieldSimulator};

use crate::cache::{EvalCache, Fnv64};
use crate::space::ExploreSpace;
use crate::spec::{CandidateSpec, Evaluated, Objectives};

/// Budgets and knob bounds of one exploration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExploreConfig {
    /// Independent annealing walks (fanned out on the worker pool).
    pub walks: usize,
    /// Rounds of the search; a checkpoint can be cut after any round.
    pub rounds: usize,
    /// Mutation/evaluation steps each walk takes per round.
    pub steps_per_round: usize,
    /// Base seed; every stream in the run derives from it.
    pub seed: u64,
    /// Largest auxiliary-qubit count in scope.
    pub max_aux: usize,
    /// Monte Carlo trials inside frequency allocation.
    pub alloc_trials: usize,
    /// Monte Carlo trials per yield estimate.
    pub yield_trials: u64,
    /// Fabrication precision in GHz.
    pub sigma_ghz: f64,
    /// Initial annealing temperature (in units of scalarized energy).
    pub initial_temperature: f64,
    /// Multiplicative cooling factor per global step, in `(0, 1]`.
    pub cooling: f64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            walks: 6,
            rounds: 4,
            steps_per_round: 6,
            seed: 0,
            max_aux: 2,
            alloc_trials: 400,
            yield_trials: 2_000,
            sigma_ghz: 0.030,
            initial_temperature: 0.08,
            cooling: 0.92,
        }
    }
}

impl ExploreConfig {
    /// A tiny-budget configuration for tests and CI smoke runs.
    pub fn quick() -> Self {
        ExploreConfig {
            walks: 3,
            rounds: 2,
            steps_per_round: 3,
            max_aux: 1,
            alloc_trials: 80,
            yield_trials: 600,
            ..ExploreConfig::default()
        }
    }
}

/// Error from the exploration engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExploreError {
    /// A candidate failed to materialize.
    Design(DesignError),
    /// Routing the benchmark onto a candidate failed.
    Mapping(MappingError),
    /// Yield simulation failed.
    Yield(YieldError),
    /// A checkpoint could not be parsed.
    Checkpoint(String),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Design(e) => write!(f, "candidate design failed: {e}"),
            ExploreError::Mapping(e) => write!(f, "candidate routing failed: {e}"),
            ExploreError::Yield(e) => write!(f, "candidate yield simulation failed: {e}"),
            ExploreError::Checkpoint(m) => write!(f, "checkpoint invalid: {m}"),
        }
    }
}

impl Error for ExploreError {}

impl From<DesignError> for ExploreError {
    fn from(e: DesignError) -> Self {
        ExploreError::Design(e)
    }
}

impl From<MappingError> for ExploreError {
    fn from(e: MappingError) -> Self {
        ExploreError::Mapping(e)
    }
}

impl From<YieldError> for ExploreError {
    fn from(e: YieldError) -> Self {
        ExploreError::Yield(e)
    }
}

/// One walk's live position.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkState {
    /// The walk's current spec.
    pub spec: CandidateSpec,
    /// The current spec's objectives (for the acceptance rule).
    pub objectives: Objectives,
}

/// The resumable state of a run: how far it got, where each walk
/// stands, and everything evaluated so far.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreState {
    /// Completed rounds.
    pub rounds_done: usize,
    /// Per-walk positions, walk order.
    pub walks: Vec<WalkState>,
    /// All distinct evaluated points, in first-evaluation order.
    pub archive: Vec<Evaluated>,
}

impl ExploreState {
    /// Indices into [`Self::archive`] of the non-dominated points.
    pub fn front_indices(&self) -> Vec<usize> {
        pareto_indices(&self.archive)
    }

    /// The non-dominated points themselves, archive order.
    pub fn front(&self) -> Vec<&Evaluated> {
        self.front_indices().into_iter().map(|i| &self.archive[i]).collect()
    }
}

/// Indices of the Pareto-optimal entries of an archive (yield up, gate
/// count / depth / hardware cost down).
pub fn pareto_indices(archive: &[Evaluated]) -> Vec<usize> {
    let points: Vec<Vec<f64>> = archive.iter().map(|e| e.objectives.as_maximization()).collect();
    qpd_core::pareto_front_nd(&points)
}

/// The engine: a space, a budget, and the shared evaluation cache.
#[derive(Debug)]
pub struct Explorer {
    space: ExploreSpace,
    config: ExploreConfig,
    cache: EvalCache,
    /// Gate count of the zero-bus identity design — the scalarization
    /// scale for the performance and depth terms.
    baseline_gates: u64,
    baseline_depth: u64,
}

impl Explorer {
    /// Builds an engine, routing the zero-bus baseline once to anchor
    /// the energy scalarization.
    ///
    /// # Errors
    ///
    /// Fails only if the baseline design cannot be built or routed.
    pub fn new(space: ExploreSpace, config: ExploreConfig) -> Result<Self, ExploreError> {
        let mut explorer = Explorer {
            space,
            config,
            cache: EvalCache::new(),
            baseline_gates: 1,
            baseline_depth: 1,
        };
        let baseline = CandidateSpec {
            bus: crate::spec::BusSpec::Weighted { count: 0 },
            frequency: FrequencyStrategy::FiveFrequency,
            aux_qubits: 0,
            placement: crate::spec::PlacementVariant::Identity,
        };
        let arch = explorer.materialize(&baseline)?;
        let (gates, depth) = explorer.route(&arch)?;
        explorer.baseline_gates = gates;
        explorer.baseline_depth = depth;
        Ok(explorer)
    }

    /// The configuration in use.
    pub fn config(&self) -> &ExploreConfig {
        &self.config
    }

    /// The space being searched.
    pub fn space(&self) -> &ExploreSpace {
        &self.space
    }

    /// The shared evaluation cache (hit/miss counters for reporting).
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }

    fn flow(&self, frequency: FrequencyStrategy) -> DesignFlow {
        DesignFlow::new()
            .with_frequency_strategy(frequency)
            .with_allocation_trials(self.config.alloc_trials)
            .with_allocation_seed(self.config.seed)
            .with_sigma_ghz(self.config.sigma_ghz)
    }

    fn simulator(&self) -> YieldSimulator {
        YieldSimulator::new()
            .with_trials(self.config.yield_trials)
            .with_seed(self.config.seed)
            .with_sigma_ghz(self.config.sigma_ghz)
    }

    fn materialize(&self, spec: &CandidateSpec) -> Result<Architecture, ExploreError> {
        let (coords, squares) = self.space.resolve(spec);
        Ok(self.flow(spec.frequency).design_with_layout(&coords, &squares)?)
    }

    /// Routing key: the coupling structure only (frequencies are
    /// invisible to the router).
    fn topology_key(arch: &Architecture) -> u64 {
        let mut h = Fnv64::new();
        h.push(arch.num_qubits() as u64);
        for c in arch.coords() {
            h.push(((c.row as u32 as u64) << 32) | c.col as u32 as u64);
        }
        for &(a, b) in arch.coupling_edges() {
            h.push(((a as u64) << 32) | b as u64);
        }
        h.finish()
    }

    fn route(&self, arch: &Architecture) -> Result<(u64, u64), ExploreError> {
        let key = Self::topology_key(arch);
        if let Some(v) = self.cache.routes.get(key) {
            return Ok(v);
        }
        let mapped = SabreRouter::new(arch).route(self.space.circuit())?;
        let stats = mapped.stats();
        let v = (stats.total_gates as u64, stats.routed_depth as u64);
        self.cache.routes.insert(key, v);
        Ok(v)
    }

    /// Evaluates one candidate, memoized end to end: routing by
    /// topology, yield by full content. Repeated candidates cost two
    /// hash lookups.
    ///
    /// # Errors
    ///
    /// Propagates design, routing, and yield failures.
    pub fn evaluate(&self, spec: &CandidateSpec) -> Result<Evaluated, ExploreError> {
        let arch = self.materialize(spec)?;
        let (total_gates, routed_depth) = self.route(&arch)?;
        let sim = self.simulator();
        let key = sim.content_key(&arch)?;
        let (yield_successes, yield_trials) = match self.cache.yields.get(key) {
            Some(v) => v,
            None => {
                let estimate = sim.estimate(&arch)?;
                let v = (estimate.successes(), estimate.trials());
                self.cache.yields.insert(key, v);
                v
            }
        };
        // The layout resolver clamps out-of-range auxiliary counts to
        // the space's bound; cost the clamped value actually built, so
        // equal content keys always carry equal objective vectors.
        let aux_built = spec.aux_qubits.min(self.space.max_aux()) as u64;
        let hardware_cost = arch.four_qubit_buses().len() as u64 + aux_built;
        Ok(Evaluated {
            spec: spec.clone(),
            arch_name: arch.name().to_string(),
            key,
            objectives: Objectives {
                yield_successes,
                yield_trials,
                total_gates,
                routed_depth,
                hardware_cost,
            },
        })
    }

    /// The walk's scalarization weights: a fixed pure function of the
    /// walk index, spreading the walks across the objective trade-offs.
    fn walk_weights(&self, walk: usize) -> [f64; 4] {
        let mut w = [0.0; 4];
        for (i, slot) in w.iter_mut().enumerate() {
            let x = splitmix(self.config.seed ^ ((walk as u64) << 8) ^ i as u64);
            *slot = 0.25 + 0.75 * (x >> 11) as f64 / (1u64 << 53) as f64;
        }
        w
    }

    fn energy(&self, o: &Objectives, weights: &[f64; 4]) -> f64 {
        let perf = self.baseline_gates as f64 / o.total_gates as f64;
        let depth = self.baseline_depth as f64 / o.routed_depth as f64;
        let cost = 1.0 / (1.0 + o.hardware_cost as f64);
        -(weights[0] * o.yield_rate() + weights[1] * perf + weights[2] * depth + weights[3] * cost)
    }

    /// The walk's starting point. Walk 0 always starts at the paper's
    /// `eff-full` configuration, so that design is an evaluated point of
    /// every run; the rest spread over bus budgets, strategies, and
    /// layout variants.
    fn initial_spec(&self, walk: usize) -> CandidateSpec {
        use crate::spec::{BusSpec, PlacementVariant};
        let full = self.space.full_weighted_len();
        if walk == 0 {
            return CandidateSpec::eff_full(full);
        }
        let bus = if walk % 3 == 2 {
            BusSpec::Random {
                seed: self.config.seed ^ walk as u64,
                count: 1 + (walk % full.max(1)),
            }
        } else {
            BusSpec::Weighted { count: walk * full / self.config.walks.max(1) }
        };
        CandidateSpec {
            bus,
            frequency: if walk.is_multiple_of(2) {
                FrequencyStrategy::Optimized
            } else {
                FrequencyStrategy::FiveFrequency
            },
            aux_qubits: walk % (self.config.max_aux + 1),
            placement: if walk % 4 == 3 {
                PlacementVariant::Transposed
            } else {
                PlacementVariant::Identity
            },
        }
    }

    fn walk_rng(&self, walk: usize, round: usize) -> ChaCha8Rng {
        let a = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(walk as u64 + 1);
        let b = 0xd134_2543_de82_ef95u64.wrapping_mul(round as u64 + 1);
        ChaCha8Rng::seed_from_u64(self.config.seed ^ a ^ b)
    }

    /// Evaluates every walk's starting spec; round count 0.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation failure, in walk order.
    pub fn initial_state(&self) -> Result<ExploreState, ExploreError> {
        let specs: Vec<CandidateSpec> =
            (0..self.config.walks).map(|w| self.initial_spec(w)).collect();
        let evals = qpd_par::par_map(&specs, |spec| self.evaluate(spec));
        let mut archive = Vec::new();
        let mut seen = HashMap::new();
        let mut walks = Vec::with_capacity(specs.len());
        for (spec, eval) in specs.into_iter().zip(evals) {
            let eval = eval?;
            walks.push(WalkState { spec, objectives: eval.objectives });
            push_dedup(&mut archive, &mut seen, eval);
        }
        Ok(ExploreState { rounds_done: 0, walks, archive })
    }

    /// Runs one round: every walk takes `steps_per_round` annealing
    /// steps in parallel, then the results merge in walk order.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation failure, in walk order.
    pub fn advance_round(&self, state: &mut ExploreState) -> Result<(), ExploreError> {
        let round = state.rounds_done;
        let walk_inputs: Vec<(usize, WalkState)> =
            state.walks.iter().cloned().enumerate().collect();
        let outcomes =
            qpd_par::par_map(&walk_inputs, |(walk, start)| self.walk_round(*walk, start, round));
        let mut seen: HashMap<u64, usize> =
            state.archive.iter().enumerate().map(|(i, e)| (e.key, i)).collect();
        for (walk, outcome) in outcomes.into_iter().enumerate() {
            let (end, evals) = outcome?;
            state.walks[walk] = end;
            for eval in evals {
                push_dedup(&mut state.archive, &mut seen, eval);
            }
        }
        state.rounds_done = round + 1;
        Ok(())
    }

    fn walk_round(
        &self,
        walk: usize,
        start: &WalkState,
        round: usize,
    ) -> Result<(WalkState, Vec<Evaluated>), ExploreError> {
        let mut rng = self.walk_rng(walk, round);
        let weights = self.walk_weights(walk);
        let mut current = start.clone();
        let mut evals = Vec::with_capacity(self.config.steps_per_round);
        for step in 0..self.config.steps_per_round {
            let candidate_spec = self.space.mutate(&current.spec, &mut rng);
            let eval = self.evaluate(&candidate_spec)?;
            let current_energy = self.energy(&current.objectives, &weights);
            let candidate_energy = self.energy(&eval.objectives, &weights);
            let delta = candidate_energy - current_energy;
            let accept = if delta <= 0.0 {
                true
            } else {
                let global_step = (round * self.config.steps_per_round + step) as i32;
                let temperature =
                    self.config.initial_temperature * self.config.cooling.powi(global_step);
                let p = (-delta / temperature).exp();
                rng.gen::<f64>() < p
            };
            if accept {
                current = WalkState { spec: eval.spec.clone(), objectives: eval.objectives };
            }
            evals.push(eval);
        }
        Ok((current, evals))
    }

    /// Continues `state` until the configured round budget is spent.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation failure.
    pub fn resume(&self, mut state: ExploreState) -> Result<ExploreState, ExploreError> {
        while state.rounds_done < self.config.rounds {
            self.advance_round(&mut state)?;
        }
        Ok(state)
    }

    /// A full run: initial evaluations plus every configured round.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation failure.
    pub fn run(&self) -> Result<ExploreState, ExploreError> {
        self.resume(self.initial_state()?)
    }
}

/// Appends `eval` unless its content key is already archived.
fn push_dedup(archive: &mut Vec<Evaluated>, seen: &mut HashMap<u64, usize>, eval: Evaluated) {
    if let std::collections::hash_map::Entry::Vacant(slot) = seen.entry(eval.key) {
        slot.insert(archive.len());
        archive.push(eval);
    }
}

/// SplitMix64 finalizer: the engine's cheap pure mixing function.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpd_circuit::Circuit;

    fn demo_circuit() -> Circuit {
        let mut c = Circuit::new(6);
        for _ in 0..3 {
            c.cx(0, 1).cx(1, 2).cx(3, 4).cx(4, 5).cx(0, 3).cx(1, 4).cx(2, 5);
        }
        c.cx(0, 4).cx(1, 3).cx(1, 5).cx(2, 4);
        c
    }

    fn quick_explorer(seed: u64) -> Explorer {
        let config = ExploreConfig { seed, ..ExploreConfig::quick() };
        Explorer::new(ExploreSpace::new(demo_circuit(), config.max_aux), config).unwrap()
    }

    #[test]
    fn run_produces_a_nonempty_front_with_eff_full() {
        let explorer = quick_explorer(0);
        let state = explorer.run().unwrap();
        assert_eq!(state.rounds_done, explorer.config().rounds);
        assert!(!state.archive.is_empty());
        let front = state.front_indices();
        assert!(!front.is_empty());
        // Walk 0 starts at eff-full: it must be an evaluated point.
        let full = explorer.space().full_weighted_len();
        let eff_full = CandidateSpec::eff_full(full);
        assert!(
            state.archive.iter().any(|e| e.spec == eff_full),
            "eff-full missing from the archive"
        );
    }

    #[test]
    fn archive_keys_are_unique() {
        let state = quick_explorer(1).run().unwrap();
        let mut keys: Vec<u64> = state.archive.iter().map(|e| e.key).collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before, "archive contains duplicate content keys");
    }

    #[test]
    fn repeated_runs_are_identical() {
        let a = quick_explorer(7).run().unwrap();
        let b = quick_explorer(7).run().unwrap();
        assert_eq!(a, b);
        let c = quick_explorer(8).run().unwrap();
        assert_ne!(a.archive, c.archive, "different seeds should explore differently");
    }

    #[test]
    fn resume_mid_run_matches_uninterrupted() {
        let explorer = quick_explorer(3);
        let uninterrupted = explorer.run().unwrap();
        // Cut after the first round, then resume on a *fresh* engine
        // (empty caches), as a process restart would.
        let mut partial = explorer.initial_state().unwrap();
        explorer.advance_round(&mut partial).unwrap();
        let resumed = quick_explorer(3).resume(partial).unwrap();
        assert_eq!(uninterrupted, resumed);
    }

    #[test]
    fn cache_hits_accumulate() {
        let explorer = quick_explorer(2);
        let state = explorer.run().unwrap();
        // Evaluations happened, and memoization actually served repeats:
        // the dedup'd archive is smaller than the evaluation count, and
        // every one of those repeats must have been a yield-cache hit.
        assert!(explorer.cache().yields.misses() > 0);
        assert!(
            explorer.cache().yields.hits() > 0,
            "no memo hits: the content-keyed cache is not being consulted"
        );
        let evaluations = explorer.config().walks
            * (1 + explorer.config().rounds * explorer.config().steps_per_round);
        assert!(state.archive.len() <= evaluations);
    }

    #[test]
    fn out_of_range_aux_is_clamped_consistently() {
        // A spec asking for more auxiliary qubits than the space bounds
        // must evaluate exactly like the clamped spec — same content
        // key *and* same objectives — so the archive dedup can never
        // depend on which form evaluated first.
        let explorer = quick_explorer(0);
        let max = explorer.space().max_aux();
        let clamped = CandidateSpec {
            aux_qubits: max,
            ..CandidateSpec::eff_full(explorer.space().full_weighted_len())
        };
        let oversized = CandidateSpec { aux_qubits: max + 4, ..clamped.clone() };
        let a = explorer.evaluate(&clamped).unwrap();
        let b = explorer.evaluate(&oversized).unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(a.objectives, b.objectives);
    }

    #[test]
    fn front_is_actually_nondominated() {
        let state = quick_explorer(5).run().unwrap();
        let front = state.front();
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    assert!(
                        !qpd_core::dominates_nd(
                            &a.objectives.as_maximization(),
                            &b.objectives.as_maximization()
                        ),
                        "front point {} dominates front point {}",
                        a.arch_name,
                        b.arch_name
                    );
                }
            }
        }
    }
}
