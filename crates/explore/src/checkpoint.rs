//! Checkpoint/resume: the run state as a hand-rolled JSON document.
//!
//! The serde shim's derives are no-ops, so persistence goes through
//! [`crate::json`] instead. Everything that must round-trip exactly is
//! stored losslessly: counts as plain integers, `u64` keys and seeds as
//! decimal strings (beyond f64-exact range), and `f64` knobs with
//! Rust's shortest-round-trip formatting. Rendering is deterministic —
//! the determinism tests compare checkpoint *bytes* across thread
//! counts — and a resumed run continues the walk streams exactly where
//! the file says they stopped.
//!
//! Schema v2 ([`SCHEMA`]) extends the config with the v2 engine knobs
//! (acceptance mode, recombination, screening divisor, ε). v1 documents
//! ([`SCHEMA_V1`]) still parse: their config migrates through
//! [`ExploreConfig::v1_compat`], so a resumed PR 3 run continues with
//! the scalarized acceptance it was started under.
//!
//! Schema v3 ([`SCHEMA_V3`]) adds the hardware-sweep config knob and a
//! display-only per-stage cache hit-rate block. The writer emits the v3
//! tag **only when a v3 feature is present** (a non-default sweep, a
//! non-default spec family, or recorded hit rates); a default-config
//! checkpoint renders the exact v2 bytes it always did, and v2 readers
//! of such documents never see an unknown field.

use std::path::{Path, PathBuf};

use crate::engine::{
    pareto_indices, AcceptanceMode, ExploreConfig, ExploreError, ExploreState, HardwareSweep,
    Provenance, ShardSpec, ShardState, WalkState,
};
use crate::json::Json;
use crate::spec::{CandidateSpec, Evaluated, Objectives};
use qpd_core::StageCacheStats;

/// On-disk schema tag of feature-less documents; see [`SCHEMA_V3`].
pub const SCHEMA: &str = "qpd-explore-checkpoint/2";

/// The v3 schema tag, written only when a document actually carries a
/// v3 feature (hardware sweep or stage hit rates) so default-config
/// checkpoints stay byte-identical to the v2 era.
pub const SCHEMA_V3: &str = "qpd-explore-checkpoint/3";

/// The PR 3 schema: no acceptance/recombination/screening fields.
/// [`Checkpoint::parse`] still reads it, migrating the config onto
/// [`ExploreConfig::v1_compat`] so a resumed v1 run keeps the scalarized
/// acceptance it started with.
pub const SCHEMA_V1: &str = "qpd-explore-checkpoint/1";

/// Display-only per-stage cache counters recorded at checkpoint time
/// (schema v3). Resume never reads them — a resumed engine starts with
/// cold counters — they exist so a human (or the CLI's `--hit-rates`
/// report) can see how effective the stage caches were when the
/// checkpoint was cut.
///
/// Unlike everything else in a checkpoint, the hit/miss counters
/// describe the run's *actual* cache traffic, which is
/// scheduling-dependent: two workers first-missing the same key record
/// (miss, miss) where one worker visiting it twice records (miss, hit).
/// Totals and every piece of search state stay bit-identical across
/// `QPD_THREADS`; the hit/miss split is only byte-stable at a fixed
/// thread count. That is the reason this block is display-only and
/// excluded from [`Checkpoint::parse`]'s contribution to resumed state.
///
/// `unique_misses` is the exception: it counts **distinct** content
/// keys computed ([`qpd_core::StageCache::unique_misses`]), which a
/// fixed workload pins regardless of scheduling — the thread-stable
/// figure to quote when comparing runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageHitRate {
    /// Stage name ([`qpd_core::StageKind::name`]).
    pub stage: String,
    /// Lookups served from the table.
    pub hits: u64,
    /// Lookups that computed (scheduling-dependent).
    pub misses: u64,
    /// Distinct keys computed (thread-stable).
    pub unique_misses: u64,
}

impl StageHitRate {
    /// Snapshot of live stage counters, pipeline order.
    pub fn from_stats(stats: &[StageCacheStats]) -> Vec<StageHitRate> {
        stats
            .iter()
            .map(|s| StageHitRate {
                stage: s.kind.name().to_string(),
                hits: s.hits,
                misses: s.misses,
                unique_misses: s.unique_misses,
            })
            .collect()
    }

    /// Fraction of lookups served from cache (`0.0` before any lookup).
    pub fn rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The shard block of a shard-tagged checkpoint (schema v3): which
/// slice of the run the document holds, plus per-archive-entry
/// [`Provenance`] so [`crate::merge`] can interleave shard archives in
/// single-run insertion order. A document without this block is a whole
/// run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    /// Which slice of the run this document is.
    pub spec: ShardSpec,
    /// `prov[i]` is where `state.archive[i]` came from; lengths match.
    pub prov: Vec<Provenance>,
}

/// A complete, resumable snapshot of one exploration run.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Run label (the profiled benchmark's name, typically); also names
    /// the default checkpoint file.
    pub run: String,
    /// The run's configuration — a resumed run must re-use it.
    pub config: ExploreConfig,
    /// The search state after `state.rounds_done` rounds.
    pub state: ExploreState,
    /// Display-only stage-cache counters (schema v3). Empty means
    /// "not recorded" and keeps the document on the v2 byte layout.
    pub stage_hit_rates: Vec<StageHitRate>,
    /// Present iff this document is one shard of a sharded run (schema
    /// v3): `state.walks` then holds only the shard's walks (ascending
    /// global index) and `state.archive` only its evaluations.
    pub shard: Option<ShardMeta>,
}

impl Checkpoint {
    /// The conventional file name for a run label: `EXPLORE_<run>.json`.
    pub fn file_name(run: &str) -> String {
        format!("EXPLORE_{run}.json")
    }

    /// The conventional file name of one shard of a run:
    /// `EXPLORE_<run>_shard<i>of<N>.json` — distinct per shard, so N
    /// shard processes sharing an output directory never collide, and
    /// distinct from the whole-run name, so a merge written next to its
    /// inputs never overwrites one.
    pub fn shard_file_name(run: &str, spec: ShardSpec) -> String {
        format!("EXPLORE_{run}_shard{}of{}.json", spec.index, spec.of)
    }

    /// This document's conventional file name: the shard form when
    /// shard-tagged, the whole-run form otherwise.
    pub fn file_label(&self) -> String {
        match &self.shard {
            Some(meta) => Self::shard_file_name(&self.run, meta.spec),
            None => Self::file_name(&self.run),
        }
    }

    /// Packages one shard's state as a shard-tagged checkpoint.
    pub fn from_shard(
        run: &str,
        config: ExploreConfig,
        shard: &ShardState,
        stage_hit_rates: Vec<StageHitRate>,
    ) -> Checkpoint {
        Checkpoint {
            run: run.to_string(),
            config,
            state: shard.state.clone(),
            stage_hit_rates,
            shard: Some(ShardMeta { spec: shard.spec, prov: shard.prov.clone() }),
        }
    }

    /// Reassembles the [`ShardState`] of a shard-tagged document;
    /// `None` for whole-run documents.
    pub fn to_shard_state(&self) -> Option<ShardState> {
        let meta = self.shard.as_ref()?;
        Some(ShardState { spec: meta.spec, state: self.state.clone(), prov: meta.prov.clone() })
    }

    /// Whether the document carries any schema-v3 feature. Feature-less
    /// checkpoints render under the v2 tag with the exact v2 bytes.
    fn has_v3_features(&self) -> bool {
        !self.config.hardware.is_default()
            || self.config.fine_recombine
            || !self.stage_hit_rates.is_empty()
            || self.shard.is_some()
            || self.state.walks.iter().any(|w| !w.spec.hardware.is_default())
            || self.state.archive.iter().any(|e| !e.spec.hardware.is_default())
    }

    /// Renders the checkpoint document (stable bytes: insertion-ordered
    /// keys, shortest-round-trip floats).
    pub fn render(&self) -> String {
        let front_keys: Vec<Json> = pareto_indices(&self.state.archive)
            .into_iter()
            .map(|i| Json::str(self.state.archive[i].key.to_string()))
            .collect();
        let schema = if self.has_v3_features() { SCHEMA_V3 } else { SCHEMA };
        let mut fields = vec![("schema", Json::str(schema)), ("run", Json::str(&self.run))];
        if let Some(meta) = &self.shard {
            // Provenance triples render as compact `[block, walk, step]`
            // rows — all three are small counters, exact in f64.
            let prov: Vec<Json> = meta
                .prov
                .iter()
                .map(|p| Json::Raw(format!("[{}, {}, {}]", p.block, p.walk, p.step)))
                .collect();
            fields.push((
                "shard",
                Json::obj([
                    ("index", Json::int(meta.spec.index as u64)),
                    ("of", Json::int(meta.spec.of as u64)),
                    ("prov", Json::Arr(prov)),
                ]),
            ));
        }
        fields.extend([
            ("config", config_to_json(&self.config)),
            ("rounds_done", Json::int(self.state.rounds_done as u64)),
            (
                "walks",
                Json::Arr(
                    self.state
                        .walks
                        .iter()
                        .map(|w| {
                            Json::obj([
                                ("spec", w.spec.to_json()),
                                ("objectives", w.objectives.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            // Derived from the archive; stored for human readers and
            // recomputed (not trusted) on load.
            ("front", Json::Arr(front_keys)),
            ("archive", Json::Arr(self.state.archive.iter().map(Evaluated::to_json).collect())),
        ]);
        if !self.stage_hit_rates.is_empty() {
            fields.push((
                "stage_hit_rates",
                Json::Arr(
                    self.stage_hit_rates
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("stage", Json::str(&s.stage)),
                                ("hits", Json::int(s.hits)),
                                ("misses", Json::int(s.misses)),
                                ("unique_misses", Json::int(s.unique_misses)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Json::obj(fields).render()
    }

    /// Writes the document under `dir` at its conventional file name
    /// ([`Self::file_label`]), returning the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(self.file_label());
        std::fs::write(&path, self.render())?;
        Ok(path)
    }

    /// Parses a checkpoint document, accepting the current schema and
    /// migrating [`SCHEMA_V1`] documents transparently (see
    /// [`Checkpoint::parse_versioned`] to learn which one was read).
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::Checkpoint`] on malformed input.
    pub fn parse(text: &str) -> Result<Checkpoint, ExploreError> {
        Self::parse_versioned(text).map(|(cp, _)| cp)
    }

    /// Like [`Checkpoint::parse`], also reporting the schema version the
    /// document carried (`1` documents are migrated to the in-memory v2
    /// form: the missing config fields take their scalarized-era
    /// defaults via [`ExploreConfig::v1_compat`], so resuming continues
    /// the run the way it started).
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::Checkpoint`] on malformed input or an
    /// unknown schema tag.
    pub fn parse_versioned(text: &str) -> Result<(Checkpoint, u32), ExploreError> {
        let bad = |what: &str| ExploreError::Checkpoint(what.to_string());
        let doc = Json::parse(text).map_err(|e| ExploreError::Checkpoint(e.to_string()))?;
        let version = match doc.get("schema").and_then(Json::as_str) {
            Some(SCHEMA_V3) => 3,
            Some(SCHEMA) => 2,
            Some(SCHEMA_V1) => 1,
            Some(other) => {
                return Err(ExploreError::Checkpoint(format!("unsupported schema `{other}`")))
            }
            None => return Err(bad("missing schema")),
        };
        let run = doc.get("run").and_then(Json::as_str).ok_or_else(|| bad("missing run"))?;
        let config_json = doc.get("config").ok_or_else(|| bad("missing config"))?;
        let config = match version {
            2 | 3 => config_from_json(config_json).ok_or_else(|| bad("malformed config"))?,
            _ => config_from_json_v1(config_json).ok_or_else(|| bad("malformed v1 config"))?,
        };
        let rounds_done = doc
            .get("rounds_done")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing rounds_done"))? as usize;
        let mut walks = Vec::new();
        for w in doc.get("walks").and_then(Json::as_arr).ok_or_else(|| bad("missing walks"))? {
            let spec = w
                .get("spec")
                .and_then(CandidateSpec::from_json)
                .ok_or_else(|| bad("malformed walk spec"))?;
            let objectives = w
                .get("objectives")
                .and_then(Objectives::from_json)
                .ok_or_else(|| bad("malformed walk objectives"))?;
            walks.push(WalkState { spec, objectives });
        }
        let mut archive = Vec::new();
        for e in doc.get("archive").and_then(Json::as_arr).ok_or_else(|| bad("missing archive"))? {
            archive.push(Evaluated::from_json(e).ok_or_else(|| bad("malformed archive entry"))?);
        }
        let shard = match doc.get("shard") {
            None => None,
            Some(block) => {
                let index = block
                    .get("index")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("malformed shard index"))?
                    as usize;
                let of = block
                    .get("of")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("malformed shard count"))? as usize;
                let spec = ShardSpec::new(index, of).map_err(ExploreError::Checkpoint)?;
                let mut prov = Vec::new();
                for row in block
                    .get("prov")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("missing shard provenance"))?
                {
                    let row = row.as_arr().ok_or_else(|| bad("malformed provenance row"))?;
                    let [block, walk, step] = row else {
                        return Err(bad("provenance row is not a triple"));
                    };
                    prov.push(Provenance {
                        block: block.as_u64().ok_or_else(|| bad("malformed provenance row"))?,
                        walk: walk.as_u64().ok_or_else(|| bad("malformed provenance row"))?,
                        step: step.as_u64().ok_or_else(|| bad("malformed provenance row"))?,
                    });
                }
                if prov.len() != archive.len() {
                    return Err(bad("shard provenance does not match archive length"));
                }
                Some(ShardMeta { spec, prov })
            }
        };
        // A whole-run document holds every walk; a shard document holds
        // exactly the walks its slice owns.
        let expected_walks = match &shard {
            None => config.walks,
            Some(meta) => meta.spec.walk_ids(config.walks).len(),
        };
        if walks.len() != expected_walks {
            return Err(bad("walk count does not match config"));
        }
        // Optional in every version (pre-v3 documents simply lack it).
        let mut stage_hit_rates = Vec::new();
        if let Some(rates) = doc.get("stage_hit_rates").and_then(Json::as_arr) {
            for r in rates {
                stage_hit_rates.push(StageHitRate {
                    stage: r
                        .get("stage")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("malformed stage hit rate"))?
                        .to_string(),
                    hits: r
                        .get("hits")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("malformed stage hit rate"))?,
                    misses: r
                        .get("misses")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("malformed stage hit rate"))?,
                    // Absent in documents written before the counter
                    // existed: zero, the "not recorded" value.
                    unique_misses: r.get("unique_misses").and_then(Json::as_u64).unwrap_or(0),
                });
            }
        }
        Ok((
            Checkpoint {
                run: run.to_string(),
                config,
                state: ExploreState { rounds_done, walks, archive },
                stage_hit_rates,
                shard,
            },
            version,
        ))
    }
}

fn config_to_json(c: &ExploreConfig) -> Json {
    let mut pairs = vec![
        ("walks", Json::int(c.walks as u64)),
        ("rounds", Json::int(c.rounds as u64)),
        ("steps_per_round", Json::int(c.steps_per_round as u64)),
        ("seed", Json::str(c.seed.to_string())),
        ("max_aux", Json::int(c.max_aux as u64)),
        ("alloc_trials", Json::int(c.alloc_trials as u64)),
        ("yield_trials", Json::int(c.yield_trials)),
        ("sigma_ghz", Json::num(c.sigma_ghz)),
        ("initial_temperature", Json::num(c.initial_temperature)),
        ("cooling", Json::num(c.cooling)),
        ("acceptance", Json::str(c.acceptance.as_str())),
        ("recombine", Json::Bool(c.recombine)),
        ("screen_divisor", Json::int(c.screen_divisor)),
        ("epsilon", Json::num(c.epsilon)),
    ];
    // Written only for non-default sweeps: a default-family config
    // renders the exact bytes the pre-hardware schema produced (and the
    // document keeps the v2 tag).
    if !c.hardware.is_default() {
        pairs.push(("hardware", Json::str(c.hardware.as_str())));
    }
    // Written only when the finer exchange blocks are on (the flag
    // changes the recombination RNG streams, so a resumed run must know
    // about it); a default config renders the exact pre-flag bytes, and
    // pre-flag documents parse as coarse-block.
    if c.fine_recombine {
        pairs.push(("fine_recombine", Json::Bool(true)));
    }
    // Written only when pruning is on: an uncapped config renders the
    // exact bytes the pre-pruning schema produced, and pre-pruning v2
    // documents parse as uncapped. `Some(0)` means "no pruning" just
    // like `None` (see `ExploreConfig::archive_cap`), so it renders the
    // same way, keeping render/parse coherent.
    if let Some(cap) = c.archive_cap.filter(|&cap| cap > 0) {
        pairs.push(("archive_cap", Json::int(cap as u64)));
    }
    Json::obj(pairs)
}

/// The fields shared by both schema versions.
fn config_from_json_v1(json: &Json) -> Option<ExploreConfig> {
    Some(
        ExploreConfig {
            walks: json.get("walks")?.as_u64()? as usize,
            rounds: json.get("rounds")?.as_u64()? as usize,
            steps_per_round: json.get("steps_per_round")?.as_u64()? as usize,
            seed: json.get("seed")?.as_str()?.parse().ok()?,
            max_aux: json.get("max_aux")?.as_u64()? as usize,
            alloc_trials: json.get("alloc_trials")?.as_u64()? as usize,
            yield_trials: json.get("yield_trials")?.as_u64()?,
            sigma_ghz: json.get("sigma_ghz")?.as_f64()?,
            initial_temperature: json.get("initial_temperature")?.as_f64()?,
            cooling: json.get("cooling")?.as_f64()?,
            ..ExploreConfig::default()
        }
        .v1_compat(),
    )
}

fn config_from_json(json: &Json) -> Option<ExploreConfig> {
    // Absent in pre-pruning v2 documents (and in uncapped renders):
    // both mean an unbounded archive. A present value must be numeric.
    let archive_cap = match json.get("archive_cap") {
        None => None,
        Some(v) => Some(v.as_u64()? as usize).filter(|&cap| cap > 0),
    };
    // Absent in v2 documents and in default-sweep v3 renders: both mean
    // the default (pinned to the default family).
    let hardware = match json.get("hardware") {
        None => HardwareSweep::default(),
        Some(tag) => HardwareSweep::parse(tag.as_str()?)?,
    };
    // Absent in pre-flag documents and in coarse-block renders: both
    // mean the coarse exchange blocks.
    let fine_recombine = match json.get("fine_recombine") {
        None => false,
        Some(v) => v.as_bool()?,
    };
    Some(ExploreConfig {
        acceptance: AcceptanceMode::from_str_tag(json.get("acceptance")?.as_str()?)?,
        recombine: json.get("recombine")?.as_bool()?,
        fine_recombine,
        screen_divisor: json.get("screen_divisor")?.as_u64()?,
        epsilon: json.get("epsilon")?.as_f64()?,
        hardware,
        archive_cap,
        ..config_from_json_v1(json)?
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AcceptanceMode;
    use crate::spec::BusSpec;
    use qpd_core::FrequencyStrategy;
    use qpd_topology::Square;
    use qpd_yield::HardwareFamily;

    fn sample_checkpoint() -> Checkpoint {
        let objectives = Objectives {
            yield_successes: 321,
            yield_trials: 600,
            total_gates: 140,
            routed_depth: 77,
            hardware_cost: 2,
        };
        let spec = CandidateSpec {
            bus: BusSpec::Explicit(vec![Square::new(0, 1), Square::new(2, 2)]),
            frequency: FrequencyStrategy::Optimized,
            aux_qubits: 1,
            placement: crate::spec::PlacementVariant::Transposed,
            hardware: HardwareFamily::FixedFrequencyTransmon,
        };
        Checkpoint {
            run: "sym6_145".into(),
            config: ExploreConfig { walks: 1, seed: u64::MAX - 3, ..ExploreConfig::quick() },
            state: ExploreState {
                rounds_done: 1,
                walks: vec![WalkState { spec: spec.clone(), objectives }],
                archive: vec![Evaluated {
                    spec,
                    arch_name: "eff-7q-b2".into(),
                    key: 0xdead_beef_dead_beef,
                    objectives,
                }],
            },
            stage_hit_rates: Vec::new(),
            shard: None,
        }
    }

    #[test]
    fn checkpoint_round_trips_exactly() {
        let cp = sample_checkpoint();
        let bytes = cp.render();
        let back = Checkpoint::parse(&bytes).unwrap();
        assert_eq!(back, cp);
        // Render is a fixpoint: parse(render(x)).render() == render(x).
        assert_eq!(back.render(), bytes);
    }

    #[test]
    fn file_name_convention() {
        assert_eq!(Checkpoint::file_name("qft_16"), "EXPLORE_qft_16.json");
    }

    #[test]
    fn sigma_survives_exactly() {
        let mut cp = sample_checkpoint();
        cp.config.sigma_ghz = 0.1 + 0.2; // deliberately non-representable nicely
        let back = Checkpoint::parse(&cp.render()).unwrap();
        assert_eq!(back.config.sigma_ghz.to_bits(), cp.config.sigma_ghz.to_bits());
    }

    #[test]
    fn rejects_wrong_schema_and_garbage() {
        assert!(matches!(
            Checkpoint::parse("{\"schema\": \"other/9\"}"),
            Err(ExploreError::Checkpoint(_))
        ));
        assert!(Checkpoint::parse("not json").is_err());
        // Walk count mismatch is caught.
        let mut cp = sample_checkpoint();
        cp.config.walks = 5;
        assert!(matches!(
            Checkpoint::parse(&cp.render()),
            Err(ExploreError::Checkpoint(m)) if m.contains("walk count")
        ));
    }

    #[test]
    fn v1_documents_parse_and_migrate_to_scalarized_compat() {
        // A v2 render with the v1 tag and the v2-only config fields
        // stripped is exactly what PR 3 wrote.
        let cp = sample_checkpoint();
        let v1_text = cp
            .render()
            .replace(SCHEMA, SCHEMA_V1)
            .lines()
            .filter(|l| {
                !["\"acceptance\"", "\"recombine\"", "\"screen_divisor\"", "\"epsilon\""]
                    .iter()
                    .any(|k| l.trim_start().starts_with(k))
            })
            .collect::<Vec<_>>()
            .join("\n")
            // The stripped fields were the config object's tail: drop
            // the now-dangling comma on `cooling`.
            .replace("\"cooling\": 0.92,", "\"cooling\": 0.92");
        let (migrated, version) = Checkpoint::parse_versioned(&v1_text).unwrap();
        assert_eq!(version, 1);
        assert_eq!(migrated.config.acceptance, AcceptanceMode::Scalarized);
        assert!(!migrated.config.recombine);
        assert_eq!(migrated.config.screen_divisor, 1);
        assert_eq!(migrated.state, cp.state);
        // A migrated checkpoint re-renders as v2 and round-trips.
        let rerendered = migrated.render();
        assert!(rerendered.contains(SCHEMA));
        let (back, version2) = Checkpoint::parse_versioned(&rerendered).unwrap();
        assert_eq!(version2, 2);
        assert_eq!(back, migrated);
    }

    #[test]
    fn archive_cap_round_trips_and_is_optional() {
        // A capped config round-trips…
        let mut cp = sample_checkpoint();
        cp.config.archive_cap = Some(40);
        let back = Checkpoint::parse(&cp.render()).unwrap();
        assert_eq!(back.config.archive_cap, Some(40));
        assert_eq!(back.render(), cp.render());
        // …an uncapped config renders without the field (byte
        // compatibility with pre-pruning v2 documents)…
        cp.config.archive_cap = None;
        let text = cp.render();
        assert!(!text.contains("archive_cap"));
        // …and a pre-pruning v2 document (no field) parses as uncapped.
        assert_eq!(Checkpoint::parse(&text).unwrap().config.archive_cap, None);
        // `Some(0)` means "no pruning" and renders like `None`, so a
        // resumed run can never diverge from the live one.
        cp.config.archive_cap = Some(0);
        let zero = cp.render();
        assert!(!zero.contains("archive_cap"));
        assert_eq!(Checkpoint::parse(&zero).unwrap().config.archive_cap, None);
    }

    #[test]
    fn fine_recombine_round_trips_and_gates_the_v3_tag() {
        // Off (the default): no field, v2 bytes — existing checkpoints
        // stay byte-identical.
        let mut cp = sample_checkpoint();
        let coarse = cp.render();
        assert!(!coarse.contains("fine_recombine"));
        assert!(coarse.contains(SCHEMA));
        assert!(!Checkpoint::parse(&coarse).unwrap().config.fine_recombine);
        // On: the field appears, the document upgrades to v3 (the flag
        // changes RNG streams, so old readers must fail loudly), and it
        // round-trips.
        cp.config.fine_recombine = true;
        let fine = cp.render();
        assert!(fine.contains("\"fine_recombine\": true"));
        assert!(fine.contains(SCHEMA_V3));
        let (back, version) = Checkpoint::parse_versioned(&fine).unwrap();
        assert_eq!(version, 3);
        assert_eq!(back, cp);
        assert_eq!(back.render(), fine);
    }

    #[test]
    fn current_documents_report_version_2() {
        let cp = sample_checkpoint();
        let (_, version) = Checkpoint::parse_versioned(&cp.render()).unwrap();
        assert_eq!(version, 2);
    }

    #[test]
    fn default_documents_carry_no_v3_markers() {
        // The hardware layer must be invisible to feature-less
        // checkpoints: no v3 tag, no hardware field, no hit rates — the
        // exact v2 byte layout.
        let text = sample_checkpoint().render();
        assert!(text.contains(SCHEMA));
        assert!(!text.contains(SCHEMA_V3));
        // ("hardware_cost" is a v1 objectives field; the v3 markers are
        // the exact "hardware" key and the hit-rate block.)
        assert!(!text.contains("\"hardware\":"));
        assert!(!text.contains("stage_hit_rates"));
    }

    #[test]
    fn hardware_sweep_upgrades_the_schema_and_round_trips() {
        let mut cp = sample_checkpoint();
        cp.config.hardware = HardwareSweep::All;
        let text = cp.render();
        assert!(text.contains(SCHEMA_V3));
        assert!(text.contains("\"hardware\": \"all\""));
        let (back, version) = Checkpoint::parse_versioned(&text).unwrap();
        assert_eq!(version, 3);
        assert_eq!(back, cp);
        assert_eq!(back.render(), text);
        // Pinned non-default sweeps carry the family tag.
        cp.config.hardware = HardwareSweep::Pinned(HardwareFamily::HeavyHex);
        let pinned = cp.render();
        assert!(pinned.contains("\"hardware\": \"heavyhex\""));
        assert_eq!(Checkpoint::parse(&pinned).unwrap(), cp);
    }

    #[test]
    fn non_default_spec_family_upgrades_the_schema() {
        // Even under a default sweep (hand-edited or future configs), a
        // non-default family in the state forces the v3 tag so old
        // readers fail loudly instead of resuming the wrong family.
        let mut cp = sample_checkpoint();
        cp.state.walks[0].spec.hardware = HardwareFamily::TunableCoupler;
        cp.state.archive[0].spec.hardware = HardwareFamily::TunableCoupler;
        let text = cp.render();
        assert!(text.contains(SCHEMA_V3));
        assert_eq!(Checkpoint::parse(&text).unwrap(), cp);
    }

    #[test]
    fn stage_hit_rates_are_display_only_and_round_trip() {
        let mut cp = sample_checkpoint();
        cp.stage_hit_rates = vec![
            StageHitRate { stage: "frequency".into(), hits: 30, misses: 10, unique_misses: 8 },
            StageHitRate { stage: "yield".into(), hits: 0, misses: 0, unique_misses: 0 },
        ];
        let text = cp.render();
        assert!(text.contains(SCHEMA_V3));
        assert!(text.contains("stage_hit_rates"));
        assert!(text.contains("unique_misses"));
        let back = Checkpoint::parse(&text).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.render(), text);
        assert!((back.stage_hit_rates[0].rate() - 0.75).abs() < 1e-12);
        assert_eq!(back.stage_hit_rates[1].rate(), 0.0);
        // Documents written before the deterministic counter existed
        // (no `unique_misses` key) parse with the "not recorded" zero.
        let legacy = text
            .lines()
            .filter(|l| !l.trim_start().starts_with("\"unique_misses\""))
            .collect::<Vec<_>>()
            .join("\n")
            .replace("\"misses\": 10,", "\"misses\": 10")
            .replace("\"misses\": 0,", "\"misses\": 0");
        let old = Checkpoint::parse(&legacy).unwrap();
        assert_eq!(old.stage_hit_rates[0].unique_misses, 0);
        // Display-only: a document without the block parses with empty
        // counters.
        cp.stage_hit_rates.clear();
        let clean = cp.render();
        assert!(!clean.contains("stage_hit_rates"));
        assert!(Checkpoint::parse(&clean).unwrap().stage_hit_rates.is_empty());
    }

    /// A 1-walk shard of a 2-shard run around the sample state: walk 0
    /// belongs to shard 0/2, so the sample's single walk fits.
    fn sample_shard_checkpoint() -> Checkpoint {
        let mut cp = sample_checkpoint();
        cp.shard = Some(ShardMeta {
            spec: ShardSpec { index: 0, of: 2 },
            prov: vec![Provenance { block: 0, walk: 0, step: 0 }],
        });
        cp.config.walks = 2;
        cp
    }

    #[test]
    fn shard_checkpoints_round_trip_under_the_v3_tag() {
        let cp = sample_shard_checkpoint();
        let text = cp.render();
        assert!(text.contains(SCHEMA_V3), "shard metadata is a v3 feature");
        assert!(text.contains("\"shard\""));
        assert!(text.contains("[0, 0, 0]"), "provenance rows render compactly: {text}");
        let (back, version) = Checkpoint::parse_versioned(&text).unwrap();
        assert_eq!(version, 3);
        assert_eq!(back, cp);
        assert_eq!(back.render(), text);
        // The shard state reassembles.
        let shard = back.to_shard_state().unwrap();
        assert_eq!(shard.spec, ShardSpec { index: 0, of: 2 });
        assert_eq!(shard.prov.len(), shard.state.archive.len());
        // Whole-run documents carry no shard block and reassemble none.
        let whole = sample_checkpoint();
        assert!(!whole.render().contains("\"shard\""));
        assert!(whole.to_shard_state().is_none());
    }

    #[test]
    fn shard_documents_validate_walk_and_provenance_counts() {
        // A shard of a 2-walk run owning walk 0 must hold exactly one
        // walk; claiming the whole run's walk count fails.
        let mut cp = sample_shard_checkpoint();
        cp.config.walks = 1; // shard 0/2 of 1 walk still owns walk 0 — ok
        assert!(Checkpoint::parse(&cp.render()).is_ok());
        let text = sample_shard_checkpoint().render().replace("\"walks\": 2,", "\"walks\": 4,");
        assert!(matches!(
            Checkpoint::parse(&text),
            Err(ExploreError::Checkpoint(m)) if m.contains("walk count")
        ));
        // Provenance must stay parallel to the archive.
        let dropped = sample_shard_checkpoint().render().replace("[0, 0, 0]", "");
        assert!(Checkpoint::parse(&dropped).is_err());
        // An out-of-range shard index is rejected.
        let bad_index =
            sample_shard_checkpoint().render().replace("\"index\": 0,", "\"index\": 2,");
        assert!(Checkpoint::parse(&bad_index).is_err());
    }

    #[test]
    fn shard_file_names_are_distinct_per_shard_and_from_the_run() {
        let spec = ShardSpec { index: 1, of: 4 };
        assert_eq!(Checkpoint::shard_file_name("qft_16", spec), "EXPLORE_qft_16_shard1of4.json");
        let cp = sample_shard_checkpoint();
        assert_eq!(cp.file_label(), "EXPLORE_sym6_145_shard0of2.json");
        assert_eq!(sample_checkpoint().file_label(), "EXPLORE_sym6_145.json");
    }

    #[test]
    fn write_creates_the_conventional_file() {
        let dir = std::env::temp_dir().join("qpd_explore_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let cp = sample_checkpoint();
        let path = cp.write(&dir).unwrap();
        assert!(path.ends_with("EXPLORE_sym6_145.json"));
        let back = Checkpoint::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, cp);
        std::fs::remove_file(path).ok();
    }
}
