//! Content-keyed memoization of candidate evaluations.
//!
//! The search revisits architectures constantly — walks cross paths,
//! swap moves undo themselves, the weighted prefix reappears after a
//! layout toggle. Every evaluation is deterministic in its content key,
//! so a repeated candidate is **never** re-simulated: the yield memo
//! keys on [`qpd_yield::YieldSimulator::content_key`] (structure +
//! designed frequencies + simulator settings) and the routing memo keys
//! on the coupling structure alone (routing never reads frequencies).
//!
//! Sharing the table across worker threads cannot break determinism:
//! whichever walk inserts first, the value is the same one every other
//! walk would have computed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A shared memo table from content key to value, with hit/miss
/// counters for throughput reporting.
#[derive(Debug, Default)]
pub struct Memo<V: Clone> {
    table: Mutex<HashMap<u64, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V: Clone> Memo<V> {
    /// An empty table.
    pub fn new() -> Self {
        Memo {
            table: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The cached value for `key`, counting a hit when present.
    pub fn get(&self, key: u64) -> Option<V> {
        let found = self.table.lock().expect("memo poisoned").get(&key).cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Records a freshly computed value, counting a miss. The value must
    /// be a pure function of the key's content — that is what makes
    /// cross-thread sharing deterministic: two threads may race to
    /// compute the same key, but both produce the identical value.
    pub fn insert(&self, key: u64, value: V) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.table.lock().expect("memo poisoned").entry(key).or_insert(value);
    }

    /// The value for `key`, computing and inserting it on first demand
    /// (compute runs outside the lock: evaluations are expensive and fan
    /// out onto the same worker pool).
    pub fn get_or_insert_with(&self, key: u64, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(key) {
            return v;
        }
        let v = compute();
        self.insert(key, v.clone());
        v
    }

    /// Number of lookups served from the table.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to compute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct keys stored.
    pub fn len(&self) -> usize {
        self.table.lock().expect("memo poisoned").len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every stored value; the counters keep accumulating.
    pub fn clear(&self) {
        self.table.lock().expect("memo poisoned").clear();
    }
}

/// The two memo tables one exploration run shares across its walks.
#[derive(Debug, Default)]
pub struct EvalCache {
    /// Yield estimates: `(successes, trials)` by yield content key.
    pub yields: Memo<(u64, u64)>,
    /// Routing results: `(total_gates, routed_depth)` by topology key.
    pub routes: Memo<(u64, u64)>,
}

impl EvalCache {
    /// Empty caches.
    pub fn new() -> Self {
        EvalCache::default()
    }

    /// Drops every stored value (hit/miss counters keep accumulating).
    /// `bench_snapshot`'s cold-cache kernel uses this to re-measure
    /// uncached evaluation without rebuilding the engine.
    pub fn clear(&self) {
        self.yields.clear();
        self.routes.clear();
    }
}

// The routing (topology-only) keys use the same FNV-1a hasher the yield
// content keys are built from.
pub use qpd_yield::Fnv64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memo_computes_once_per_key() {
        let memo: Memo<u64> = Memo::new();
        let mut calls = 0;
        for _ in 0..3 {
            let v = memo.get_or_insert_with(42, || {
                calls += 1;
                7
            });
            assert_eq!(v, 7);
        }
        assert_eq!(calls, 1);
        assert_eq!(memo.hits(), 2);
        assert_eq!(memo.misses(), 1);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn distinct_keys_are_distinct_entries() {
        let memo: Memo<u64> = Memo::new();
        assert_eq!(memo.get_or_insert_with(1, || 10), 10);
        assert_eq!(memo.get_or_insert_with(2, || 20), 20);
        assert_eq!(memo.len(), 2);
        assert!(!memo.is_empty());
    }

    #[test]
    fn clear_drops_values_not_counters() {
        let memo: Memo<u64> = Memo::new();
        memo.insert(1, 10);
        assert_eq!(memo.len(), 1);
        memo.clear();
        assert!(memo.is_empty());
        assert_eq!(memo.misses(), 1, "counters survive a clear");
        // A cleared key recomputes.
        assert_eq!(memo.get(1), None);
    }

    #[test]
    fn fnv_is_order_sensitive_and_stable() {
        let mut a = Fnv64::new();
        a.push(1);
        a.push(2);
        let mut b = Fnv64::new();
        b.push(2);
        b.push(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv64::new();
        c.push(1);
        c.push(2);
        assert_eq!(a.finish(), c.finish());
    }
}
