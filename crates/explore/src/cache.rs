//! The downstream stages of the design cascade — routing and yield —
//! and the per-stage caches one exploration run shares across walks.
//!
//! Since the stage-graph refactor this module no longer owns a memo
//! implementation: the tables are [`qpd_core::StageCache`]s (bounded by
//! `QPD_MEMO_CAP`, deterministic second-chance eviction), and the
//! evaluation pipeline is expressed as [`qpd_core::Stage`]s:
//!
//! - placement and bus insertion (square perturbations included) are
//!   served by [`crate::space::ExploreSpace`]'s precomputed layouts — a
//!   perfect, always-warm cache over the small `(variant, aux)` grid;
//! - frequency allocation + assembly run through the shared
//!   [`qpd_core::StagePlan`] of the explorer's [`qpd_core::DesignFlow`];
//! - [`RouteStage`] and [`YieldStage`] (this module) run through
//!   [`StageCaches`]. **Screening is the same yield stage at a reduced
//!   trial budget** — the trial count is part of the content key, so
//!   screened and full-fidelity results never collide.
//!
//! Sharing the tables across worker threads cannot break determinism:
//! every stage is a pure function of its content key, so whichever walk
//! inserts first, the value is the one every other walk would have
//! computed — and an evicted entry is recomputed, never changed.

use qpd_circuit::Circuit;
use qpd_core::{Stage, StageCache, StageCacheStats, StageKind};
use qpd_mapping::{MappingError, SabreRouter};
use qpd_topology::Architecture;
use qpd_yield::{HardwareFamily, YieldError, YieldSimulator};

// The routing and yield keys use the same FNV-1a hasher the upstream
// stage keys are built from.
pub use qpd_yield::Fnv64;

/// The topology fingerprint routing keys on: placed coordinates and
/// coupling edges only — the router never reads frequencies, which is
/// why a frequency-only change leaves routing results valid.
pub fn topology_key(arch: &Architecture) -> u64 {
    let mut h = Fnv64::new();
    h.push(arch.num_qubits() as u64);
    for c in arch.coords() {
        h.push(((c.row as u32 as u64) << 32) | c.col as u32 as u64);
    }
    for &(a, b) in arch.coupling_edges() {
        h.push(((a as u64) << 32) | b as u64);
    }
    h.finish()
}

/// A content fingerprint of the routed program: qubit count plus every
/// instruction (gate, parameters, and operands) in program order —
/// single-qubit gates included, since the routed *depth* the route
/// stage caches depends on them. Computed once per run and folded into
/// every routing key, so the route cache's keys derive from *all* of
/// the stage's true inputs and two circuits with equal two-qubit
/// structure but different 1q placement never collide.
pub fn circuit_key(circuit: &Circuit) -> u64 {
    let mut h = Fnv64::new();
    h.push(circuit.num_qubits() as u64);
    h.push(circuit.gate_count() as u64);
    for inst in circuit.iter() {
        // The Debug form carries the gate's variant and exact angle
        // bits; the key is in-memory only, so its stability across
        // builds does not matter — only injectivity per build.
        for byte in format!("{:?}", inst.gate()).into_bytes() {
            h.push(byte as u64);
        }
        h.push(inst.qubits().len() as u64);
        for q in inst.qubits() {
            h.push(q.index() as u64);
        }
    }
    h.finish()
}

/// Stage 4 — SABRE routing of the profiled program onto a candidate
/// topology, yielding `(total_gates, routed_depth)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteStage {
    /// [`circuit_key`] of the routed program (fixed per run).
    pub circuit_key: u64,
}

impl Stage for RouteStage {
    type Input<'a> = (&'a Architecture, &'a Circuit);
    type Output = (u64, u64);
    type Error = MappingError;
    const KIND: StageKind = StageKind::Routing;

    fn content_key(&self, input: &Self::Input<'_>) -> u64 {
        let mut h = Fnv64::new();
        h.push(Self::KIND as u64);
        h.push(topology_key(input.0));
        h.push(self.circuit_key);
        h.finish()
    }

    fn run(&self, input: &Self::Input<'_>) -> Result<(u64, u64), MappingError> {
        let (arch, circuit) = input;
        let mapped = SabreRouter::new(arch).route(circuit)?;
        let stats = mapped.stats();
        Ok((stats.total_gates as u64, stats.routed_depth as u64))
    }
}

/// Stage 5 — Monte Carlo yield estimation, yielding
/// `(successes, trials)`. The trial budget is a stage knob: the adaptive
/// screening path is this same stage at `yield_trials / screen_divisor`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldStage {
    /// Monte Carlo trials.
    pub trials: u64,
    /// Simulation seed.
    pub seed: u64,
    /// Fabrication precision in GHz.
    pub sigma_ghz: f64,
    /// Hardware family: collision constraints and effective noise. The
    /// default family keeps keys and estimates bit-identical to the
    /// pre-hardware-layer stage.
    pub hardware: HardwareFamily,
}

impl YieldStage {
    /// The configured simulator.
    pub fn simulator(&self) -> YieldSimulator {
        YieldSimulator::new()
            .with_trials(self.trials)
            .with_seed(self.seed)
            .with_sigma_ghz(self.sigma_ghz)
            .with_hardware(self.hardware)
    }
}

impl Stage for YieldStage {
    type Input<'a> = &'a Architecture;
    type Output = (u64, u64);
    type Error = YieldError;
    const KIND: StageKind = StageKind::Yield;

    /// The simulator's content key (structure + designed frequencies +
    /// simulator settings) — unchanged from the pre-stage-graph memo, so
    /// archived [`crate::Evaluated::key`]s stay stable.
    ///
    /// An architecture without a frequency plan (which the assembly
    /// stage never produces) keys on its topology alone; [`Self::run`]
    /// then reports [`YieldError::MissingFrequencyPlan`], and errors are
    /// never cached, so the sentinel key can't serve a stale value.
    fn content_key(&self, input: &Self::Input<'_>) -> u64 {
        self.simulator().content_key(input).unwrap_or_else(|_| {
            let mut h = Fnv64::new();
            h.push(Self::KIND as u64);
            h.push(topology_key(input));
            h.finish()
        })
    }

    fn run(&self, input: &Self::Input<'_>) -> Result<(u64, u64), YieldError> {
        let estimate = self.simulator().estimate(input)?;
        Ok((estimate.successes(), estimate.trials()))
    }
}

/// The downstream stage caches one exploration run shares across its
/// walks (the upstream placement/bus/frequency caches live in the
/// explorer's [`qpd_core::StagePlan`]).
#[derive(Debug, Default)]
pub struct StageCaches {
    /// Routing results by topology + circuit content key.
    pub routes: StageCache<(u64, u64)>,
    /// Yield estimates by the simulator's full content key (screened
    /// and full-fidelity budgets key separately).
    pub yields: StageCache<(u64, u64)>,
}

impl StageCaches {
    /// Empty caches (bounded by `QPD_MEMO_CAP` when set).
    pub fn new() -> Self {
        StageCaches::default()
    }

    /// Empty caches with an explicit per-table entry bound
    /// (`None` = unbounded).
    pub fn with_cap(cap: Option<usize>) -> Self {
        StageCaches { routes: StageCache::with_cap(cap), yields: StageCache::with_cap(cap) }
    }

    /// Drops every stored value (hit/miss counters keep accumulating).
    /// `bench_snapshot`'s cold-cache kernel uses this to re-measure
    /// uncached evaluation without rebuilding the engine.
    pub fn clear(&self) {
        self.routes.clear();
        self.yields.clear();
    }

    /// Hit/miss counters of the two downstream stages, pipeline order.
    pub fn stats(&self) -> Vec<StageCacheStats> {
        vec![
            StageCacheStats::of(StageKind::Routing, &self.routes),
            StageCacheStats::of(StageKind::Yield, &self.yields),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_order_sensitive_and_stable() {
        let mut a = Fnv64::new();
        a.push(1);
        a.push(2);
        let mut b = Fnv64::new();
        b.push(2);
        b.push(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv64::new();
        c.push(1);
        c.push(2);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn circuit_key_distinguishes_programs() {
        let mut a = Circuit::new(4);
        a.cx(0, 1).cx(1, 2);
        let mut b = Circuit::new(4);
        b.cx(0, 1).cx(2, 3);
        assert_ne!(circuit_key(&a), circuit_key(&b));
        let mut a2 = Circuit::new(4);
        a2.cx(0, 1).cx(1, 2);
        assert_eq!(circuit_key(&a), circuit_key(&a2));
    }

    #[test]
    fn circuit_key_sees_single_qubit_structure() {
        // Routed depth depends on where 1q gates sit, so circuits with
        // identical two-qubit streams but different 1q placement must
        // key apart (they'd otherwise share a wrong cached depth).
        let mut a = Circuit::new(2);
        a.h(0).h(0).cx(0, 1);
        let mut b = Circuit::new(2);
        b.h(0).h(1).cx(0, 1);
        assert_ne!(circuit_key(&a), circuit_key(&b));
    }

    #[test]
    fn yield_stage_screening_keys_differ_from_full_fidelity() {
        // The screening path is the yield stage at a reduced budget; the
        // budget is part of the key, so the two can share one table.
        let chip = qpd_topology::ibm::ibm_16q_2x8(qpd_topology::BusMode::TwoQubitOnly);
        let full = YieldStage {
            trials: 2_000,
            seed: 0,
            sigma_ghz: 0.03,
            hardware: HardwareFamily::FixedFrequencyTransmon,
        };
        let screened = YieldStage { trials: 500, ..full };
        assert_ne!(full.content_key(&&chip), screened.content_key(&&chip));
        assert_eq!(full.content_key(&&chip), full.content_key(&&chip));
        // The hardware family is part of the key: one shared yield table
        // can never serve a fixed-frequency estimate to a tunable walk.
        let tc = YieldStage { hardware: HardwareFamily::TunableCoupler, ..full };
        assert_ne!(full.content_key(&&chip), tc.content_key(&&chip));
    }

    #[test]
    fn plan_less_architecture_errors_instead_of_panicking() {
        // Running the yield stage on a bare topology (no frequency
        // plan) must surface MissingFrequencyPlan through run_stage —
        // never a panic, and never a cached value.
        let mut b = Architecture::builder("bare");
        b.qubit(0, 0).qubit(0, 1);
        let bare = b.build().unwrap();
        let stage = YieldStage {
            trials: 100,
            seed: 0,
            sigma_ghz: 0.03,
            hardware: HardwareFamily::FixedFrequencyTransmon,
        };
        let cache: StageCache<(u64, u64)> = StageCache::with_cap(None);
        let err = cache.run_stage(&stage, &&bare).unwrap_err();
        assert_eq!(err, YieldError::MissingFrequencyPlan);
        assert!(cache.is_empty(), "an error was cached");
    }

    #[test]
    fn stage_caches_report_both_stages() {
        let caches = StageCaches::new();
        caches.routes.insert(1, (10, 5));
        assert_eq!(caches.routes.get(1), Some((10, 5)));
        let stats = caches.stats();
        assert_eq!(stats[0].kind, StageKind::Routing);
        assert_eq!(stats[1].kind, StageKind::Yield);
        assert_eq!(stats[0].hits, 1);
        assert_eq!(stats[0].misses, 1);
        caches.clear();
        assert!(caches.routes.is_empty());
        assert_eq!(caches.routes.misses(), 1, "counters survive a clear");
    }
}
