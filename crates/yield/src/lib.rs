//! Frequency-collision model and Monte Carlo yield simulation.
//!
//! Implements the yield model of the paper's §4.3.1, which in turn follows
//! IBM's published model (Brink et al., IEDM 2018; Rosenblatt et al., APS
//! 2019): fabrication shifts every designed qubit frequency by Gaussian
//! noise `N(0, sigma)`, and a chip is defective when any of the seven
//! frequency-collision conditions of Figure 3 holds between connected
//! qubits (conditions 1–4) or between two qubits sharing a neighbor
//! (conditions 5–7). Yield is estimated as the fraction of Monte Carlo
//! fabrication trials with zero collisions.
//!
//! ```
//! use qpd_topology::{ibm, BusMode};
//! use qpd_yield::YieldSimulator;
//!
//! let chip = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
//! let sim = YieldSimulator::new().with_trials(2_000).with_seed(7);
//! let estimate = sim.estimate(&chip).unwrap();
//! assert!(estimate.rate() > 0.0 && estimate.rate() < 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analytic;
pub mod batch;
pub mod collision;
pub mod hardware;
pub mod local;
pub mod model;
pub mod simulator;

pub use analytic::{pair_collision_probability, pairwise_yield_estimate};
pub use batch::BatchRequest;
pub use collision::{CollisionChecker, CollisionEvent, CollisionParams};
pub use hardware::{
    FixedFrequencyTransmon, HardwareFamily, HardwareModel, HeavyHex, TunableCoupler,
    HARDWARE_KEY_SALT,
};
pub use local::{AllocScratch, CompiledRegions, LocalYieldEvaluator};
pub use model::FabricationModel;
pub use simulator::{Fnv64, YieldError, YieldEstimate, YieldSimulator};
