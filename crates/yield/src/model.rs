//! The fabrication noise model (paper §2.2, "Fabrication Variation").

use rand::Rng;

/// Gaussian fabrication noise: a designed frequency `f` comes out of
/// fabrication as `f + n` with `n ~ N(0, sigma)`.
///
/// The paper's evaluation uses `sigma = 30 MHz`, IBM's projected
/// fabrication precision (§5.1); IBM's 2019 state of the art was
/// 130–150 MHz.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricationModel {
    sigma_ghz: f64,
}

impl FabricationModel {
    /// The paper's evaluation setting, `sigma = 30 MHz`.
    pub const PAPER_SIGMA_GHZ: f64 = 0.030;

    /// Creates a model with the given standard deviation in GHz.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_ghz` is negative or not finite.
    pub fn new(sigma_ghz: f64) -> Self {
        assert!(sigma_ghz.is_finite() && sigma_ghz >= 0.0, "sigma must be finite and >= 0");
        FabricationModel { sigma_ghz }
    }

    /// The standard deviation in GHz.
    pub fn sigma_ghz(&self) -> f64 {
        self.sigma_ghz
    }

    /// Draws one noise sample in GHz (Box–Muller transform, so only
    /// `rand`'s uniform source is needed).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller: u1 in (0, 1], u2 in [0, 1).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let mag = (-2.0 * u1.ln()).sqrt();
        self.sigma_ghz * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fills `out` with independent noise samples, two per Box–Muller
    /// transform in its polar (Marsaglia) form: a uniform point in the
    /// unit disc supplies both the cosine (`u/sqrt(s)`) and sine
    /// (`v/sqrt(s)`) variates of the implicit angle, so one `ln`/`sqrt`
    /// serves two samples — half the transform work of calling
    /// [`Self::sample`] per slot — and no trigonometry is evaluated at
    /// all. Uniforms are drawn in bulk batches (`RngCore::fill_u64s`)
    /// of the generator's plain `next_u64` stream; an odd final slot
    /// falls back to the single-draw path.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        const BATCH: usize = 128;
        let mut raw = [0u64; BATCH];
        let mut uniforms = [0.0f64; BATCH];
        let mut pos = BATCH;
        let mut chunks = out.chunks_exact_mut(2);
        for pair in &mut chunks {
            loop {
                if pos + 2 > BATCH {
                    rng.fill_u64s(&mut raw);
                    for (f, &r) in uniforms.iter_mut().zip(&raw) {
                        *f = rand::u64_to_unit_f64(r);
                    }
                    pos = 0;
                }
                let u = 2.0 * uniforms[pos] - 1.0;
                let v = 2.0 * uniforms[pos + 1] - 1.0;
                pos += 2;
                let s = u * u + v * v;
                if s < 1.0 && s != 0.0 {
                    let f = self.sigma_ghz * (-2.0 * s.ln() / s).sqrt();
                    pair[0] = f * u;
                    pair[1] = f * v;
                    break;
                }
            }
        }
        for slot in chunks.into_remainder() {
            *slot = self.sample(rng);
        }
    }

    /// Fills `out` with `base + noise`, using the paired bulk sampler
    /// ([`Self::sample_into`]): one call fabricates a whole chip.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != base.len()`.
    pub fn perturb_into<R: Rng + ?Sized>(&self, rng: &mut R, base: &[f64], out: &mut [f64]) {
        assert_eq!(base.len(), out.len(), "buffer length mismatch");
        self.sample_into(rng, out);
        for (slot, &b) in out.iter_mut().zip(base) {
            *slot += b;
        }
    }

    /// Fills `out` with one single-draw ([`Self::sample`]) sample per
    /// slot — the pre-pairing noise stream, retained so `bench_snapshot`
    /// can time the historical baseline and so the stream change stays
    /// testable. Prefer [`Self::sample_into`] everywhere else.
    pub fn sample_into_unpaired<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for slot in out {
            *slot = self.sample(rng);
        }
    }
}

impl Default for FabricationModel {
    /// The paper's evaluation model (`sigma = 30 MHz`).
    fn default() -> Self {
        FabricationModel::new(Self::PAPER_SIGMA_GHZ)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn moments_are_sane() {
        let model = FabricationModel::new(0.030);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| model.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 5e-4, "mean {mean}");
        assert!((var.sqrt() - 0.030).abs() < 5e-4, "std {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_is_noiseless() {
        let model = FabricationModel::new(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..10 {
            assert_eq!(model.sample(&mut rng), 0.0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let model = FabricationModel::default();
        let a: Vec<f64> = (0..5).map(|_| model.sample(&mut ChaCha8Rng::seed_from_u64(3))).collect();
        let b: Vec<f64> = (0..5).map(|_| model.sample(&mut ChaCha8Rng::seed_from_u64(3))).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn negative_sigma_panics() {
        FabricationModel::new(-0.1);
    }

    #[test]
    fn sample_into_fills() {
        let model = FabricationModel::default();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut buf = [0.0; 8];
        model.sample_into(&mut rng, &mut buf);
        assert!(buf.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn paired_moments_are_sane() {
        // Both Box–Muller variates are consumed: the sine halves must be
        // as Gaussian as the cosine halves.
        let model = FabricationModel::new(0.030);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut samples = vec![0.0f64; 200_000];
        model.sample_into(&mut rng, &mut samples);
        for half in [0usize, 1] {
            let part: Vec<f64> = samples.iter().copied().skip(half).step_by(2).collect();
            let n = part.len() as f64;
            let mean = part.iter().sum::<f64>() / n;
            let var = part.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
            assert!(mean.abs() < 1e-3, "half {half} mean {mean}");
            assert!((var.sqrt() - 0.030).abs() < 1e-3, "half {half} std {}", var.sqrt());
        }
        // And the halves are uncorrelated (cos/sin of one uniform angle).
        let cov =
            samples.chunks_exact(2).map(|p| p[0] * p[1]).sum::<f64>() / (samples.len() / 2) as f64;
        assert!(cov.abs() < 1e-5, "cov {cov}");
    }

    #[test]
    fn perturb_is_base_plus_sample_into() {
        let model = FabricationModel::default();
        let base: Vec<f64> = (0..7).map(|i| 5.0 + 0.01 * i as f64).collect();
        let mut noise = vec![0.0f64; 7];
        model.sample_into(&mut ChaCha8Rng::seed_from_u64(11), &mut noise);
        let mut out = vec![0.0f64; 7];
        model.perturb_into(&mut ChaCha8Rng::seed_from_u64(11), &base, &mut out);
        for i in 0..7 {
            assert_eq!(out[i], base[i] + noise[i], "slot {i}");
        }
    }

    #[test]
    fn unpaired_matches_repeated_sample() {
        // The retained baseline scheme is exactly the historical one.
        let model = FabricationModel::default();
        let mut a = ChaCha8Rng::seed_from_u64(13);
        let mut b = ChaCha8Rng::seed_from_u64(13);
        let mut buf = [0.0f64; 5];
        model.sample_into_unpaired(&mut a, &mut buf);
        let expected: Vec<f64> = (0..5).map(|_| model.sample(&mut b)).collect();
        assert_eq!(buf.to_vec(), expected);
    }

    #[test]
    fn paired_and_unpaired_streams_differ() {
        let model = FabricationModel::default();
        let mut paired = [0.0f64; 4];
        let mut unpaired = [0.0f64; 4];
        model.sample_into(&mut ChaCha8Rng::seed_from_u64(17), &mut paired);
        model.sample_into_unpaired(&mut ChaCha8Rng::seed_from_u64(17), &mut unpaired);
        assert_ne!(paired.to_vec(), unpaired.to_vec(), "schemes draw distinct streams");
    }
}
