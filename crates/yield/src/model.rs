//! The fabrication noise model (paper §2.2, "Fabrication Variation").

use rand::Rng;

/// Gaussian fabrication noise: a designed frequency `f` comes out of
/// fabrication as `f + n` with `n ~ N(0, sigma)`.
///
/// The paper's evaluation uses `sigma = 30 MHz`, IBM's projected
/// fabrication precision (§5.1); IBM's 2019 state of the art was
/// 130–150 MHz.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricationModel {
    sigma_ghz: f64,
}

impl FabricationModel {
    /// The paper's evaluation setting, `sigma = 30 MHz`.
    pub const PAPER_SIGMA_GHZ: f64 = 0.030;

    /// Creates a model with the given standard deviation in GHz.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_ghz` is negative or not finite.
    pub fn new(sigma_ghz: f64) -> Self {
        assert!(sigma_ghz.is_finite() && sigma_ghz >= 0.0, "sigma must be finite and >= 0");
        FabricationModel { sigma_ghz }
    }

    /// The standard deviation in GHz.
    pub fn sigma_ghz(&self) -> f64 {
        self.sigma_ghz
    }

    /// Draws one noise sample in GHz (Box–Muller transform, so only
    /// `rand`'s uniform source is needed).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller: u1 in (0, 1], u2 in [0, 1).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let mag = (-2.0 * u1.ln()).sqrt();
        self.sigma_ghz * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fills `out` with independent noise samples.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for slot in out {
            *slot = self.sample(rng);
        }
    }
}

impl Default for FabricationModel {
    /// The paper's evaluation model (`sigma = 30 MHz`).
    fn default() -> Self {
        FabricationModel::new(Self::PAPER_SIGMA_GHZ)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn moments_are_sane() {
        let model = FabricationModel::new(0.030);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| model.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 5e-4, "mean {mean}");
        assert!((var.sqrt() - 0.030).abs() < 5e-4, "std {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_is_noiseless() {
        let model = FabricationModel::new(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..10 {
            assert_eq!(model.sample(&mut rng), 0.0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let model = FabricationModel::default();
        let a: Vec<f64> = (0..5).map(|_| model.sample(&mut ChaCha8Rng::seed_from_u64(3))).collect();
        let b: Vec<f64> = (0..5).map(|_| model.sample(&mut ChaCha8Rng::seed_from_u64(3))).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn negative_sigma_panics() {
        FabricationModel::new(-0.1);
    }

    #[test]
    fn sample_into_fills() {
        let model = FabricationModel::default();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut buf = [0.0; 8];
        model.sample_into(&mut rng, &mut buf);
        assert!(buf.iter().any(|&x| x != 0.0));
    }
}
