//! Closed-form approximation of pairwise collision probabilities.
//!
//! For two connected qubits with designed detuning `d` and independent
//! Gaussian noise of width `sigma` on each, the post-fabrication detuning
//! is `N(d, sigma * sqrt(2))`, so the probability of each window-shaped
//! pair condition (1, 2, 3) and of the one-sided condition 4 has a
//! closed form in the normal CDF. Multiplying the survival probabilities
//! over all pair constraints gives a cheap lower-fidelity yield estimate
//! that:
//!
//! - upper-bounds the Monte Carlo yield (it ignores the three-qubit
//!   conditions 5–7),
//! - ranks architectures/plans at near-zero cost (useful for screening
//!   before running the full simulator),
//! - cross-checks the Monte Carlo implementation (tests assert agreement
//!   on triple-free architectures).
//!
//! The three-qubit conditions couple constraints (shared qubits), so no
//! comparably simple product form exists for them; use the Monte Carlo
//! simulator when they matter.

use qpd_topology::Architecture;

use crate::collision::CollisionParams;

/// The standard normal CDF via `erf`-free Abramowitz–Stegun 7.1.26
/// approximation (|error| < 7.5e-8, far below Monte Carlo noise).
fn phi(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.2316419 * x.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let tail = pdf * poly;
    if x >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Probability that `N(mean, sd)` lands inside `(lo, hi)`.
fn window(mean: f64, sd: f64, lo: f64, hi: f64) -> f64 {
    phi((hi - mean) / sd) - phi((lo - mean) / sd)
}

/// Probability that one connected pair with designed detuning
/// `detuning_ghz` collides under any of conditions 1–4 (both
/// orientations folded in), given per-qubit noise `sigma_ghz`.
pub fn pair_collision_probability(
    detuning_ghz: f64,
    sigma_ghz: f64,
    params: &CollisionParams,
) -> f64 {
    let d = detuning_ghz.abs();
    let sd = sigma_ghz * std::f64::consts::SQRT_2;
    let gap = -params.anharmonicity_ghz;
    if sd == 0.0 {
        let collides = d < params.t_degenerate_ghz
            || (d - gap / 2.0).abs() < params.t_half_ghz
            || (d - gap).abs() < params.t_full_ghz
            || d > gap;
        return if collides { 1.0 } else { 0.0 };
    }
    // The post-fab detuning is x ~ N(d, sd) and the conditions constrain
    // |x|. Their union is exactly
    //   [0, t1) U (gap/2 - t2, gap/2 + t2) U (gap - t3, inf)
    // (conditions 3 and 4 merge into one unbounded interval), so the
    // survival probability is the mass of the two safe windows, folded
    // over the sign of x.
    let safe = [
        (params.t_degenerate_ghz, gap / 2.0 - params.t_half_ghz),
        (gap / 2.0 + params.t_half_ghz, gap - params.t_full_ghz),
    ];
    let mut survive = 0.0;
    for (lo, hi) in safe {
        if hi > lo {
            survive += window(d, sd, lo, hi) + window(d, sd, -hi, -lo);
        }
    }
    (1.0 - survive).clamp(0.0, 1.0)
}

/// Product-form survival estimate over all *pair* constraints of an
/// architecture: an upper bound on the true yield (conditions 5–7 are
/// ignored) that is exact for architectures without common-neighbor
/// triples.
///
/// # Panics
///
/// Panics if `designed.len() != arch.num_qubits()`.
pub fn pairwise_yield_estimate(
    arch: &Architecture,
    designed: &[f64],
    sigma_ghz: f64,
    params: &CollisionParams,
) -> f64 {
    assert_eq!(designed.len(), arch.num_qubits(), "frequency vector length mismatch");
    arch.coupling_edges()
        .iter()
        .map(|&(a, b)| {
            1.0 - pair_collision_probability(designed[a] - designed[b], sigma_ghz, params)
        })
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::YieldSimulator;
    use qpd_topology::Architecture;

    fn params() -> CollisionParams {
        CollisionParams::default()
    }

    #[test]
    fn phi_matches_known_values() {
        assert!((phi(0.0) - 0.5).abs() < 1e-7);
        assert!((phi(1.959963985) - 0.975).abs() < 1e-4);
        assert!((phi(-1.0) - 0.158655).abs() < 1e-5);
    }

    #[test]
    fn zero_noise_limits() {
        // Clean detuning: no collision.
        assert_eq!(pair_collision_probability(0.10, 0.0, &params()), 0.0);
        // Degenerate pair: certain collision.
        assert_eq!(pair_collision_probability(0.005, 0.0, &params()), 1.0);
        // Half-anharmonicity resonance.
        assert_eq!(pair_collision_probability(0.17, 0.0, &params()), 1.0);
        // Beyond the anharmonicity gap (condition 4).
        assert_eq!(pair_collision_probability(0.40, 0.0, &params()), 1.0);
    }

    #[test]
    fn safe_detunings_have_low_probability() {
        // ~90 MHz and ~250 MHz sit between the collision windows.
        let p90 = pair_collision_probability(0.09, 0.030, &params());
        let p250 = pair_collision_probability(0.25, 0.030, &params());
        let p70 = pair_collision_probability(0.07, 0.030, &params());
        assert!(p90 < p70, "90 MHz ({p90}) should beat 70 MHz ({p70})");
        assert!(p90 < 0.10 && p250 < 0.12);
    }

    #[test]
    fn matches_monte_carlo_on_a_pair() {
        // A single connected pair has no triples, so the analytic value
        // must agree with the simulator within Monte Carlo error.
        let mut b = Architecture::builder("pair");
        b.qubit(0, 0).qubit(0, 1);
        let arch = b.build().unwrap();
        for detuning in [0.05, 0.09, 0.14, 0.20, 0.30] {
            let designed = [5.05, 5.05 + detuning];
            let analytic = pairwise_yield_estimate(&arch, &designed, 0.030, &params());
            let mc = YieldSimulator::new()
                .with_trials(200_000)
                .with_seed(17)
                .estimate_with_frequencies(&arch, &designed)
                .rate();
            assert!(
                (analytic - mc).abs() < 0.01,
                "detuning {detuning}: analytic {analytic} vs mc {mc}"
            );
        }
    }

    #[test]
    fn matches_monte_carlo_on_a_triple_free_line() {
        // A 2-qubit-per-component architecture: isolated pairs have no
        // triples. Use two disjoint pairs.
        let mut b = Architecture::builder("pairs");
        b.qubit(0, 0).qubit(0, 1).qubit(5, 0).qubit(5, 1);
        let arch = b.build().unwrap();
        let designed = [5.02, 5.13, 5.20, 5.31];
        let analytic = pairwise_yield_estimate(&arch, &designed, 0.030, &params());
        let mc = YieldSimulator::new()
            .with_trials(200_000)
            .with_seed(3)
            .estimate_with_frequencies(&arch, &designed)
            .rate();
        assert!((analytic - mc).abs() < 0.01, "analytic {analytic} vs mc {mc}");
    }

    #[test]
    fn upper_bounds_monte_carlo_with_triples() {
        // On a path (which has a triple), the pairwise product must be an
        // upper bound.
        let mut b = Architecture::builder("path3");
        b.qubit(0, 0).qubit(0, 1).qubit(0, 2);
        let arch = b.build().unwrap();
        let designed = [5.04, 5.13, 5.22];
        let analytic = pairwise_yield_estimate(&arch, &designed, 0.030, &params());
        let mc = YieldSimulator::new()
            .with_trials(100_000)
            .with_seed(5)
            .estimate_with_frequencies(&arch, &designed)
            .rate();
        assert!(analytic >= mc - 0.01, "analytic {analytic} not an upper bound of {mc}");
    }

    #[test]
    fn ranks_plans_like_the_simulator() {
        let mut b = Architecture::builder("line4");
        for c in 0..4 {
            b.qubit(0, c);
        }
        let arch = b.build().unwrap();
        let good = [5.02, 5.11, 5.02, 5.11]; // 90 MHz detunings
        let bad = [5.10, 5.11, 5.12, 5.13]; // 10 MHz detunings (cond. 1)
        let pg = pairwise_yield_estimate(&arch, &good, 0.030, &params());
        let pb = pairwise_yield_estimate(&arch, &bad, 0.030, &params());
        assert!(pg > pb * 2.0, "good {pg} vs bad {pb}");
    }
}
