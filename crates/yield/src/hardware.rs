//! Pluggable hardware families: the [`HardwareModel`] trait and its
//! three instances.
//!
//! The reproduction grew up hard-wired to the paper's fixed-frequency,
//! fixed-coupling transmon lattice: the allowed band and 5-frequency
//! menu lived in `qpd-topology`, the collision thresholds in
//! [`crate::CollisionParams::default`], and the fabrication-noise width
//! wherever a sigma knob happened to sit. This module gathers that
//! surface behind one trait so the design flow, the yield simulator,
//! and the design-space explorer can be pointed at a different hardware
//! family — and so `qpd-explore` can search *across* families and let
//! the Pareto front answer which one wins for a workload.
//!
//! Three instances ship:
//!
//! - [`HardwareFamily::FixedFrequencyTransmon`] — the paper's model,
//!   verbatim. Selecting it is bit-identical to the pre-refactor path:
//!   same band, same menu, same collision thresholds, same noise width,
//!   and **no contribution to any content key or checkpoint byte**.
//! - [`HardwareFamily::TunableCoupler`] — the tunable-coupler chips of
//!   Li & Jin (arXiv:2212.13751): couplers carry their own detuning
//!   degree of freedom, which buys a wider qubit band, relaxed
//!   collision thresholds, and an effective fabrication noise reduced by
//!   the detuning range the coupler can absorb.
//! - [`HardwareFamily::HeavyHex`] — the degree-3 heavy-hexagon lattice
//!   lineage (Bunyk et al., arXiv:1401.5504): a lower, narrower band
//!   with a 3-frequency menu, stressing the abstraction from the sparse
//!   end of the connectivity spectrum
//!   (`qpd_topology::ibm::heavy_hex` builds the matching lattice).
//!
//! # The model contract
//!
//! Everything a [`HardwareModel`] reports feeds **stage content keys**
//! (the memoization layer of the stage graph) and therefore must obey
//! the same purity rules as `qpd_core::Stage::content_key`:
//!
//! - every method is a **pure function of the family**: same family,
//!   same answer — no global state, no environment, no randomness, no
//!   time. Two calls anywhere in the process must agree bit-for-bit,
//!   because a stage key computed on one thread may serve a value to
//!   every other thread;
//! - the reported values are **total and finite**: bands are ordered
//!   `(lo, hi)` with `lo < hi`, menus are non-empty and inside the
//!   band, sigma scaling maps finite non-negative to finite
//!   non-negative;
//! - **the default family is key-silent**: content keys and checkpoint
//!   bytes append a family tag only for non-default families, so every
//!   key, archive entry, and checkpoint produced before this layer
//!   existed stays byte-identical. Changing what
//!   [`HardwareFamily::FixedFrequencyTransmon`] reports is therefore a
//!   breaking change to the golden fingerprints;
//! - determinism across `QPD_THREADS` and kill/resume follows from the
//!   above: a family is a constant, so threading it through seeds,
//!   stage keys, and checkpoints cannot introduce order dependence.

use qpd_topology::{
    ALLOWED_BAND_GHZ, FIVE_FREQUENCIES_GHZ, HEAVY_HEX_BAND_GHZ, HEAVY_HEX_FREQUENCIES_GHZ,
    TUNABLE_COUPLER_BAND_GHZ, TUNABLE_COUPLER_FREQUENCIES_GHZ,
};

use crate::collision::CollisionParams;

/// Salt folded into a content key right before a non-default family tag,
/// so a key extended by a family can never alias a key that merely
/// hashed one more ordinary word.
pub const HARDWARE_KEY_SALT: u64 = 0x9d8f_3a42_c61b_75e0;

/// The hardware families the toolchain can design for. `Copy`, ordered,
/// and stable: the `as u64` discriminant is folded into content keys
/// (for non-default families), so variants must never be reordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum HardwareFamily {
    /// The paper's fixed-frequency, fixed-coupling transmon lattice
    /// (default; bit-identical to the pre-refactor pipeline).
    #[default]
    FixedFrequencyTransmon,
    /// Tunable-coupler transmons (Li & Jin, arXiv:2212.13751).
    TunableCoupler,
    /// The heavy-hexagon degree-3 lattice lineage (Bunyk et al.,
    /// arXiv:1401.5504).
    HeavyHex,
}

impl HardwareFamily {
    /// Every family, discriminant order.
    pub const ALL: [HardwareFamily; 3] = [
        HardwareFamily::FixedFrequencyTransmon,
        HardwareFamily::TunableCoupler,
        HardwareFamily::HeavyHex,
    ];

    /// Stable CLI / checkpoint tag.
    pub fn as_str(self) -> &'static str {
        match self {
            HardwareFamily::FixedFrequencyTransmon => "fixed",
            HardwareFamily::TunableCoupler => "tunable",
            HardwareFamily::HeavyHex => "heavyhex",
        }
    }

    /// Parses the [`Self::as_str`] tag.
    pub fn parse(tag: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|f| f.as_str() == tag)
    }

    /// The family's model.
    pub fn model(self) -> &'static dyn HardwareModel {
        match self {
            HardwareFamily::FixedFrequencyTransmon => &FixedFrequencyTransmon,
            HardwareFamily::TunableCoupler => &TunableCoupler,
            HardwareFamily::HeavyHex => &HeavyHex,
        }
    }

    /// Whether this is the default (key-silent) family.
    pub fn is_default(self) -> bool {
        self == HardwareFamily::FixedFrequencyTransmon
    }

    /// The noise sigma actually sampled under this family for a
    /// configured `sigma_ghz` — shorthand for the model's
    /// [`HardwareModel::effective_sigma_ghz`]. This value (not the
    /// family itself) is what decides whether two batch candidates may
    /// share a fabrication-noise trial stream ([`crate::batch`]):
    /// families mapping a sigma identically (fixed-frequency and
    /// heavy-hex both leave it untouched) legitimately share streams,
    /// because their estimates differ only in the collision check.
    pub fn effective_sigma_ghz(self, sigma_ghz: f64) -> f64 {
        self.model().effective_sigma_ghz(sigma_ghz)
    }

    /// Folds this family into a content-key hash stream — **a no-op for
    /// the default family**, which is what keeps every pre-refactor key
    /// (and therefore every golden fingerprint and default-config
    /// checkpoint) byte-identical.
    pub fn push_key_tag(self, h: &mut crate::Fnv64) {
        if !self.is_default() {
            h.push(HARDWARE_KEY_SALT);
            h.push(self as u64);
        }
    }

    /// Architecture-name suffix (`""` for the default family), used by
    /// the assembly stage so cross-family reports stay unambiguous.
    pub fn name_suffix(self) -> &'static str {
        match self {
            HardwareFamily::FixedFrequencyTransmon => "",
            HardwareFamily::TunableCoupler => "-tc",
            HardwareFamily::HeavyHex => "-hh",
        }
    }
}

/// One hardware family's physical surface: the frequency band the
/// allocator may move in, the pattern menu, the collision thresholds,
/// and the fabrication-noise behavior.
///
/// **Purity contract** (load-bearing — see the module docs): every
/// method is a pure, total function of the implementing family. The
/// values flow into stage content keys, so any violation silently
/// poisons the memoization layer and the determinism guarantees
/// (`QPD_THREADS` invariance, kill/resume reproducibility) built on it.
pub trait HardwareModel: std::fmt::Debug + Sync {
    /// Which family this model describes.
    fn family(&self) -> HardwareFamily;

    /// The allowed pre-fabrication frequency band `(lo, hi)` in GHz —
    /// the allocator's candidate range and the assembly stage's band
    /// check.
    fn allowed_band_ghz(&self) -> (f64, f64);

    /// The family's fixed pattern menu in GHz (the counterpart of IBM's
    /// 5-frequency scheme), tiled by position via
    /// `qpd_topology::pattern_frequency_plan`.
    fn pattern_frequencies_ghz(&self) -> &'static [f64];

    /// The family's collision thresholds.
    fn collision_params(&self) -> CollisionParams;

    /// The coupler detuning range in GHz the family can dial in after
    /// fabrication (0 for families without tunable couplers). This is
    /// the knob surface [`Self::effective_sigma_ghz`] derives from.
    fn detuning_ghz(&self) -> f64 {
        0.0
    }

    /// The fabrication-noise width the yield model should simulate for
    /// a design-time `sigma_ghz`: families with post-fabrication tuning
    /// absorb part of the deviation deterministically. The default is
    /// the identity (no tuning).
    fn effective_sigma_ghz(&self, sigma_ghz: f64) -> f64 {
        sigma_ghz
    }
}

/// The paper's fixed-frequency transmon lattice — the default family,
/// reporting exactly the constants the pipeline hard-coded before the
/// hardware layer existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedFrequencyTransmon;

impl HardwareModel for FixedFrequencyTransmon {
    fn family(&self) -> HardwareFamily {
        HardwareFamily::FixedFrequencyTransmon
    }

    fn allowed_band_ghz(&self) -> (f64, f64) {
        ALLOWED_BAND_GHZ
    }

    fn pattern_frequencies_ghz(&self) -> &'static [f64] {
        &FIVE_FREQUENCIES_GHZ
    }

    fn collision_params(&self) -> CollisionParams {
        CollisionParams::default()
    }
}

/// Tunable-coupler transmons (Li & Jin, arXiv:2212.13751): each
/// coupling runs through a coupler whose frequency can be detuned after
/// fabrication, which (a) widens the usable qubit band, (b) shrinks the
/// collision thresholds (a near-collision can be detuned away unless the
/// qubits land almost exactly on the condition), and (c) absorbs half of
/// the fabrication deviation in the yield model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunableCoupler;

impl TunableCoupler {
    /// Collision thresholds with the coupler's detuning headroom folded
    /// in: the paper's conditions at half width, with a slightly softer
    /// anharmonicity typical of coupler-mediated devices.
    pub const PARAMS: CollisionParams = CollisionParams {
        anharmonicity_ghz: -0.300,
        t_degenerate_ghz: 0.009,
        t_half_ghz: 0.002,
        t_full_ghz: 0.013,
        t_two_photon_ghz: 0.009,
    };
}

impl HardwareModel for TunableCoupler {
    fn family(&self) -> HardwareFamily {
        HardwareFamily::TunableCoupler
    }

    fn allowed_band_ghz(&self) -> (f64, f64) {
        TUNABLE_COUPLER_BAND_GHZ
    }

    fn pattern_frequencies_ghz(&self) -> &'static [f64] {
        &TUNABLE_COUPLER_FREQUENCIES_GHZ
    }

    fn collision_params(&self) -> CollisionParams {
        Self::PARAMS
    }

    fn detuning_ghz(&self) -> f64 {
        0.030
    }

    fn effective_sigma_ghz(&self, sigma_ghz: f64) -> f64 {
        // The coupler can deterministically re-center a deviation up to
        // its detuning range; model the residual as half the raw width.
        0.5 * sigma_ghz
    }
}

/// The heavy-hexagon family (Bunyk et al., arXiv:1401.5504 lineage):
/// degree-3 connectivity on a lower, narrower band with a 3-frequency
/// menu. Collision physics is the paper's fixed-frequency model — the
/// family differs in band, menu, and (through
/// `qpd_topology::ibm::heavy_hex`) topology, not in junction physics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeavyHex;

impl HardwareModel for HeavyHex {
    fn family(&self) -> HardwareFamily {
        HardwareFamily::HeavyHex
    }

    fn allowed_band_ghz(&self) -> (f64, f64) {
        HEAVY_HEX_BAND_GHZ
    }

    fn pattern_frequencies_ghz(&self) -> &'static [f64] {
        &HEAVY_HEX_FREQUENCIES_GHZ
    }

    fn collision_params(&self) -> CollisionParams {
        CollisionParams::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fnv64;

    #[test]
    fn default_family_reports_the_pre_refactor_constants() {
        let m = HardwareFamily::FixedFrequencyTransmon.model();
        assert_eq!(m.allowed_band_ghz(), ALLOWED_BAND_GHZ);
        assert_eq!(m.pattern_frequencies_ghz(), &FIVE_FREQUENCIES_GHZ);
        assert_eq!(m.collision_params(), CollisionParams::default());
        assert_eq!(m.detuning_ghz(), 0.0);
        assert_eq!(m.effective_sigma_ghz(0.030), 0.030);
        assert!(HardwareFamily::default().is_default());
    }

    #[test]
    fn default_family_is_key_silent() {
        let mut tagged = Fnv64::new();
        tagged.push(7);
        HardwareFamily::FixedFrequencyTransmon.push_key_tag(&mut tagged);
        let mut plain = Fnv64::new();
        plain.push(7);
        assert_eq!(tagged.finish(), plain.finish(), "default family touched a key");
        let mut other = Fnv64::new();
        other.push(7);
        HardwareFamily::TunableCoupler.push_key_tag(&mut other);
        assert_ne!(other.finish(), plain.finish(), "non-default family missing from key");
    }

    #[test]
    fn family_tags_key_apart() {
        let keys: Vec<u64> = HardwareFamily::ALL
            .iter()
            .map(|f| {
                let mut h = Fnv64::new();
                f.push_key_tag(&mut h);
                h.finish()
            })
            .collect();
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[1], keys[2]);
        assert_ne!(keys[0], keys[2]);
    }

    #[test]
    fn tags_round_trip() {
        for f in HardwareFamily::ALL {
            assert_eq!(HardwareFamily::parse(f.as_str()), Some(f));
            assert_eq!(f.model().family(), f);
        }
        assert_eq!(HardwareFamily::parse("fluxonium"), None);
    }

    #[test]
    fn every_menu_is_inside_its_band_and_well_formed() {
        for f in HardwareFamily::ALL {
            let m = f.model();
            let (lo, hi) = m.allowed_band_ghz();
            assert!(lo < hi, "{f:?}: band not ordered");
            let menu = m.pattern_frequencies_ghz();
            assert!(!menu.is_empty(), "{f:?}: empty menu");
            for &v in menu {
                assert!((lo..=hi).contains(&v), "{f:?}: menu value {v} out of band");
            }
            let p = m.collision_params();
            assert!(p.anharmonicity_ghz < 0.0, "{f:?}: anharmonicity must be negative");
            for t in [p.t_degenerate_ghz, p.t_half_ghz, p.t_full_ghz, p.t_two_photon_ghz] {
                assert!(t > 0.0 && t.is_finite(), "{f:?}: bad threshold {t}");
            }
            assert!(m.effective_sigma_ghz(0.0) == 0.0, "{f:?}: sigma map not zero-preserving");
            assert!(m.effective_sigma_ghz(0.030) <= 0.030, "{f:?}: tuning cannot add noise");
        }
    }

    #[test]
    fn tunable_coupler_relaxes_the_default_thresholds() {
        let tc = TunableCoupler.collision_params();
        let fixed = CollisionParams::default();
        assert!(tc.t_degenerate_ghz < fixed.t_degenerate_ghz);
        assert!(tc.t_full_ghz < fixed.t_full_ghz);
        assert!(TunableCoupler.detuning_ghz() > 0.0);
        assert!(TunableCoupler.effective_sigma_ghz(0.030) < 0.030);
    }
}
