//! Batched cross-candidate yield evaluation: one SoA pass over
//! candidates x trials.
//!
//! A design-space exploration round produces many near-identical
//! candidates whose yield simulations differ only in designed
//! frequencies (and sometimes topology), while sharing everything that
//! determines the fabrication-noise trial stream. The singleton path
//! ([`YieldSimulator::estimate`]) regenerates that stream per candidate;
//! [`YieldSimulator::evaluate_batch`] generates it **once per stream
//! group** and checks every candidate of the group against the same
//! noise rows, with candidates laid out across SIMD lanes.
//!
//! # Grouping contract
//!
//! Two candidates may share a trial stream exactly when the stream's
//! defining inputs agree — they form one *stream group*:
//!
//! - the simulator `seed` and `trials` (chunk decomposition and per-chunk
//!   RNG seeds, see `CHUNKS` in the simulator module),
//! - the *effective* noise sigma (the configured sigma mapped through the
//!   hardware family's `effective_sigma_ghz`, so e.g. a tunable-coupler
//!   candidate never shares a stream with a fixed-frequency one unless
//!   the halved sigma happens to coincide),
//! - the qubit count `n` (the noise consumption cadence draws
//!   `max(BULK_NOISE_SAMPLES / n, 1)` rows per bulk fill, so `n` is part
//!   of the RNG consumption pattern, not just the row width).
//!
//! Collision parameters, coupling structure, and designed frequencies do
//! **not** affect the stream — only the check — so candidates differing
//! in any of those still share one group's noise. Within a stream group,
//! candidates with identical collision structure (same parameters, same
//! pair and triple lists) form a *lane group* and ride the same SIMD
//! vectors; candidates with different topologies get their own lane
//! group but still reuse the group's noise rows.
//!
//! # Determinism
//!
//! Every estimate returned here is **bit-identical** to what the
//! request's own simulator would return from `estimate`: the per-chunk
//! RNG streams, the bulk-fill cadence, and every floating-point
//! operation of the collision predicates (operands, order, association)
//! are exactly the singleton path's, and per-candidate success tallies
//! are exact integer sums over the same fixed chunk decomposition. The
//! work fans out over the [`qpd_par`] pool as one flat
//! stream-group x chunk grid, so thread count never changes results —
//! the test suite asserts equality against singleton runs at several
//! pool widths.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qpd_topology::Architecture;

use crate::collision::{CollisionChecker, CollisionParams};
use crate::local::{simd_tier, SimdTier};
use crate::model::FabricationModel;
use crate::simulator::{
    YieldError, YieldEstimate, YieldSimulator, BULK_NOISE_SAMPLES, CHUNKS, CHUNK_SEED_MUL,
};

/// One candidate of a batch: a configured simulator plus the architecture
/// (with attached frequency plan) it should estimate.
#[derive(Debug, Clone, Copy)]
pub struct BatchRequest<'a> {
    /// The simulator configuration this candidate would use on the
    /// singleton path; its seed, trials, sigma, hardware family, and
    /// collision parameters all participate in grouping.
    pub simulator: YieldSimulator,
    /// The candidate architecture. Must have a frequency plan attached,
    /// or the request's slot resolves to
    /// [`YieldError::MissingFrequencyPlan`].
    pub arch: &'a Architecture,
}

/// Candidates sharing one stream group's noise *and* one collision
/// structure: same parameters, same pair/triple lists. They differ only
/// in designed frequencies, laid out constraint-major across SIMD lanes
/// (`operand[constraint * width + lane]`), NaN-padded to the lane width.
#[derive(Debug)]
struct LaneGroup {
    params: CollisionParams,
    /// Connected pairs `(a, b)` in singleton check order.
    pairs: Vec<(u32, u32)>,
    /// Common-neighbor triples `(j; i, k)` in singleton check order.
    triples: Vec<(u32, u32, u32)>,
    /// Request indices of the member candidates, in submission order.
    members: Vec<usize>,
    /// Lane width: member count padded up to the SIMD tier's lane count.
    width: usize,
    /// Designed `f_a` per (pair, lane); NaN in pad lanes (every compare
    /// is ordered, so pad lanes never collide and their tallies are
    /// discarded).
    pair_a: Vec<f64>,
    /// Designed `f_b` per (pair, lane).
    pair_b: Vec<f64>,
    /// Designed `f_j` per (triple, lane).
    tri_j: Vec<f64>,
    /// Designed `f_i` per (triple, lane).
    tri_i: Vec<f64>,
    /// Designed `f_k` per (triple, lane).
    tri_k: Vec<f64>,
}

/// Candidates sharing one fabrication-noise trial stream (see the module
/// docs for the grouping contract).
#[derive(Debug)]
struct StreamGroup {
    seed: u64,
    trials: u64,
    /// Effective sigma actually sampled (hardware-mapped).
    sigma_ghz: f64,
    /// Qubit count: row width and fill cadence of the stream.
    n: usize,
    lane_groups: Vec<LaneGroup>,
    /// Sum of lane-group widths: one flat tally row per chunk.
    width_total: usize,
}

impl YieldSimulator {
    /// Estimates the yield of every request in one batched pass,
    /// returning results in request order. Each slot is bit-identical to
    /// `requests[i].simulator.estimate(requests[i].arch)` — including
    /// the error for requests without a frequency plan — but candidates
    /// sharing a trial stream pay for its generation once, and
    /// candidates sharing collision structure are checked several per
    /// SIMD vector.
    ///
    /// The work fans out over the [`qpd_par`] pool regardless of any
    /// request's `single_threaded` setting; results are identical either
    /// way, so the flag only matters for the singleton path's scheduling.
    ///
    /// # Panics
    ///
    /// Panics if any request's frequency plan length disagrees with its
    /// architecture's qubit count (as `estimate_with_frequencies` does).
    pub fn evaluate_batch(requests: &[BatchRequest<'_>]) -> Vec<Result<YieldEstimate, YieldError>> {
        let tier = simd_tier();
        let lanes = tier.lanes();
        let mut results: Vec<Option<Result<YieldEstimate, YieldError>>> =
            vec![None; requests.len()];

        // Group in submission order: stream groups by (seed, trials,
        // effective sigma, n), lane groups within them by exact
        // collision structure (no hashing — membership is compared
        // outright, so equal-looking groups are equal).
        let mut groups: Vec<StreamGroup> = Vec::new();
        for (idx, req) in requests.iter().enumerate() {
            let sim = &req.simulator;
            let Some(plan) = req.arch.frequencies() else {
                results[idx] = Some(Err(YieldError::MissingFrequencyPlan));
                continue;
            };
            let designed = plan.as_slice();
            assert_eq!(designed.len(), req.arch.num_qubits(), "frequency vector length mismatch");
            let n = designed.len();
            if n == 0 {
                // No qubits, no collisions: every trial succeeds, as on
                // the singleton path.
                results[idx] = Some(Ok(YieldEstimate::new(sim.trials(), sim.trials())));
                continue;
            }
            let sigma_bits = sim.effective_model().sigma_ghz().to_bits();
            let gi = groups
                .iter()
                .position(|g| {
                    g.seed == sim.seed()
                        && g.trials == sim.trials()
                        && g.sigma_ghz.to_bits() == sigma_bits
                        && g.n == n
                })
                .unwrap_or_else(|| {
                    groups.push(StreamGroup {
                        seed: sim.seed(),
                        trials: sim.trials(),
                        sigma_ghz: f64::from_bits(sigma_bits),
                        n,
                        lane_groups: Vec::new(),
                        width_total: 0,
                    });
                    groups.len() - 1
                });
            let checker = CollisionChecker::with_params(req.arch, sim.params());
            let g = &mut groups[gi];
            let li = g
                .lane_groups
                .iter()
                .position(|lg| {
                    lg.params == sim.params()
                        && lg.pairs.as_slice() == checker.pairs()
                        && lg.triples.as_slice() == checker.triples()
                })
                .unwrap_or_else(|| {
                    g.lane_groups.push(LaneGroup {
                        params: sim.params(),
                        pairs: checker.pairs().to_vec(),
                        triples: checker.triples().to_vec(),
                        members: Vec::new(),
                        width: 0,
                        pair_a: Vec::new(),
                        pair_b: Vec::new(),
                        tri_j: Vec::new(),
                        tri_i: Vec::new(),
                        tri_k: Vec::new(),
                    });
                    g.lane_groups.len() - 1
                });
            g.lane_groups[li].members.push(idx);
        }

        // Lay the designed-frequency operands out SoA now that every
        // group's membership is known.
        for g in &mut groups {
            for lg in &mut g.lane_groups {
                lg.width = lg.members.len().div_ceil(lanes) * lanes;
                lg.pair_a = vec![f64::NAN; lg.pairs.len() * lg.width];
                lg.pair_b = vec![f64::NAN; lg.pairs.len() * lg.width];
                lg.tri_j = vec![f64::NAN; lg.triples.len() * lg.width];
                lg.tri_i = vec![f64::NAN; lg.triples.len() * lg.width];
                lg.tri_k = vec![f64::NAN; lg.triples.len() * lg.width];
                for (lane, &ri) in lg.members.iter().enumerate() {
                    let designed =
                        requests[ri].arch.frequencies().expect("grouped request has a plan");
                    let designed = designed.as_slice();
                    for (pi, &(a, b)) in lg.pairs.iter().enumerate() {
                        lg.pair_a[pi * lg.width + lane] = designed[a as usize];
                        lg.pair_b[pi * lg.width + lane] = designed[b as usize];
                    }
                    for (ti, &(j, i, k)) in lg.triples.iter().enumerate() {
                        lg.tri_j[ti * lg.width + lane] = designed[j as usize];
                        lg.tri_i[ti * lg.width + lane] = designed[i as usize];
                        lg.tri_k[ti * lg.width + lane] = designed[k as usize];
                    }
                }
            }
            g.width_total = g.lane_groups.iter().map(|lg| lg.width).sum();
        }

        // One flat stream-group x chunk grid over the pool: coarse units
        // (a chunk regenerates its noise and checks every group member),
        // fixed count, summed in fixed order — identical at every pool
        // width.
        let unit_tallies = qpd_par::par_indices(groups.len() * CHUNKS as usize, |u| {
            run_unit(&groups[u / CHUNKS as usize], (u % CHUNKS as usize) as u64, tier)
        });

        for (gi, g) in groups.iter().enumerate() {
            let mut acc = vec![0i64; g.width_total];
            for chunk in 0..CHUNKS as usize {
                let part = &unit_tallies[gi * CHUNKS as usize + chunk];
                for (slot, &t) in acc.iter_mut().zip(part) {
                    *slot += t;
                }
            }
            let mut off = 0;
            for lg in &g.lane_groups {
                for (lane, &ri) in lg.members.iter().enumerate() {
                    let successes = acc[off + lane] as u64;
                    results[ri] = Some(Ok(YieldEstimate::new(successes, g.trials)));
                }
                off += lg.width;
            }
        }
        results.into_iter().map(|r| r.expect("every request resolved")).collect()
    }
}

/// Runs one chunk of one stream group: regenerates the chunk's noise
/// stream exactly as the singleton path does, feeding every bulk fill to
/// every lane group of the group. Returns per-lane success tallies, lane
/// groups concatenated in order.
fn run_unit(g: &StreamGroup, chunk: u64, tier: SimdTier) -> Vec<i64> {
    let mut tallies = vec![0i64; g.width_total];
    let lo = g.trials * chunk / CHUNKS;
    let hi = g.trials * (chunk + 1) / CHUNKS;
    if lo == hi {
        return tallies;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(g.seed ^ CHUNK_SEED_MUL.wrapping_mul(chunk + 1));
    let model = FabricationModel::new(g.sigma_ghz);
    let batch_rows = (BULK_NOISE_SAMPLES / g.n).max(1);
    let mut noise = vec![0.0f64; batch_rows * g.n];
    let mut remaining = hi - lo;
    while remaining > 0 {
        let rows = (batch_rows as u64).min(remaining) as usize;
        let buf = &mut noise[..rows * g.n];
        model.sample_into(&mut rng, buf);
        let mut off = 0;
        for lg in &g.lane_groups {
            run_rows(tier, buf, g.n, lg, &mut tallies[off..off + lg.width]);
            off += lg.width;
        }
        remaining -= rows as u64;
    }
    tallies
}

/// Dispatches one noise block to the best kernel. All kernels are
/// bit-identical (IEEE-exact counterparts of the singleton predicates),
/// so host SIMD support never changes results.
fn run_rows(tier: SimdTier, noise: &[f64], n: usize, lg: &LaneGroup, tallies: &mut [i64]) {
    #[cfg(target_arch = "x86_64")]
    match tier {
        // SAFETY: the tier was runtime-detected in `simd_tier`.
        SimdTier::Avx512 => return unsafe { batch_avx512::run_rows(noise, n, lg, tallies) },
        SimdTier::Avx2 => return unsafe { batch_avx2::run_rows(noise, n, lg, tallies) },
        SimdTier::Scalar => {}
    }
    let _ = tier;
    run_rows_scalar(noise, n, lg, tallies);
}

/// Counts, per candidate lane, the noise rows whose post-fabrication
/// frequencies stay collision-free — the scalar reference kernel and the
/// semantic definition the SIMD kernels must match bit-for-bit. Per
/// (row, lane) this is exactly the singleton check: the same
/// `designed + noise` operands through the same predicates in the same
/// order, early exit included.
fn run_rows_scalar(noise: &[f64], n: usize, lg: &LaneGroup, tallies: &mut [i64]) {
    let p = &lg.params;
    let w = lg.width;
    for row in noise.chunks_exact(n) {
        'lane: for (lane, slot) in tallies.iter_mut().enumerate().take(lg.members.len()) {
            for (pi, &(a, b)) in lg.pairs.iter().enumerate() {
                let fa = lg.pair_a[pi * w + lane] + row[a as usize];
                let fb = lg.pair_b[pi * w + lane] + row[b as usize];
                if p.pair_collides(fa, fb) {
                    continue 'lane;
                }
            }
            for (ti, &(j, i, k)) in lg.triples.iter().enumerate() {
                let fj = lg.tri_j[ti * w + lane] + row[j as usize];
                let fi = lg.tri_i[ti * w + lane] + row[i as usize];
                let fk = lg.tri_k[ti * w + lane] + row[k as usize];
                if p.triple_collides(fj, fi, fk) {
                    continue 'lane;
                }
            }
            *slot += 1;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod batch_avx2 {
    //! Four candidates per vector. Every operation is an IEEE-exact
    //! counterpart of the scalar kernel (add/sub/mul/abs/ordered
    //! compare — no FMA, no reassociation), so the tallies are
    //! bit-identical to [`super::run_rows_scalar`]; the test suite
    //! asserts it.

    use std::arch::x86_64::*;

    use super::LaneGroup;

    /// Lanes per vector.
    pub const LANES: usize = 4;

    /// As [`super::run_rows_scalar`]; `lg.width` is a multiple of
    /// [`LANES`], pad lanes hold NaN operands (ordered compares never
    /// fire on them) and their tallies are discarded by the caller.
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn run_rows(noise: &[f64], n: usize, lg: &LaneGroup, tallies: &mut [i64]) {
        debug_assert_eq!(lg.width % LANES, 0);
        debug_assert_eq!(tallies.len(), lg.width);
        let p = &lg.params;
        let gap = -p.anharmonicity_ghz;
        let sign = _mm256_set1_pd(-0.0);
        let v_gap = _mm256_set1_pd(gap);
        let v_g2 = _mm256_set1_pd(gap / 2.0);
        let v_deg = _mm256_set1_pd(p.t_degenerate_ghz);
        let v_half = _mm256_set1_pd(p.t_half_ghz);
        let v_full = _mm256_set1_pd(p.t_full_ghz);
        let v_two = _mm256_set1_pd(p.t_two_photon_ghz);
        let v_2 = _mm256_set1_pd(2.0);
        let ones = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
        let abs = |x: __m256d| _mm256_andnot_pd(sign, x);
        let w = lg.width;

        for row in noise.chunks_exact(n) {
            for block in 0..w / LANES {
                let base = block * LANES;
                let mut coll = _mm256_setzero_pd();
                for (pi, &(a, b)) in lg.pairs.iter().enumerate() {
                    let fa = _mm256_add_pd(
                        _mm256_loadu_pd(lg.pair_a.as_ptr().add(pi * w + base)),
                        _mm256_set1_pd(row[a as usize]),
                    );
                    let fb = _mm256_add_pd(
                        _mm256_loadu_pd(lg.pair_b.as_ptr().add(pi * w + base)),
                        _mm256_set1_pd(row[b as usize]),
                    );
                    let d = abs(_mm256_sub_pd(fa, fb));
                    let m = _mm256_or_pd(
                        _mm256_or_pd(
                            _mm256_cmp_pd::<_CMP_LT_OQ>(d, v_deg),
                            _mm256_cmp_pd::<_CMP_LT_OQ>(abs(_mm256_sub_pd(d, v_g2)), v_half),
                        ),
                        _mm256_or_pd(
                            _mm256_cmp_pd::<_CMP_LT_OQ>(abs(_mm256_sub_pd(d, v_gap)), v_full),
                            _mm256_cmp_pd::<_CMP_GT_OQ>(d, v_gap),
                        ),
                    );
                    coll = _mm256_or_pd(coll, m);
                    // At the paper's yields most trials collide early, so
                    // the all-lanes check earns its movemask.
                    if _mm256_movemask_pd(coll) == 0xF {
                        break;
                    }
                }
                if _mm256_movemask_pd(coll) != 0xF {
                    for (ti, &(j, i, k)) in lg.triples.iter().enumerate() {
                        let fj = _mm256_add_pd(
                            _mm256_loadu_pd(lg.tri_j.as_ptr().add(ti * w + base)),
                            _mm256_set1_pd(row[j as usize]),
                        );
                        let fi = _mm256_add_pd(
                            _mm256_loadu_pd(lg.tri_i.as_ptr().add(ti * w + base)),
                            _mm256_set1_pd(row[i as usize]),
                        );
                        let fk = _mm256_add_pd(
                            _mm256_loadu_pd(lg.tri_k.as_ptr().add(ti * w + base)),
                            _mm256_set1_pd(row[k as usize]),
                        );
                        let d = abs(_mm256_sub_pd(fi, fk));
                        // ((2 f_j - gap) - f_i) - f_k: the scalar
                        // association.
                        let term = _mm256_sub_pd(
                            _mm256_sub_pd(_mm256_sub_pd(_mm256_mul_pd(v_2, fj), v_gap), fi),
                            fk,
                        );
                        let m = _mm256_or_pd(
                            _mm256_or_pd(
                                _mm256_cmp_pd::<_CMP_LT_OQ>(d, v_deg),
                                _mm256_cmp_pd::<_CMP_LT_OQ>(abs(_mm256_sub_pd(d, v_gap)), v_full),
                            ),
                            _mm256_cmp_pd::<_CMP_LT_OQ>(abs(term), v_two),
                        );
                        coll = _mm256_or_pd(coll, m);
                        if _mm256_movemask_pd(coll) == 0xF {
                            break;
                        }
                    }
                }
                // Clean lanes are all-ones after andnot; subtracting the
                // -1 pattern increments their tallies.
                let clean = _mm256_andnot_pd(coll, ones);
                let t = _mm256_loadu_si256(tallies.as_ptr().add(base).cast::<__m256i>());
                let updated = _mm256_sub_epi64(t, _mm256_castpd_si256(clean));
                _mm256_storeu_si256(tallies.as_mut_ptr().add(base).cast::<__m256i>(), updated);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod batch_avx512 {
    //! Eight candidates per vector on AVX-512F; same exactness contract
    //! as [`super::batch_avx2`].

    use std::arch::x86_64::*;

    use super::LaneGroup;

    /// Lanes per vector.
    pub const LANES: usize = 8;

    /// As [`super::run_rows_scalar`]; `lg.width` is a multiple of
    /// [`LANES`], pads hold NaN.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn run_rows(noise: &[f64], n: usize, lg: &LaneGroup, tallies: &mut [i64]) {
        debug_assert_eq!(lg.width % LANES, 0);
        debug_assert_eq!(tallies.len(), lg.width);
        let p = &lg.params;
        let gap = -p.anharmonicity_ghz;
        let v_gap = _mm512_set1_pd(gap);
        let v_g2 = _mm512_set1_pd(gap / 2.0);
        let v_deg = _mm512_set1_pd(p.t_degenerate_ghz);
        let v_half = _mm512_set1_pd(p.t_half_ghz);
        let v_full = _mm512_set1_pd(p.t_full_ghz);
        let v_two = _mm512_set1_pd(p.t_two_photon_ghz);
        let v_2 = _mm512_set1_pd(2.0);
        let one = _mm512_set1_epi64(1);
        let w = lg.width;

        for row in noise.chunks_exact(n) {
            for block in 0..w / LANES {
                let base = block * LANES;
                let mut coll: __mmask8 = 0;
                for (pi, &(a, b)) in lg.pairs.iter().enumerate() {
                    let fa = _mm512_add_pd(
                        _mm512_loadu_pd(lg.pair_a.as_ptr().add(pi * w + base)),
                        _mm512_set1_pd(row[a as usize]),
                    );
                    let fb = _mm512_add_pd(
                        _mm512_loadu_pd(lg.pair_b.as_ptr().add(pi * w + base)),
                        _mm512_set1_pd(row[b as usize]),
                    );
                    let d = _mm512_abs_pd(_mm512_sub_pd(fa, fb));
                    coll |= _mm512_cmp_pd_mask::<_CMP_LT_OQ>(d, v_deg)
                        | _mm512_cmp_pd_mask::<_CMP_LT_OQ>(
                            _mm512_abs_pd(_mm512_sub_pd(d, v_g2)),
                            v_half,
                        )
                        | _mm512_cmp_pd_mask::<_CMP_LT_OQ>(
                            _mm512_abs_pd(_mm512_sub_pd(d, v_gap)),
                            v_full,
                        )
                        | _mm512_cmp_pd_mask::<_CMP_GT_OQ>(d, v_gap);
                    if coll == 0xFF {
                        break;
                    }
                }
                if coll != 0xFF {
                    for (ti, &(j, i, k)) in lg.triples.iter().enumerate() {
                        let fj = _mm512_add_pd(
                            _mm512_loadu_pd(lg.tri_j.as_ptr().add(ti * w + base)),
                            _mm512_set1_pd(row[j as usize]),
                        );
                        let fi = _mm512_add_pd(
                            _mm512_loadu_pd(lg.tri_i.as_ptr().add(ti * w + base)),
                            _mm512_set1_pd(row[i as usize]),
                        );
                        let fk = _mm512_add_pd(
                            _mm512_loadu_pd(lg.tri_k.as_ptr().add(ti * w + base)),
                            _mm512_set1_pd(row[k as usize]),
                        );
                        let d = _mm512_abs_pd(_mm512_sub_pd(fi, fk));
                        let term = _mm512_sub_pd(
                            _mm512_sub_pd(_mm512_sub_pd(_mm512_mul_pd(v_2, fj), v_gap), fi),
                            fk,
                        );
                        coll |= _mm512_cmp_pd_mask::<_CMP_LT_OQ>(d, v_deg)
                            | _mm512_cmp_pd_mask::<_CMP_LT_OQ>(
                                _mm512_abs_pd(_mm512_sub_pd(d, v_gap)),
                                v_full,
                            )
                            | _mm512_cmp_pd_mask::<_CMP_LT_OQ>(_mm512_abs_pd(term), v_two);
                        if coll == 0xFF {
                            break;
                        }
                    }
                }
                let t = _mm512_loadu_si512(tallies.as_ptr().add(base).cast::<__m512i>());
                let updated = _mm512_mask_add_epi64(t, !coll, t, one);
                _mm512_storeu_si512(tallies.as_mut_ptr().add(base).cast::<__m512i>(), updated);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::HardwareFamily;
    use qpd_topology::{ibm, Architecture, BusMode, FrequencyPlan};

    fn path3(freqs: [f64; 3]) -> Architecture {
        let mut b = Architecture::builder("path3");
        b.qubit(0, 0).qubit(0, 1).qubit(0, 2);
        b.build().unwrap().with_frequencies(FrequencyPlan::new(freqs.to_vec())).unwrap()
    }

    /// A distinct in-band frequency plan: compress toward 5.00 GHz and
    /// shift up, staying inside the allowed 5.00-5.34 GHz band.
    fn reshaped(arch: &Architecture, scale: f64, offset: f64) -> Architecture {
        let plan = arch.frequencies().unwrap().as_slice().to_vec();
        let moved: Vec<f64> = plan.iter().map(|f| 5.00 + (f - 5.00) * scale + offset).collect();
        arch.clone().with_frequencies(FrequencyPlan::new(moved)).unwrap()
    }

    #[test]
    fn batch_matches_singletons_bitwise() {
        // Mixed stream groups, lane groups, topologies, and hardware
        // families in one batch: every slot must equal its own singleton
        // run exactly.
        let sparse = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
        let dense = ibm::ibm_16q_2x8(BusMode::MaxFourQubit);
        let sparse_a = reshaped(&sparse, 0.95, 0.004);
        let sparse_b = reshaped(&sparse, 0.90, 0.010);
        let small = path3([5.00, 5.12, 5.24]);
        let base = YieldSimulator::new().with_trials(1_500).with_seed(21);
        let requests = vec![
            BatchRequest { simulator: base, arch: &sparse },
            BatchRequest { simulator: base, arch: &sparse_a },
            BatchRequest { simulator: base, arch: &dense },
            BatchRequest {
                simulator: base.with_hardware(HardwareFamily::TunableCoupler),
                arch: &sparse,
            },
            BatchRequest {
                simulator: base.with_hardware(HardwareFamily::HeavyHex),
                arch: &sparse_b,
            },
            BatchRequest { simulator: base.with_seed(22), arch: &sparse },
            BatchRequest { simulator: base.with_trials(700), arch: &sparse_a },
            BatchRequest { simulator: base.with_sigma_ghz(0.045), arch: &dense },
            BatchRequest { simulator: base, arch: &small },
            BatchRequest { simulator: base, arch: &sparse }, // duplicate
        ];
        let batch = YieldSimulator::evaluate_batch(&requests);
        for (i, (req, got)) in requests.iter().zip(&batch).enumerate() {
            let singleton = req.simulator.estimate(req.arch);
            assert_eq!(got, &singleton, "request {i}");
        }
        // Same candidate twice resolves identically.
        assert_eq!(batch[0], batch[9]);
    }

    #[test]
    fn batch_is_thread_invariant() {
        let sparse = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
        let moved = reshaped(&sparse, 0.95, 0.005);
        let sim = YieldSimulator::new().with_trials(2_000).with_seed(5);
        let requests = vec![
            BatchRequest { simulator: sim, arch: &sparse },
            BatchRequest { simulator: sim, arch: &moved },
            BatchRequest {
                simulator: sim.with_hardware(HardwareFamily::TunableCoupler),
                arch: &sparse,
            },
        ];
        let reference = YieldSimulator::evaluate_batch(&requests);
        for threads in [1, 2, 8] {
            let pooled =
                qpd_par::with_threads(threads, || YieldSimulator::evaluate_batch(&requests));
            assert_eq!(reference, pooled, "threads {threads}");
        }
    }

    #[test]
    fn missing_plan_errors_in_place() {
        let mut b = Architecture::builder("bare");
        b.qubit(0, 0).qubit(0, 1);
        let bare = b.build().unwrap();
        let planned = path3([5.00, 5.12, 5.24]);
        let sim = YieldSimulator::new().with_trials(300);
        let requests = vec![
            BatchRequest { simulator: sim, arch: &planned },
            BatchRequest { simulator: sim, arch: &bare },
            BatchRequest { simulator: sim, arch: &planned },
        ];
        let batch = YieldSimulator::evaluate_batch(&requests);
        assert!(batch[0].is_ok());
        assert_eq!(batch[1], Err(YieldError::MissingFrequencyPlan));
        assert_eq!(batch[0], batch[2]);
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(YieldSimulator::evaluate_batch(&[]).is_empty());
    }

    #[test]
    fn tiny_trial_counts_still_match() {
        // Fewer trials than chunks: some chunks are empty on both paths.
        let arch = path3([5.00, 5.12, 5.24]);
        for trials in [1, 2, 7, 15, 16, 17] {
            let sim = YieldSimulator::new().with_trials(trials).with_seed(3);
            let batch =
                YieldSimulator::evaluate_batch(&[BatchRequest { simulator: sim, arch: &arch }]);
            assert_eq!(batch[0], sim.estimate(&arch), "trials {trials}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_kernels_match_scalar_kernel() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        // A synthetic lane group over a 5-qubit chip: 4 pairs, 4 triples,
        // 11 members (ragged: pads exercise the NaN lanes).
        let params = CollisionParams::default();
        let pairs: Vec<(u32, u32)> = vec![(0, 1), (1, 2), (2, 3), (3, 4)];
        let triples: Vec<(u32, u32, u32)> = vec![(1, 0, 2), (2, 1, 3), (3, 2, 4), (1, 2, 0)];
        let members = 11usize;
        let build = |width: usize| {
            let mut lg = LaneGroup {
                params,
                pairs: pairs.clone(),
                triples: triples.clone(),
                members: (0..members).collect(),
                width,
                pair_a: vec![f64::NAN; pairs.len() * width],
                pair_b: vec![f64::NAN; pairs.len() * width],
                tri_j: vec![f64::NAN; triples.len() * width],
                tri_i: vec![f64::NAN; triples.len() * width],
                tri_k: vec![f64::NAN; triples.len() * width],
            };
            // Deterministic near-band designed frequencies per member.
            let designed = |m: usize, q: u32| 5.00 + 0.017 * ((m as f64) + 0.7 * q as f64).sin();
            for m in 0..members {
                for (pi, &(a, b)) in pairs.iter().enumerate() {
                    lg.pair_a[pi * width + m] = designed(m, a);
                    lg.pair_b[pi * width + m] = designed(m, b);
                }
                for (ti, &(j, i, k)) in triples.iter().enumerate() {
                    lg.tri_j[ti * width + m] = designed(m, j);
                    lg.tri_i[ti * width + m] = designed(m, i);
                    lg.tri_k[ti * width + m] = designed(m, k);
                }
            }
            lg
        };
        // Pseudo-noise rows spanning clean and colliding detunings.
        let n = 5usize;
        let mut x = 0.37f64;
        let noise: Vec<f64> = (0..257 * n)
            .map(|_| {
                x = (x * 997.0 + 0.1234).fract();
                0.12 * x - 0.06
            })
            .collect();
        let scalar_lg = build(members);
        let mut scalar = vec![0i64; members];
        run_rows_scalar(&noise, n, &scalar_lg, &mut scalar);
        assert!(scalar.iter().any(|&c| c > 0) && scalar.iter().any(|&c| c < 257), "{scalar:?}");

        let avx2_lg = build(members.div_ceil(batch_avx2::LANES) * batch_avx2::LANES);
        let mut avx2 = vec![0i64; avx2_lg.width];
        unsafe { batch_avx2::run_rows(&noise, n, &avx2_lg, &mut avx2) };
        assert_eq!(scalar, avx2[..members].to_vec(), "avx2");

        if std::arch::is_x86_feature_detected!("avx512f") {
            let avx512_lg = build(members.div_ceil(batch_avx512::LANES) * batch_avx512::LANES);
            let mut avx512 = vec![0i64; avx512_lg.width];
            unsafe { batch_avx512::run_rows(&noise, n, &avx512_lg, &mut avx512) };
            assert_eq!(scalar, avx512[..members].to_vec(), "avx512");
        }
    }

    #[test]
    fn grouped_batch_matches_across_many_plans() {
        // The bench-shaped workload: one topology, many frequency plans,
        // one shared stream group.
        let base = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
        let plans: Vec<Architecture> =
            (0..13).map(|i| reshaped(&base, 0.90, 0.002 * i as f64)).collect();
        let sim = YieldSimulator::new().with_trials(900).with_seed(17);
        let requests: Vec<BatchRequest<'_>> =
            plans.iter().map(|arch| BatchRequest { simulator: sim, arch }).collect();
        let batch = YieldSimulator::evaluate_batch(&requests);
        for (arch, got) in plans.iter().zip(&batch) {
            assert_eq!(got, &sim.estimate(arch));
        }
    }
}
