//! Local-region yield evaluation for frequency allocation (paper §4.3).
//!
//! Algorithm 3 assigns frequencies one qubit at a time; for each candidate
//! frequency it simulates yield only within the new qubit's *local
//! region* — the subgraph where a collision involving the new qubit is
//! possible (distance <= 2 in the coupling graph: conditions 1–4 involve
//! direct neighbors, conditions 5–7 reach neighbors-of-neighbors).
//!
//! All candidates for one decision are evaluated under **common random
//! numbers** (the same noise samples), so candidate ranking reflects the
//! frequencies rather than sampling luck, and the whole allocation is
//! deterministic in the seed.
//!
//! # Hot path
//!
//! This is the allocator's inner loop, so it is engineered accordingly:
//!
//! - [`CompiledRegions`] precompiles, once per [`Architecture`], each
//!   qubit's region membership, its q-vs-context pair/triple constraint
//!   lists, and the inverse slot table — the per-decision `position()`
//!   scans of the naive formulation disappear entirely;
//! - trials that survive the candidate-independent *context* constraints
//!   are stored in flat structure-of-arrays records holding exactly the
//!   operands the per-candidate constraints read (no per-trial vectors);
//! - candidate evaluation fans out over the [`qpd_par`] worker pool; the
//!   common-random-numbers scheme makes the counts — and therefore the
//!   ranking — bit-identical for any thread count, including one.
//!
//! The naive formulation is retained as
//! [`LocalYieldEvaluator::evaluate_candidates_reference`]; the test suite
//! proves count-equality between the two on every architecture it tries.

use std::collections::HashMap;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qpd_topology::Architecture;

use crate::collision::CollisionParams;
use crate::model::FabricationModel;

/// Sentinel for "member not active in this decision".
const INACTIVE: u32 = u32::MAX;

/// Record-layout offsets of one surviving trial in the pass-2 SoA block:
/// `[noise_q, pair operands, j==q triples, i==q triples, k==q triples]`.
#[derive(Debug, Clone, Copy)]
struct RecordLayout {
    /// Total `f64`s per record.
    stride: usize,
    /// End of the pair operands (`1..pairs_end`).
    pairs_end: usize,
    /// End of the `(f_i, f_k)` operands of the j==q triples.
    tj_end: usize,
    /// End of the `(2 f_j - gap, f_k)` operands of the i==q triples.
    ti_end: usize,
}

/// Counts, for every candidate, the records in `rows` whose q-involving
/// constraints stay collision-free — the scalar pass-2 kernel and the
/// semantic definition the SIMD kernel must match bit-for-bit.
fn pass2_block_scalar(
    rows: &[f64],
    layout: RecordLayout,
    candidates: &[f64],
    p: &CollisionParams,
    counts: &mut [u64],
) {
    let RecordLayout { stride, pairs_end, tj_end, ti_end } = layout;
    let gap = -p.anharmonicity_ghz;
    let g2 = gap / 2.0;
    for row in rows.chunks_exact(stride) {
        let noise_q = row[0];
        for (slot, &candidate) in counts.iter_mut().zip(candidates) {
            let fq = noise_q + candidate;
            let mut collided = false;
            for &fo in &row[1..pairs_end] {
                let d = (fq - fo).abs();
                if d < p.t_degenerate_ghz
                    || (d - g2).abs() < p.t_half_ghz
                    || (d - gap).abs() < p.t_full_ghz
                    || d > gap
                {
                    collided = true;
                    break;
                }
            }
            if !collided && tj_end > pairs_end {
                let two_fq = 2.0 * fq - gap;
                for ik in row[pairs_end..tj_end].chunks_exact(2) {
                    if ((two_fq - ik[0]) - ik[1]).abs() < p.t_two_photon_ghz {
                        collided = true;
                        break;
                    }
                }
            }
            if !collided {
                for t in row[tj_end..ti_end].chunks_exact(2) {
                    let (t1, fk) = (t[0], t[1]);
                    let d = (fq - fk).abs();
                    if d < p.t_degenerate_ghz
                        || (d - gap).abs() < p.t_full_ghz
                        || ((t1 - fq) - fk).abs() < p.t_two_photon_ghz
                    {
                        collided = true;
                        break;
                    }
                }
            }
            if !collided {
                for t in row[ti_end..].chunks_exact(2) {
                    let (t2, fi) = (t[0], t[1]);
                    let d = (fi - fq).abs();
                    if d < p.t_degenerate_ghz
                        || (d - gap).abs() < p.t_full_ghz
                        || (t2 - fq).abs() < p.t_two_photon_ghz
                    {
                        collided = true;
                        break;
                    }
                }
            }
            *slot += !collided as u64;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod pass2_avx2 {
    //! Four candidates per vector. Every operation is an IEEE-exact
    //! counterpart of the scalar kernel (add/sub/mul/abs/compare — no
    //! FMA, no reassociation), so the counts are bit-identical to
    //! [`super::pass2_block_scalar`]; the test suite asserts it.

    use std::arch::x86_64::*;

    use super::RecordLayout;
    use crate::collision::CollisionParams;

    /// Lanes per vector.
    pub const LANES: usize = 4;

    /// As [`super::pass2_block_scalar`], on candidate/count slices padded
    /// to a multiple of [`LANES`] (pad candidates with NaN: every compare
    /// is ordered, so NaN lanes never collide and their counts are
    /// discarded by the caller).
    ///
    /// # Safety
    ///
    /// Requires AVX2; `candidates.len() == counts.len()` and a multiple
    /// of [`LANES`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn pass2_block(
        rows: &[f64],
        layout: RecordLayout,
        candidates: &[f64],
        p: &CollisionParams,
        counts: &mut [i64],
    ) {
        debug_assert_eq!(candidates.len(), counts.len());
        debug_assert_eq!(candidates.len() % LANES, 0);
        let RecordLayout { stride, pairs_end, tj_end, ti_end } = layout;
        let gap = -p.anharmonicity_ghz;
        let sign = _mm256_set1_pd(-0.0);
        let v_gap = _mm256_set1_pd(gap);
        let v_g2 = _mm256_set1_pd(gap / 2.0);
        let v_deg = _mm256_set1_pd(p.t_degenerate_ghz);
        let v_half = _mm256_set1_pd(p.t_half_ghz);
        let v_full = _mm256_set1_pd(p.t_full_ghz);
        let v_two = _mm256_set1_pd(p.t_two_photon_ghz);
        let v_2 = _mm256_set1_pd(2.0);
        let ones = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
        let abs = |x: __m256d| _mm256_andnot_pd(sign, x);

        for row in rows.chunks_exact(stride) {
            let noise_q = _mm256_set1_pd(row[0]);
            for (cand4, count4) in
                candidates.chunks_exact(LANES).zip(counts.chunks_exact_mut(LANES))
            {
                let c = _mm256_loadu_pd(cand4.as_ptr());
                let fq = _mm256_add_pd(noise_q, c);
                let mut coll = _mm256_setzero_pd();
                for &fo in &row[1..pairs_end] {
                    let d = abs(_mm256_sub_pd(fq, _mm256_set1_pd(fo)));
                    let m = _mm256_or_pd(
                        _mm256_or_pd(
                            _mm256_cmp_pd::<_CMP_LT_OQ>(d, v_deg),
                            _mm256_cmp_pd::<_CMP_LT_OQ>(abs(_mm256_sub_pd(d, v_g2)), v_half),
                        ),
                        _mm256_or_pd(
                            _mm256_cmp_pd::<_CMP_LT_OQ>(abs(_mm256_sub_pd(d, v_gap)), v_full),
                            _mm256_cmp_pd::<_CMP_GT_OQ>(d, v_gap),
                        ),
                    );
                    coll = _mm256_or_pd(coll, m);
                }
                if _mm256_movemask_pd(coll) != 0xF {
                    let two_fq = _mm256_sub_pd(_mm256_mul_pd(v_2, fq), v_gap);
                    for ik in row[pairs_end..tj_end].chunks_exact(2) {
                        let term = _mm256_sub_pd(
                            _mm256_sub_pd(two_fq, _mm256_set1_pd(ik[0])),
                            _mm256_set1_pd(ik[1]),
                        );
                        coll = _mm256_or_pd(coll, _mm256_cmp_pd::<_CMP_LT_OQ>(abs(term), v_two));
                    }
                    for t in row[tj_end..ti_end].chunks_exact(2) {
                        let (t1, fk) = (_mm256_set1_pd(t[0]), _mm256_set1_pd(t[1]));
                        let d = abs(_mm256_sub_pd(fq, fk));
                        let term = _mm256_sub_pd(_mm256_sub_pd(t1, fq), fk);
                        let m = _mm256_or_pd(
                            _mm256_or_pd(
                                _mm256_cmp_pd::<_CMP_LT_OQ>(d, v_deg),
                                _mm256_cmp_pd::<_CMP_LT_OQ>(abs(_mm256_sub_pd(d, v_gap)), v_full),
                            ),
                            _mm256_cmp_pd::<_CMP_LT_OQ>(abs(term), v_two),
                        );
                        coll = _mm256_or_pd(coll, m);
                    }
                    for t in row[ti_end..].chunks_exact(2) {
                        let (t2, fi) = (_mm256_set1_pd(t[0]), _mm256_set1_pd(t[1]));
                        let d = abs(_mm256_sub_pd(fi, fq));
                        let term = _mm256_sub_pd(t2, fq);
                        let m = _mm256_or_pd(
                            _mm256_or_pd(
                                _mm256_cmp_pd::<_CMP_LT_OQ>(d, v_deg),
                                _mm256_cmp_pd::<_CMP_LT_OQ>(abs(_mm256_sub_pd(d, v_gap)), v_full),
                            ),
                            _mm256_cmp_pd::<_CMP_LT_OQ>(abs(term), v_two),
                        );
                        coll = _mm256_or_pd(coll, m);
                    }
                }
                // Clean lanes are all-ones after andnot; subtracting the
                // -1 pattern increments their counts.
                let clean = _mm256_andnot_pd(coll, ones);
                let tallies = _mm256_loadu_si256(count4.as_ptr().cast::<__m256i>());
                let updated = _mm256_sub_epi64(tallies, _mm256_castpd_si256(clean));
                _mm256_storeu_si256(count4.as_mut_ptr().cast::<__m256i>(), updated);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod pass2_avx512 {
    //! Eight candidates per vector on AVX-512F; same exactness contract
    //! as [`super::pass2_avx2`].

    use std::arch::x86_64::*;

    use super::RecordLayout;
    use crate::collision::CollisionParams;

    /// Lanes per vector.
    pub const LANES: usize = 8;

    /// As [`super::pass2_block_scalar`], on slices padded to a multiple
    /// of [`LANES`] (candidates padded with NaN).
    ///
    /// # Safety
    ///
    /// Requires AVX-512F; `candidates.len() == counts.len()` and a
    /// multiple of [`LANES`].
    #[target_feature(enable = "avx512f")]
    pub unsafe fn pass2_block(
        rows: &[f64],
        layout: RecordLayout,
        candidates: &[f64],
        p: &CollisionParams,
        counts: &mut [i64],
    ) {
        debug_assert_eq!(candidates.len(), counts.len());
        debug_assert_eq!(candidates.len() % LANES, 0);
        let RecordLayout { stride, pairs_end, tj_end, ti_end } = layout;
        let gap = -p.anharmonicity_ghz;
        let v_gap = _mm512_set1_pd(gap);
        let v_g2 = _mm512_set1_pd(gap / 2.0);
        let v_deg = _mm512_set1_pd(p.t_degenerate_ghz);
        let v_half = _mm512_set1_pd(p.t_half_ghz);
        let v_full = _mm512_set1_pd(p.t_full_ghz);
        let v_two = _mm512_set1_pd(p.t_two_photon_ghz);
        let v_2 = _mm512_set1_pd(2.0);
        let one = _mm512_set1_epi64(1);

        for row in rows.chunks_exact(stride) {
            let noise_q = _mm512_set1_pd(row[0]);
            for (cand8, count8) in
                candidates.chunks_exact(LANES).zip(counts.chunks_exact_mut(LANES))
            {
                let c = _mm512_loadu_pd(cand8.as_ptr());
                let fq = _mm512_add_pd(noise_q, c);
                let mut coll: __mmask8 = 0;
                for &fo in &row[1..pairs_end] {
                    let d = _mm512_abs_pd(_mm512_sub_pd(fq, _mm512_set1_pd(fo)));
                    coll |= _mm512_cmp_pd_mask::<_CMP_LT_OQ>(d, v_deg)
                        | _mm512_cmp_pd_mask::<_CMP_LT_OQ>(
                            _mm512_abs_pd(_mm512_sub_pd(d, v_g2)),
                            v_half,
                        )
                        | _mm512_cmp_pd_mask::<_CMP_LT_OQ>(
                            _mm512_abs_pd(_mm512_sub_pd(d, v_gap)),
                            v_full,
                        )
                        | _mm512_cmp_pd_mask::<_CMP_GT_OQ>(d, v_gap);
                }
                if coll != 0xFF {
                    let two_fq = _mm512_sub_pd(_mm512_mul_pd(v_2, fq), v_gap);
                    for ik in row[pairs_end..tj_end].chunks_exact(2) {
                        let term = _mm512_sub_pd(
                            _mm512_sub_pd(two_fq, _mm512_set1_pd(ik[0])),
                            _mm512_set1_pd(ik[1]),
                        );
                        coll |= _mm512_cmp_pd_mask::<_CMP_LT_OQ>(_mm512_abs_pd(term), v_two);
                    }
                    for t in row[tj_end..ti_end].chunks_exact(2) {
                        let (t1, fk) = (_mm512_set1_pd(t[0]), _mm512_set1_pd(t[1]));
                        let d = _mm512_abs_pd(_mm512_sub_pd(fq, fk));
                        let term = _mm512_sub_pd(_mm512_sub_pd(t1, fq), fk);
                        coll |= _mm512_cmp_pd_mask::<_CMP_LT_OQ>(d, v_deg)
                            | _mm512_cmp_pd_mask::<_CMP_LT_OQ>(
                                _mm512_abs_pd(_mm512_sub_pd(d, v_gap)),
                                v_full,
                            )
                            | _mm512_cmp_pd_mask::<_CMP_LT_OQ>(_mm512_abs_pd(term), v_two);
                    }
                    for t in row[ti_end..].chunks_exact(2) {
                        let (t2, fi) = (_mm512_set1_pd(t[0]), _mm512_set1_pd(t[1]));
                        let d = _mm512_abs_pd(_mm512_sub_pd(fi, fq));
                        let term = _mm512_sub_pd(t2, fq);
                        coll |= _mm512_cmp_pd_mask::<_CMP_LT_OQ>(d, v_deg)
                            | _mm512_cmp_pd_mask::<_CMP_LT_OQ>(
                                _mm512_abs_pd(_mm512_sub_pd(d, v_gap)),
                                v_full,
                            )
                            | _mm512_cmp_pd_mask::<_CMP_LT_OQ>(_mm512_abs_pd(term), v_two);
                    }
                }
                let tallies = _mm512_loadu_si512(count8.as_ptr().cast::<__m512i>());
                let updated = _mm512_mask_add_epi64(tallies, !coll, tallies, one);
                _mm512_storeu_si512(count8.as_mut_ptr().cast::<__m512i>(), updated);
            }
        }
    }
}

/// SIMD tier for the vectorized kernels, detected once per process.
/// Shared by the pass-1 context filter, the pass-2 candidate kernels,
/// and the batch evaluator ([`crate::batch`]) — one detection serves
/// every dispatch site instead of per-call `is_x86_feature_detected!`.
#[derive(Clone, Copy, PartialEq)]
pub(crate) enum SimdTier {
    Scalar,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

impl SimdTier {
    /// Candidate lanes per vector at this tier (1 = scalar).
    pub(crate) fn lanes(self) -> usize {
        match self {
            SimdTier::Scalar => 1,
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => pass2_avx2::LANES,
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx512 => pass2_avx512::LANES,
        }
    }
}

pub(crate) fn simd_tier() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::atomic::{AtomicU8, Ordering};
        static STATE: AtomicU8 = AtomicU8::new(0);
        match STATE.load(Ordering::Relaxed) {
            1 => SimdTier::Scalar,
            2 => SimdTier::Avx2,
            3 => SimdTier::Avx512,
            _ => {
                let tier = if std::arch::is_x86_feature_detected!("avx512f") {
                    SimdTier::Avx512
                } else if std::arch::is_x86_feature_detected!("avx2") {
                    SimdTier::Avx2
                } else {
                    SimdTier::Scalar
                };
                let code = match tier {
                    SimdTier::Scalar => 1,
                    SimdTier::Avx2 => 2,
                    SimdTier::Avx512 => 3,
                };
                STATE.store(code, Ordering::Relaxed);
                tier
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    SimdTier::Scalar
}

/// Dispatches one pass-2 rows-block to the best kernel. All kernels are
/// bit-identical (compares and arithmetic are IEEE-exact in each), so
/// host SIMD support never changes results.
fn pass2_block(
    rows: &[f64],
    layout: RecordLayout,
    candidates: &[f64],
    p: &CollisionParams,
) -> Vec<u64> {
    let tier = simd_tier();
    #[cfg(target_arch = "x86_64")]
    if tier != SimdTier::Scalar {
        let lanes = if tier == SimdTier::Avx512 { pass2_avx512::LANES } else { pass2_avx2::LANES };
        let padded = candidates.len().div_ceil(lanes) * lanes;
        let mut cands = Vec::with_capacity(padded);
        cands.extend_from_slice(candidates);
        cands.resize(padded, f64::NAN);
        let mut tallies = vec![0i64; padded];
        // SAFETY: the required feature was detected; slices are padded
        // to the kernel's lane count.
        unsafe {
            if tier == SimdTier::Avx512 {
                pass2_avx512::pass2_block(rows, layout, &cands, p, &mut tallies);
            } else {
                pass2_avx2::pass2_block(rows, layout, &cands, p, &mut tallies);
            }
        }
        return tallies.into_iter().take(candidates.len()).map(|t| t as u64).collect();
    }
    let _ = tier;
    let mut counts = vec![0u64; candidates.len()];
    pass2_block_scalar(rows, layout, candidates, p, &mut counts);
    counts
}

/// The candidate-independent context of one decision: the remapped
/// constraint lists pass 1 filters trials against, shared by the scalar
/// and SIMD filter kernels (and by the record emitter, which reads
/// frequencies through an accessor so both layouts reuse it).
struct Pass1Ctx<'a> {
    params: &'a CollisionParams,
    /// Designed frequencies of the active columns (`0.0` at `qi`).
    base: &'a [f64],
    /// Active column count.
    m: usize,
    /// Column of the qubit being decided.
    qi: usize,
    /// `f64`s per emitted record.
    stride: usize,
    q_pair_others: &'a [u32],
    ctx_pairs: &'a [(u32, u32)],
    triples_j: &'a [(u32, u32)],
    triples_i: &'a [(u32, u32)],
    triples_k: &'a [(u32, u32)],
    ctx_triples: &'a [(u32, u32, u32)],
}

impl Pass1Ctx<'_> {
    /// Whether a trial's candidate-independent constraints collide: the
    /// pure-context pairs and triples, plus conditions 5/6 of the j==q
    /// triples (which never read q's frequency). `get` maps an active
    /// column to the trial's noisy frequency.
    fn context_collides(&self, get: impl Fn(usize) -> f64 + Copy) -> bool {
        let p = self.params;
        let gap = -p.anharmonicity_ghz;
        self.ctx_pairs.iter().any(|&(a, b)| p.pair_collides(get(a as usize), get(b as usize)))
            || self.ctx_triples.iter().any(|&(j, i, k)| {
                p.triple_collides(get(j as usize), get(i as usize), get(k as usize))
            })
            || self.triples_j.iter().any(|&(i, k)| {
                let d = (get(i as usize) - get(k as usize)).abs();
                d < p.t_degenerate_ghz || (d - gap).abs() < p.t_full_ghz
            })
    }

    /// Appends one surviving trial's flat record (see the layout comment
    /// in [`LocalYieldEvaluator::evaluate_region`]).
    fn emit_record(&self, get: impl Fn(usize) -> f64 + Copy, block: &mut Vec<f64>) {
        let gap = -self.params.anharmonicity_ghz;
        block.push(get(self.qi));
        for &o in self.q_pair_others {
            block.push(get(o as usize));
        }
        for &(i, k) in self.triples_j {
            block.push(get(i as usize));
            block.push(get(k as usize));
        }
        for &(j, k) in self.triples_i {
            block.push(2.0 * get(j as usize) - gap);
            block.push(get(k as usize));
        }
        for &(j, i) in self.triples_k {
            let fi = get(i as usize);
            block.push((2.0 * get(j as usize) - gap) - fi);
            block.push(fi);
        }
    }

    /// Filters a row-major block of noise rows into surviving records,
    /// on the best kernel the host supports. All kernels use the same
    /// IEEE-exact operations, so the surviving set — and the record
    /// bytes — never depend on host SIMD support (or on the dispatch
    /// heuristic below, which only picks who computes them).
    fn filter_rows(&self, noise: &[f64], block: &mut Vec<f64>) {
        #[cfg(target_arch = "x86_64")]
        {
            // The vector kernels pay a per-row-block transpose; with
            // only a couple of context constraints the scalar kernel's
            // early exit wins, so dispatch on the constraint count. The
            // tier itself comes from the process-wide cached detection
            // shared with pass 2 ([`simd_tier`]).
            let constraints = self.ctx_pairs.len() + self.ctx_triples.len() + self.triples_j.len();
            if constraints >= 3 {
                // SAFETY: each tier was runtime-detected in `simd_tier`.
                match simd_tier() {
                    SimdTier::Avx512 => {
                        unsafe { self.filter_rows_avx512(noise, block) };
                        return;
                    }
                    SimdTier::Avx2 => {
                        unsafe { self.filter_rows_avx2(noise, block) };
                        return;
                    }
                    SimdTier::Scalar => {}
                }
            }
        }
        self.filter_rows_scalar(noise, block);
    }

    fn filter_rows_scalar(&self, noise: &[f64], block: &mut Vec<f64>) {
        let mut freqs = vec![0.0f64; self.m];
        for noise_row in noise.chunks_exact(self.m) {
            for ((f, &b), &n) in freqs.iter_mut().zip(self.base).zip(noise_row) {
                *f = b + n;
            }
            if !self.context_collides(|i| freqs[i]) {
                self.emit_record(|i| freqs[i], block);
            }
        }
    }

    /// Four trials per vector: rows are transposed into column-major
    /// lanes, every context constraint is checked across the four trials
    /// at once, and survivors are emitted in row order. The ragged tail
    /// falls back to the scalar kernel.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn filter_rows_avx2(&self, noise: &[f64], block: &mut Vec<f64>) {
        const LANES: usize = 4;
        let m = self.m;
        let rows = noise.len() / m;
        let full_blocks = rows / LANES;
        let mut tf = vec![0.0f64; m * LANES];
        for blk in 0..full_blocks {
            let quad = &noise[blk * LANES * m..(blk + 1) * LANES * m];
            // Transpose: tf[c * LANES + lane] = base[c] + noise[lane][c]
            // — the same addition the scalar kernel performs.
            for (lane, row) in quad.chunks_exact(m).enumerate() {
                for ((c, &b), &n) in self.base.iter().enumerate().zip(row) {
                    tf[c * LANES + lane] = b + n;
                }
            }
            let collided = self.context_collided_avx2(&tf);
            for lane in 0..LANES {
                if collided & (1 << lane) == 0 {
                    self.emit_record(|i| tf[i * LANES + lane], block);
                }
            }
        }
        self.filter_rows_scalar(&noise[full_blocks * LANES * m..], block);
    }

    /// Lane mask (bit set = collided) of the four transposed trials in
    /// `tf`. Every operation is an IEEE-exact counterpart of
    /// [`Self::context_collides`] — add/sub/mul/abs/ordered-compare, no
    /// FMA, no reassociation — so the mask is bit-identical to four
    /// scalar evaluations.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn context_collided_avx2(&self, tf: &[f64]) -> u32 {
        use std::arch::x86_64::*;
        const LANES: usize = 4;
        const ALL: u32 = 0xF;
        let p = self.params;
        let gap = -p.anharmonicity_ghz;
        let sign = _mm256_set1_pd(-0.0);
        let v_gap = _mm256_set1_pd(gap);
        let v_g2 = _mm256_set1_pd(gap / 2.0);
        let v_deg = _mm256_set1_pd(p.t_degenerate_ghz);
        let v_half = _mm256_set1_pd(p.t_half_ghz);
        let v_full = _mm256_set1_pd(p.t_full_ghz);
        let v_two = _mm256_set1_pd(p.t_two_photon_ghz);
        let v_2 = _mm256_set1_pd(2.0);
        let abs = |x: __m256d| _mm256_andnot_pd(sign, x);
        let col = |i: u32| _mm256_loadu_pd(tf.as_ptr().add(i as usize * LANES));

        let mut coll = _mm256_setzero_pd();
        for &(a, b) in self.ctx_pairs {
            let d = abs(_mm256_sub_pd(col(a), col(b)));
            let m = _mm256_or_pd(
                _mm256_or_pd(
                    _mm256_cmp_pd::<_CMP_LT_OQ>(d, v_deg),
                    _mm256_cmp_pd::<_CMP_LT_OQ>(abs(_mm256_sub_pd(d, v_g2)), v_half),
                ),
                _mm256_or_pd(
                    _mm256_cmp_pd::<_CMP_LT_OQ>(abs(_mm256_sub_pd(d, v_gap)), v_full),
                    _mm256_cmp_pd::<_CMP_GT_OQ>(d, v_gap),
                ),
            );
            coll = _mm256_or_pd(coll, m);
        }
        if _mm256_movemask_pd(coll) as u32 == ALL {
            return ALL;
        }
        for &(j, i, k) in self.ctx_triples {
            let (fj, fi, fk) = (col(j), col(i), col(k));
            let d = abs(_mm256_sub_pd(fi, fk));
            // ((2 f_j - gap) - f_i) - f_k: the scalar association.
            let term =
                _mm256_sub_pd(_mm256_sub_pd(_mm256_sub_pd(_mm256_mul_pd(v_2, fj), v_gap), fi), fk);
            let m = _mm256_or_pd(
                _mm256_or_pd(
                    _mm256_cmp_pd::<_CMP_LT_OQ>(d, v_deg),
                    _mm256_cmp_pd::<_CMP_LT_OQ>(abs(_mm256_sub_pd(d, v_gap)), v_full),
                ),
                _mm256_cmp_pd::<_CMP_LT_OQ>(abs(term), v_two),
            );
            coll = _mm256_or_pd(coll, m);
        }
        if _mm256_movemask_pd(coll) as u32 == ALL {
            return ALL;
        }
        for &(i, k) in self.triples_j {
            let d = abs(_mm256_sub_pd(col(i), col(k)));
            let m = _mm256_or_pd(
                _mm256_cmp_pd::<_CMP_LT_OQ>(d, v_deg),
                _mm256_cmp_pd::<_CMP_LT_OQ>(abs(_mm256_sub_pd(d, v_gap)), v_full),
            );
            coll = _mm256_or_pd(coll, m);
        }
        _mm256_movemask_pd(coll) as u32
    }

    /// Eight trials per vector on AVX-512F; otherwise exactly
    /// [`Self::filter_rows_avx2`] — transpose, lane-parallel context
    /// checks, survivors emitted in row order, scalar ragged tail.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn filter_rows_avx512(&self, noise: &[f64], block: &mut Vec<f64>) {
        const LANES: usize = 8;
        let m = self.m;
        let rows = noise.len() / m;
        let full_blocks = rows / LANES;
        let mut tf = vec![0.0f64; m * LANES];
        for blk in 0..full_blocks {
            let oct = &noise[blk * LANES * m..(blk + 1) * LANES * m];
            // Transpose: tf[c * LANES + lane] = base[c] + noise[lane][c]
            // — the same addition the scalar kernel performs.
            for (lane, row) in oct.chunks_exact(m).enumerate() {
                for ((c, &b), &n) in self.base.iter().enumerate().zip(row) {
                    tf[c * LANES + lane] = b + n;
                }
            }
            let collided = self.context_collided_avx512(&tf);
            for lane in 0..LANES {
                if collided & (1 << lane) == 0 {
                    self.emit_record(|i| tf[i * LANES + lane], block);
                }
            }
        }
        self.filter_rows_scalar(&noise[full_blocks * LANES * m..], block);
    }

    /// Lane mask (bit set = collided) of the eight transposed trials in
    /// `tf`; the IEEE-exact AVX-512 counterpart of
    /// [`Self::context_collided_avx2`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn context_collided_avx512(&self, tf: &[f64]) -> u32 {
        use std::arch::x86_64::*;
        const LANES: usize = 8;
        const ALL: u32 = 0xFF;
        let p = self.params;
        let gap = -p.anharmonicity_ghz;
        let v_gap = _mm512_set1_pd(gap);
        let v_g2 = _mm512_set1_pd(gap / 2.0);
        let v_deg = _mm512_set1_pd(p.t_degenerate_ghz);
        let v_half = _mm512_set1_pd(p.t_half_ghz);
        let v_full = _mm512_set1_pd(p.t_full_ghz);
        let v_two = _mm512_set1_pd(p.t_two_photon_ghz);
        let v_2 = _mm512_set1_pd(2.0);
        let col = |i: u32| _mm512_loadu_pd(tf.as_ptr().add(i as usize * LANES));

        let mut coll: __mmask8 = 0;
        for &(a, b) in self.ctx_pairs {
            let d = _mm512_abs_pd(_mm512_sub_pd(col(a), col(b)));
            coll |= _mm512_cmp_pd_mask::<_CMP_LT_OQ>(d, v_deg)
                | _mm512_cmp_pd_mask::<_CMP_LT_OQ>(_mm512_abs_pd(_mm512_sub_pd(d, v_g2)), v_half)
                | _mm512_cmp_pd_mask::<_CMP_LT_OQ>(_mm512_abs_pd(_mm512_sub_pd(d, v_gap)), v_full)
                | _mm512_cmp_pd_mask::<_CMP_GT_OQ>(d, v_gap);
        }
        if u32::from(coll) == ALL {
            return ALL;
        }
        for &(j, i, k) in self.ctx_triples {
            let (fj, fi, fk) = (col(j), col(i), col(k));
            let d = _mm512_abs_pd(_mm512_sub_pd(fi, fk));
            // ((2 f_j - gap) - f_i) - f_k: the scalar association.
            let term =
                _mm512_sub_pd(_mm512_sub_pd(_mm512_sub_pd(_mm512_mul_pd(v_2, fj), v_gap), fi), fk);
            coll |= _mm512_cmp_pd_mask::<_CMP_LT_OQ>(d, v_deg)
                | _mm512_cmp_pd_mask::<_CMP_LT_OQ>(_mm512_abs_pd(_mm512_sub_pd(d, v_gap)), v_full)
                | _mm512_cmp_pd_mask::<_CMP_LT_OQ>(_mm512_abs_pd(term), v_two);
        }
        if u32::from(coll) == ALL {
            return ALL;
        }
        for &(i, k) in self.triples_j {
            let d = _mm512_abs_pd(_mm512_sub_pd(col(i), col(k)));
            coll |= _mm512_cmp_pd_mask::<_CMP_LT_OQ>(d, v_deg)
                | _mm512_cmp_pd_mask::<_CMP_LT_OQ>(_mm512_abs_pd(_mm512_sub_pd(d, v_gap)), v_full);
        }
        u32::from(coll)
    }
}

/// One qubit's precompiled local region: membership and constraint lists
/// in region-local slots, independent of any particular partial
/// assignment.
#[derive(Debug, Clone)]
struct RegionTemplate {
    /// Qubits within coupling distance 2 of `q` (including `q`),
    /// ascending.
    members: Vec<u32>,
    /// Slot of `q` itself within `members`.
    q_slot: u32,
    /// Coupled pairs inside the region involving `q`: the slot of the
    /// *other* endpoint (the `q` endpoint is implicit).
    q_pair_others: Vec<u32>,
    /// Coupled pairs inside the region not involving `q`.
    ctx_pairs: Vec<(u32, u32)>,
    /// Common-neighbor triples `(j; i, k)` with `j == q`: slots of
    /// `(i, k)`.
    q_triples_j: Vec<(u32, u32)>,
    /// Triples with `i == q`: slots of `(j, k)`.
    q_triples_i: Vec<(u32, u32)>,
    /// Triples with `k == q`: slots of `(j, i)`.
    q_triples_k: Vec<(u32, u32)>,
    /// Triples not involving `q`.
    ctx_triples: Vec<(u32, u32, u32)>,
}

/// Per-architecture compiled local regions for every qubit.
///
/// Building this is `O(n · r²)` in region size `r` — done **once** per
/// architecture, it replaces the `O(m²)` linear `position()` scans the
/// naive evaluator pays on every single decision. Frequency allocation
/// revisits every qubit once per refinement sweep, so the same compiled
/// table serves hundreds of decisions.
#[derive(Debug, Clone)]
pub struct CompiledRegions {
    num_qubits: usize,
    regions: Vec<RegionTemplate>,
}

impl CompiledRegions {
    /// Compiles every qubit's local region of `arch`.
    pub fn new(arch: &Architecture) -> Self {
        let n = arch.num_qubits();
        // Inverse index table, stamped per region and cleared after use.
        let mut slot_of: Vec<u32> = vec![INACTIVE; n];
        let regions = (0..n).map(|q| Self::compile_region(arch, q, &mut slot_of)).collect();
        CompiledRegions { num_qubits: n, regions }
    }

    /// Number of qubits in the compiled architecture.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Region size (qubits within distance 2, including `q`) of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn region_size(&self, q: usize) -> usize {
        self.regions[q].members.len()
    }

    fn compile_region(arch: &Architecture, q: usize, slot_of: &mut [u32]) -> RegionTemplate {
        let members: Vec<u32> = arch.ball(q, 2).into_iter().map(|r| r as u32).collect();
        for (slot, &r) in members.iter().enumerate() {
            slot_of[r as usize] = slot as u32;
        }
        let q_slot = slot_of[q];

        let mut q_pair_others = Vec::new();
        let mut ctx_pairs = Vec::new();
        for &(a, b) in arch.coupling_edges() {
            let (sa, sb) = (slot_of[a], slot_of[b]);
            if sa == INACTIVE || sb == INACTIVE {
                continue;
            }
            if sa == q_slot {
                q_pair_others.push(sb);
            } else if sb == q_slot {
                q_pair_others.push(sa);
            } else {
                ctx_pairs.push((sa, sb));
            }
        }

        let mut q_triples_j = Vec::new();
        let mut q_triples_i = Vec::new();
        let mut q_triples_k = Vec::new();
        let mut ctx_triples = Vec::new();
        for &j in &members {
            let sj = slot_of[j as usize];
            let nbrs: Vec<u32> = arch
                .neighbors(j as usize)
                .iter()
                .map(|&x| slot_of[x])
                .filter(|&s| s != INACTIVE)
                .collect();
            for x in 0..nbrs.len() {
                for y in x + 1..nbrs.len() {
                    let (si, sk) = (nbrs[x], nbrs[y]);
                    if sj == q_slot {
                        q_triples_j.push((si, sk));
                    } else if si == q_slot {
                        q_triples_i.push((sj, sk));
                    } else if sk == q_slot {
                        q_triples_k.push((sj, si));
                    } else {
                        ctx_triples.push((sj, si, sk));
                    }
                }
            }
        }

        for &r in &members {
            slot_of[r as usize] = INACTIVE;
        }
        RegionTemplate {
            members,
            q_slot,
            q_pair_others,
            ctx_pairs,
            q_triples_j,
            q_triples_i,
            q_triples_k,
            ctx_triples,
        }
    }
}

/// Reusable state for a run of allocation decisions: cached noise
/// planes plus every per-decision buffer, so adjacent decisions (and
/// whole batches of allocations) stop paying per-call allocations and
/// stream regeneration.
///
/// # Noise planes
///
/// The common-random-numbers block of a decision for qubit `q` is a
/// prefix of one flat stream that depends **only** on the evaluator
/// seed, `q`, and the noise sigma — not on the architecture, the
/// partial assignment, or the trial count. The scratch therefore keeps
/// each stream it has generated as a *plane* keyed by the stream seed:
/// a later decision against the same stream (another proposal in a
/// batch, a re-allocation after caches were dropped) slices the plane
/// instead of re-deriving the samples. Planes grow in place when a
/// longer prefix is needed; growth restarts at the last
/// fixed-size-chunk boundary, so the bytes are identical to a direct
/// fill of the longer buffer.
///
/// Total plane storage is capped (64 MiB); exceeding the cap drops all
/// planes and regenerates on demand. Planes are derived pure data —
/// regenerating them from scratch yields bit-identical values — so
/// holding them across cache clears never changes any result.
///
/// The cache is bypassed for the legacy noise scheme and for
/// odd-length blocks (whose tail samples are drawn differently by
/// [`FabricationModel::sample_into`], breaking prefix reuse).
#[derive(Debug, Default)]
pub struct AllocScratch {
    /// Noise planes keyed by stream base seed (a pure function of the
    /// evaluator seed and the decided qubit's index).
    planes: HashMap<u64, Vec<f64>>,
    /// Total samples across all planes, for the storage cap.
    plane_samples: usize,
    /// Sigma identity of the cached planes; a different sigma draws
    /// different values from the same uniform stream, so it clears them.
    sigma_bits: u64,
    /// Direct-fill buffer for the legacy / odd-length paths.
    noise: Vec<f64>,
    /// Packed-column map of the decision's region slots.
    active: Vec<u32>,
    /// Designed frequencies of the active columns.
    base: Vec<f64>,
    q_pair_others: Vec<u32>,
    ctx_pairs: Vec<(u32, u32)>,
    triples_j: Vec<(u32, u32)>,
    triples_i: Vec<(u32, u32)>,
    triples_k: Vec<(u32, u32)>,
    ctx_triples: Vec<(u32, u32, u32)>,
    /// Concatenated surviving pass-1 records.
    live: Vec<f64>,
}

impl AllocScratch {
    /// Total plane samples retained before the cache resets: 8 Mi
    /// `f64`s = 64 MiB.
    const PLANE_CAP_SAMPLES: usize = 8 << 20;

    /// An empty scratch; buffers and planes are built on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached noise planes (diagnostics and tests).
    pub fn cached_planes(&self) -> usize {
        self.planes.len()
    }

    /// Total cached noise samples across planes (diagnostics and tests).
    pub fn cached_samples(&self) -> usize {
        self.plane_samples
    }
}

/// Evaluates candidate frequencies for one qubit against the already
/// assigned part of its local region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalYieldEvaluator {
    trials: usize,
    model: FabricationModel,
    params: CollisionParams,
    seed: u64,
    legacy_noise: bool,
}

impl LocalYieldEvaluator {
    /// Creates an evaluator.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero.
    pub fn new(trials: usize, model: FabricationModel, params: CollisionParams, seed: u64) -> Self {
        assert!(trials > 0, "need at least one trial");
        LocalYieldEvaluator { trials, model, params, seed, legacy_noise: false }
    }

    /// Switches the common-random-numbers stream to the pre-pairing
    /// single-draw Box–Muller scheme
    /// ([`FabricationModel::sample_into_unpaired`]). Only `bench_snapshot`
    /// and stream-regression tests should want this: it reproduces the
    /// historical noise stream exactly, at roughly twice the sampling
    /// cost.
    pub fn with_legacy_noise(mut self) -> Self {
        self.legacy_noise = true;
        self
    }

    /// Trial count per candidate.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// For each candidate frequency (GHz) for qubit `q`, the number of
    /// collision-free trials within `q`'s local region, given the partial
    /// assignment `assigned` (GHz; `None` = not yet assigned, ignored).
    ///
    /// Candidates share noise samples, so the counts are directly
    /// comparable; ties should be broken by the caller's own policy.
    ///
    /// Compiles `q`'s region on the fly; callers evaluating many
    /// decisions against one architecture (the frequency allocator)
    /// should build a [`CompiledRegions`] once and use
    /// [`Self::evaluate_candidates_compiled`].
    ///
    /// # Panics
    ///
    /// Panics if `assigned.len() != arch.num_qubits()`, if `q` is out of
    /// range, or if `assigned[q]` is already `Some` (the decision was
    /// already made).
    pub fn evaluate_candidates(
        &self,
        arch: &Architecture,
        assigned: &[Option<f64>],
        q: usize,
        candidates: &[f64],
    ) -> Vec<u64> {
        assert!(q < arch.num_qubits(), "qubit out of range");
        let mut slot_of = vec![INACTIVE; arch.num_qubits()];
        let region = CompiledRegions {
            num_qubits: arch.num_qubits(),
            regions: vec![CompiledRegions::compile_region(arch, q, &mut slot_of)],
        };
        let mut scratch = AllocScratch::new();
        self.evaluate_region(
            &region.regions[0],
            region.num_qubits,
            assigned,
            q,
            candidates,
            &mut scratch,
        )
    }

    /// [`Self::evaluate_candidates`] against a prebuilt
    /// [`CompiledRegions`] table — the allocator's hot path.
    ///
    /// # Panics
    ///
    /// As [`Self::evaluate_candidates`]; `regions` must have been
    /// compiled from the same architecture `assigned` refers to.
    pub fn evaluate_candidates_compiled(
        &self,
        regions: &CompiledRegions,
        assigned: &[Option<f64>],
        q: usize,
        candidates: &[f64],
    ) -> Vec<u64> {
        let mut scratch = AllocScratch::new();
        self.evaluate_candidates_compiled_with(regions, assigned, q, candidates, &mut scratch)
    }

    /// [`Self::evaluate_candidates_compiled`] with a caller-held
    /// [`AllocScratch`]: decision buffers are reused and noise planes
    /// are sliced from the scratch's cache instead of re-derived. The
    /// counts are bit-identical to the scratch-free entry point for any
    /// sequence of calls, scratch sharing, and thread count.
    ///
    /// # Panics
    ///
    /// As [`Self::evaluate_candidates_compiled`].
    pub fn evaluate_candidates_compiled_with(
        &self,
        regions: &CompiledRegions,
        assigned: &[Option<f64>],
        q: usize,
        candidates: &[f64],
        scratch: &mut AllocScratch,
    ) -> Vec<u64> {
        assert!(q < regions.num_qubits, "qubit out of range");
        self.evaluate_region(
            &regions.regions[q],
            regions.num_qubits,
            assigned,
            q,
            candidates,
            scratch,
        )
    }

    /// Samples per independent noise stream in the modern fill: the
    /// buffer is cut into fixed-size chunks, each with its own
    /// counter-derived seed, so the fill parallelizes while staying
    /// bit-identical for every thread count (chunk boundaries never
    /// depend on the worker count).
    const NOISE_STREAM_SAMPLES: usize = 4_096;

    /// The base seed of qubit `q`'s noise stream family — a pure
    /// function of the evaluator seed and `q`, which is what makes the
    /// [`AllocScratch`] plane cache valid across architectures.
    fn stream_seed(&self, q: usize) -> u64 {
        self.seed ^ (0xd134_2543_de82_ef95u64.wrapping_mul(q as u64 + 1))
    }

    /// Draws the common-random-numbers noise block for qubit `q`'s
    /// decision: `trials x m` samples from the per-qubit stream family.
    fn fill_noise(&self, q: usize, noise: &mut [f64]) {
        let base_seed = self.stream_seed(q);
        if self.legacy_noise {
            // The historical scheme: one serial stream of single-draw
            // Box–Muller samples.
            let mut rng = ChaCha8Rng::seed_from_u64(base_seed);
            self.model.sample_into_unpaired(&mut rng, noise);
        } else {
            let model = self.model;
            Self::fill_stream_chunks(base_seed, 0, &model, noise);
        }
    }

    /// Fills `noise` with the modern stream starting at absolute chunk
    /// index `first_chunk` (the slice must start on a chunk boundary of
    /// the flat stream). Chunk contents depend only on the base seed and
    /// the absolute chunk index, so suffix fills splice bit-identically
    /// into a longer buffer.
    fn fill_stream_chunks(
        base_seed: u64,
        first_chunk: usize,
        model: &FabricationModel,
        noise: &mut [f64],
    ) {
        qpd_par::par_chunks_mut(noise, Self::NOISE_STREAM_SAMPLES, |chunk_idx, chunk| {
            let absolute = (first_chunk + chunk_idx) as u64;
            let mut rng = ChaCha8Rng::seed_from_u64(
                base_seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(absolute + 1)),
            );
            model.sample_into(&mut rng, chunk);
        });
    }

    fn evaluate_region(
        &self,
        tpl: &RegionTemplate,
        num_qubits: usize,
        assigned: &[Option<f64>],
        q: usize,
        candidates: &[f64],
        scratch: &mut AllocScratch,
    ) -> Vec<u64> {
        assert_eq!(assigned.len(), num_qubits, "assignment length mismatch");
        assert!(assigned[q].is_none(), "qubit {q} already assigned");
        let AllocScratch {
            planes,
            plane_samples,
            sigma_bits,
            noise: noise_buf,
            active,
            base,
            q_pair_others,
            ctx_pairs,
            triples_j,
            triples_i,
            triples_k,
            ctx_triples,
            live,
        } = scratch;

        // Activate the assigned members (plus q) in ascending-qubit
        // order; `active` maps full-region slots to packed noise columns.
        active.clear();
        active.resize(tpl.members.len(), INACTIVE);
        base.clear();
        for (slot, &r) in tpl.members.iter().enumerate() {
            let r = r as usize;
            if r == q {
                active[slot] = base.len() as u32;
                base.push(0.0);
            } else if let Some(f) = assigned[r] {
                active[slot] = base.len() as u32;
                base.push(f);
            }
        }
        let m = base.len();
        let qi = active[tpl.q_slot as usize] as usize;

        // Remap the precompiled constraints onto the active columns,
        // dropping any constraint touching an unassigned member.
        let remap2 = |list: &[(u32, u32)], out: &mut Vec<(u32, u32)>| {
            out.clear();
            out.extend(list.iter().filter_map(|&(a, b)| {
                let (a, b) = (active[a as usize], active[b as usize]);
                (a != INACTIVE && b != INACTIVE).then_some((a, b))
            }));
        };
        q_pair_others.clear();
        q_pair_others.extend(tpl.q_pair_others.iter().filter_map(|&o| {
            let o = active[o as usize];
            (o != INACTIVE).then_some(o)
        }));
        remap2(&tpl.ctx_pairs, ctx_pairs);
        remap2(&tpl.q_triples_j, triples_j);
        remap2(&tpl.q_triples_i, triples_i);
        remap2(&tpl.q_triples_k, triples_k);
        ctx_triples.clear();
        ctx_triples.extend(tpl.ctx_triples.iter().filter_map(|&(j, i, k)| {
            let (j, i, k) = (active[j as usize], active[i as usize], active[k as usize]);
            (j != INACTIVE && i != INACTIVE && k != INACTIVE).then_some((j, i, k))
        }));

        // Common random numbers: one noise block shared by every
        // candidate, drawn from fixed counter-derived streams so the
        // values never depend on the thread count. Even-length blocks
        // are served from the scratch's plane cache — a prefix slice of
        // the flat per-(seed, q) stream, generated at most once and
        // shared by later decisions against the same stream.
        let needed = self.trials * m;
        let noise: &[f64] = if self.legacy_noise || !needed.is_multiple_of(2) {
            // Legacy stream, or an odd block whose tail sample is drawn
            // by the non-prefix-stable single-draw path: fill directly.
            noise_buf.clear();
            noise_buf.resize(needed, 0.0);
            self.fill_noise(q, noise_buf);
            noise_buf
        } else {
            let bits = self.model.sigma_ghz().to_bits();
            if *sigma_bits != bits {
                planes.clear();
                *plane_samples = 0;
                *sigma_bits = bits;
            }
            let base_seed = self.stream_seed(q);
            let cached = planes.get(&base_seed).map_or(0, Vec::len);
            if needed > cached
                && *plane_samples + (needed - cached) > AllocScratch::PLANE_CAP_SAMPLES
            {
                planes.clear();
                *plane_samples = 0;
            }
            let plane = planes.entry(base_seed).or_default();
            if needed > plane.len() {
                // Grow from the last chunk boundary: chunk contents
                // depend only on (seed, chunk index) and even prefixes
                // of a chunk are bit-identical to shorter fills, so the
                // grown plane equals a direct fill of `needed` samples.
                let start = (plane.len() / Self::NOISE_STREAM_SAMPLES) * Self::NOISE_STREAM_SAMPLES;
                *plane_samples += needed - plane.len();
                plane.resize(needed, 0.0);
                let model = self.model;
                Self::fill_stream_chunks(
                    base_seed,
                    start / Self::NOISE_STREAM_SAMPLES,
                    &model,
                    &mut plane[start..],
                );
            }
            &plane[..needed]
        };

        let p = self.params;

        // Pass 1 — context filtering into flat SoA records. A surviving
        // trial's record holds exactly the operands the per-candidate
        // constraints read, with the candidate-independent halves of the
        // two-photon terms prefolded:
        //   [ noise_q,
        //     f_other                          per q-pair,
        //     (f_i, f_k)                       per j==q triple,
        //     (2 f_j - gap,        f_k)        per i==q triple,
        //     ((2 f_j - gap) - f_i, f_i)       per k==q triple ]
        // The j==q triples' conditions 5/6 do not involve q's frequency
        // at all, so they are folded into this pass: a trial tripping
        // them fails for *every* candidate and is dropped here. The
        // constraint checks run four trials per vector on AVX2 hosts
        // ([`Pass1Ctx::filter_rows`]), bit-identically to the scalar
        // kernel, and fan out over the pool in fixed row chunks.
        let stride =
            1 + q_pair_others.len() + 2 * (triples_j.len() + triples_i.len() + triples_k.len());
        let ctx = Pass1Ctx {
            params: &p,
            base,
            m,
            qi,
            stride,
            q_pair_others,
            ctx_pairs,
            triples_j,
            triples_i,
            triples_k,
            ctx_triples,
        };
        let chunk_rows =
            self.trials.div_ceil(4 * qpd_par::threads()).max(64).min(self.trials.max(1));
        let blocks: Vec<Vec<f64>> = qpd_par::par_chunks(noise, chunk_rows * m, |_, slice| {
            let mut block = Vec::with_capacity((slice.len() / m) * ctx.stride);
            ctx.filter_rows(slice, &mut block);
            block
        });
        live.clear();
        live.reserve(blocks.iter().map(Vec::len).sum());
        for block in &blocks {
            live.extend_from_slice(block);
        }

        // Pass 2 — every candidate against only the q-involving
        // constraints of the surviving records, row-major (each record is
        // read once for all candidates), vectorized where the host allows
        // ([`pass2_block`]), and fanned out over the pool in fixed row
        // blocks. Per-candidate tallies are exact integer sums over the
        // blocks, so the counts are identical for any thread count.
        let qp = q_pair_others.len();
        let (nj, ni) = (triples_j.len(), triples_i.len());
        let layout = RecordLayout {
            stride,
            pairs_end: 1 + qp,
            tj_end: 1 + qp + 2 * nj,
            ti_end: 1 + qp + 2 * (nj + ni),
        };
        let live_rows = live.len() / stride;
        let rows_per_block = live_rows.div_ceil(4 * qpd_par::threads()).max(128);
        let partials: Vec<Vec<u64>> =
            qpd_par::par_chunks(live.as_slice(), rows_per_block * stride, |_, rows| {
                pass2_block(rows, layout, candidates, &p)
            });
        let mut out = vec![0u64; candidates.len()];
        for partial in partials {
            for (slot, v) in out.iter_mut().zip(partial) {
                *slot += v;
            }
        }
        out
    }

    /// The naive serial formulation this module used before the
    /// `CompiledRegions` overhaul, retained verbatim (per-decision
    /// `position()` scans, per-trial `Vec` clones, candidate loop on the
    /// caller's thread) as the equivalence oracle for the fast path and
    /// as `bench_snapshot`'s pre-overhaul baseline. Counts are identical
    /// to [`Self::evaluate_candidates`] whenever the noise scheme
    /// matches.
    ///
    /// # Panics
    ///
    /// As [`Self::evaluate_candidates`].
    pub fn evaluate_candidates_reference(
        &self,
        arch: &Architecture,
        assigned: &[Option<f64>],
        q: usize,
        candidates: &[f64],
    ) -> Vec<u64> {
        assert_eq!(assigned.len(), arch.num_qubits(), "assignment length mismatch");
        assert!(q < arch.num_qubits(), "qubit out of range");
        assert!(assigned[q].is_none(), "qubit {q} already assigned");

        // Local region: qubits within distance 2 that are assigned, plus q.
        let region: Vec<usize> =
            arch.ball(q, 2).into_iter().filter(|&r| r == q || assigned[r].is_some()).collect();
        let index_of = |qubit: usize| region.iter().position(|&r| r == qubit);

        // Collision constraints fully inside the (assigned) region, split
        // into those involving `q` (candidate-dependent) and pure context
        // (identical for every candidate under common random numbers, so
        // they are evaluated once per trial).
        let qi = index_of(q).expect("q in region");
        let mut q_pairs: Vec<(usize, usize)> = Vec::new();
        let mut ctx_pairs: Vec<(usize, usize)> = Vec::new();
        for &(a, b) in arch.coupling_edges() {
            if let (Some(ia), Some(ib)) = (index_of(a), index_of(b)) {
                if ia == qi || ib == qi {
                    q_pairs.push((ia, ib));
                } else {
                    ctx_pairs.push((ia, ib));
                }
            }
        }
        let mut q_triples: Vec<(usize, usize, usize)> = Vec::new();
        let mut ctx_triples: Vec<(usize, usize, usize)> = Vec::new();
        for &j in &region {
            let nbrs: Vec<usize> =
                arch.neighbors(j).iter().copied().filter(|&x| index_of(x).is_some()).collect();
            let ij = index_of(j).expect("j in region");
            for x in 0..nbrs.len() {
                for y in x + 1..nbrs.len() {
                    let (ii, ik) = (index_of(nbrs[x]).unwrap(), index_of(nbrs[y]).unwrap());
                    if ij == qi || ii == qi || ik == qi {
                        q_triples.push((ij, ii, ik));
                    } else {
                        ctx_triples.push((ij, ii, ik));
                    }
                }
            }
        }

        // Pre-draw common noise: trials x |region|.
        let m = region.len();
        let mut noise = vec![0.0f64; self.trials * m];
        self.fill_noise(q, &mut noise);

        let base: Vec<f64> = region
            .iter()
            .map(|&r| if r == q { 0.0 } else { assigned[r].expect("assigned in region") })
            .collect();

        let p = &self.params;
        let pair_collides = |freqs: &[f64], a: usize, b: usize| p.pair_collides(freqs[a], freqs[b]);
        let triple_collides = |freqs: &[f64], j: usize, i: usize, k: usize| {
            p.triple_collides(freqs[j], freqs[i], freqs[k])
        };

        // Pass 1: evaluate the context once per trial, keeping the noisy
        // frequencies of trials whose context survives.
        let mut live_trials: Vec<Vec<f64>> = Vec::new();
        let mut freqs = vec![0.0f64; m];
        for t in 0..self.trials {
            let noise_row = &noise[t * m..(t + 1) * m];
            for i in 0..m {
                freqs[i] = base[i] + noise_row[i];
            }
            let ctx_ok = ctx_pairs.iter().all(|&(a, b)| !pair_collides(&freqs, a, b))
                && ctx_triples.iter().all(|&(j, i, k)| !triple_collides(&freqs, j, i, k));
            if ctx_ok {
                live_trials.push(freqs.clone());
            }
        }

        // Pass 2: per candidate, only the q-involving constraints on the
        // surviving trials.
        let mut out = Vec::with_capacity(candidates.len());
        for &candidate in candidates {
            let mut ok = 0u64;
            for trial in &mut live_trials {
                let saved = trial[qi];
                trial[qi] = saved + candidate;
                let collided = q_pairs.iter().any(|&(a, b)| pair_collides(trial, a, b))
                    || q_triples.iter().any(|&(j, i, k)| triple_collides(trial, j, i, k));
                trial[qi] = saved;
                if !collided {
                    ok += 1;
                }
            }
            out.push(ok);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpd_topology::{ibm, Architecture, BusMode};

    fn path3() -> Architecture {
        let mut b = Architecture::builder("path3");
        b.qubit(0, 0).qubit(0, 1).qubit(0, 2);
        b.build().unwrap()
    }

    fn evaluator(trials: usize) -> LocalYieldEvaluator {
        LocalYieldEvaluator::new(
            trials,
            FabricationModel::new(0.030),
            CollisionParams::default(),
            42,
        )
    }

    #[test]
    fn far_candidate_beats_degenerate_candidate() {
        let arch = path3();
        // Qubit 0 assigned at 5.00; choosing qubit 1.
        let assigned = vec![Some(5.00), None, None];
        let counts = evaluator(2_000).evaluate_candidates(&arch, &assigned, 1, &[5.00, 5.10]);
        // A candidate equal to its neighbor collides (condition 1) whenever
        // the sampled detuning |N(0, sigma*sqrt(2))| < 17 MHz (~31% of
        // trials at sigma = 30 MHz); 100 MHz detuning is nearly clean.
        assert!((counts[1] as f64) > (counts[0] as f64) * 1.25, "counts {counts:?}");
    }

    #[test]
    fn empty_region_yields_all_trials() {
        let arch = path3();
        // Nothing assigned: qubit 1 has no constraints yet.
        let assigned = vec![None, None, None];
        let counts = evaluator(500).evaluate_candidates(&arch, &assigned, 1, &[5.17]);
        assert_eq!(counts, vec![500]);
    }

    #[test]
    fn common_random_numbers_are_deterministic() {
        let arch = path3();
        let assigned = vec![Some(5.00), None, Some(5.23)];
        let e = evaluator(1_000);
        let a = e.evaluate_candidates(&arch, &assigned, 1, &[5.08, 5.12, 5.16]);
        let b = e.evaluate_candidates(&arch, &assigned, 1, &[5.08, 5.12, 5.16]);
        assert_eq!(a, b);
    }

    #[test]
    fn distance_two_constraints_are_seen() {
        // Qubits 0 and 2 are distance 2 apart (common neighbor 1): putting
        // the candidate for qubit 2 degenerate with qubit 0 must hurt via
        // condition 5 even though they are not connected.
        let arch = path3();
        let assigned = vec![Some(5.10), Some(5.22), None];
        let counts = evaluator(2_000).evaluate_candidates(&arch, &assigned, 2, &[5.10, 5.34]);
        assert!(counts[1] > counts[0], "counts {counts:?}");
    }

    #[test]
    #[should_panic(expected = "already assigned")]
    fn rejects_reassignment() {
        let arch = path3();
        let assigned = vec![Some(5.0), Some(5.1), None];
        evaluator(10).evaluate_candidates(&arch, &assigned, 1, &[5.2]);
    }

    #[test]
    fn qubits_outside_region_do_not_matter() {
        // A long path: the frequency of a far-away qubit must not affect
        // the evaluation for qubit 0.
        let mut b = Architecture::builder("path5");
        for c in 0..5 {
            b.qubit(0, c);
        }
        let arch = b.build().unwrap();
        let mut near = vec![None; 5];
        near[1] = Some(5.30);
        let mut with_far = near.clone();
        with_far[4] = Some(5.02); // distance 4 from qubit 0
        let e = evaluator(1_000);
        let a = e.evaluate_candidates(&arch, &near, 0, &[5.10, 5.13]);
        let b = e.evaluate_candidates(&arch, &with_far, 0, &[5.10, 5.13]);
        assert_eq!(a, b);
    }

    #[test]
    fn compiled_regions_report_ball_sizes() {
        let regions = CompiledRegions::new(&path3());
        assert_eq!(regions.num_qubits(), 3);
        // Middle qubit reaches both ends; ends reach everything too (the
        // path has diameter 2).
        for q in 0..3 {
            assert_eq!(regions.region_size(q), 3, "qubit {q}");
        }
    }

    /// The load-bearing property of the overhaul: the compiled SoA path
    /// and the retained naive path agree *exactly*, count for count.
    #[test]
    fn compiled_path_matches_reference_exactly() {
        let candidates: Vec<f64> = (0..35).map(|i| 5.00 + 0.01 * i as f64).collect();
        let cases: Vec<(Architecture, Vec<Option<f64>>, usize)> = vec![
            (path3(), vec![Some(5.00), None, Some(5.23)], 1),
            (path3(), vec![Some(5.10), Some(5.22), None], 2),
            (path3(), vec![None, None, None], 0),
        ];
        for (arch, assigned, q) in cases {
            let e = evaluator(1_500);
            let fast = e.evaluate_candidates(&arch, &assigned, q, &candidates);
            let reference = e.evaluate_candidates_reference(&arch, &assigned, q, &candidates);
            assert_eq!(fast, reference, "arch {} q {q}", arch.name());
        }
    }

    #[test]
    fn compiled_path_matches_reference_on_dense_chip() {
        // The 4-qubit-bus IBM layout exercises every constraint class,
        // including shared-neighbor triples in all three orientations.
        let arch = ibm::ibm_16q_2x8(BusMode::MaxFourQubit);
        let compiled = CompiledRegions::new(&arch);
        let candidates = [5.00, 5.07, 5.13, 5.17, 5.20, 5.27, 5.34];
        let mut assigned: Vec<Option<f64>> = vec![None; arch.num_qubits()];
        // Assign a ragged prefix so regions mix assigned and unassigned.
        for (i, slot) in assigned.iter_mut().enumerate().take(11) {
            *slot = Some(5.00 + 0.03 * (i % 12) as f64);
        }
        let e = evaluator(800);
        for q in 11..arch.num_qubits() {
            let fast = e.evaluate_candidates_compiled(&compiled, &assigned, q, &candidates);
            let reference = e.evaluate_candidates_reference(&arch, &assigned, q, &candidates);
            assert_eq!(fast, reference, "qubit {q}");
        }
    }

    #[test]
    fn thread_count_does_not_change_counts() {
        let arch = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
        let mut assigned: Vec<Option<f64>> = vec![None; arch.num_qubits()];
        for (i, slot) in assigned.iter_mut().enumerate().take(9) {
            *slot = Some(5.05 + 0.04 * (i % 8) as f64);
        }
        let e = evaluator(2_000);
        let candidates: Vec<f64> = (0..35).map(|i| 5.00 + 0.01 * i as f64).collect();
        let serial =
            qpd_par::with_threads(1, || e.evaluate_candidates(&arch, &assigned, 12, &candidates));
        for threads in [2, 8] {
            let pooled = qpd_par::with_threads(threads, || {
                e.evaluate_candidates(&arch, &assigned, 12, &candidates)
            });
            assert_eq!(serial, pooled, "threads {threads}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_pass2_matches_scalar_kernel() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        // Synthetic records exercising every constraint class, with
        // operands spread across clean and colliding distances.
        let p = CollisionParams::default();
        let layout = RecordLayout { stride: 9, pairs_end: 3, tj_end: 5, ti_end: 7 };
        let mut rows = Vec::new();
        let mut x = 0.37f64;
        for _ in 0..257 {
            let mut row = [0.0f64; 9];
            for slot in row.iter_mut() {
                // Deterministic pseudo-noise spanning the band.
                x = (x * 997.0 + 0.1234).fract();
                *slot = 5.0 + 0.4 * x - 0.2;
            }
            row[0] = 0.06 * x - 0.03; // noise_q, small
            rows.extend_from_slice(&row);
        }
        let candidates: Vec<f64> = (0..35).map(|i| 5.00 + 0.01 * i as f64).collect();
        let mut scalar = vec![0u64; candidates.len()];
        pass2_block_scalar(&rows, layout, &candidates, &p, &mut scalar);
        let run_simd = |lanes: usize, avx512: bool| -> Vec<u64> {
            let padded = candidates.len().div_ceil(lanes) * lanes;
            let mut cands = candidates.clone();
            cands.resize(padded, f64::NAN);
            let mut tallies = vec![0i64; padded];
            unsafe {
                if avx512 {
                    pass2_avx512::pass2_block(&rows, layout, &cands, &p, &mut tallies);
                } else {
                    pass2_avx2::pass2_block(&rows, layout, &cands, &p, &mut tallies);
                }
            }
            tallies.into_iter().take(candidates.len()).map(|t| t as u64).collect()
        };
        assert_eq!(scalar, run_simd(pass2_avx2::LANES, false), "avx2");
        if std::arch::is_x86_feature_detected!("avx512f") {
            assert_eq!(scalar, run_simd(pass2_avx512::LANES, true), "avx512");
        }
        assert!(scalar.iter().any(|&c| c > 0) && scalar.iter().any(|&c| c < 257));
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_pass1_matches_scalar_filter() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        // A synthetic decision context exercising every constraint class.
        let p = CollisionParams::default();
        let base = [0.0, 5.10, 5.20, 5.05, 5.15, 5.25];
        let ctx = Pass1Ctx {
            params: &p,
            base: &base,
            m: 6,
            qi: 0,
            stride: 1 + 2 + 2 * (2 + 1 + 1),
            q_pair_others: &[1, 2],
            ctx_pairs: &[(1, 2), (3, 4)],
            triples_j: &[(1, 2), (3, 5)],
            triples_i: &[(1, 4)],
            triples_k: &[(2, 3)],
            ctx_triples: &[(1, 3, 4), (2, 4, 5)],
        };
        // 1,003 rows (ragged tail included) of deterministic pseudo-noise
        // wide enough to trip and clear every condition.
        let mut x = 0.618f64;
        let noise: Vec<f64> = (0..1_003 * 6)
            .map(|_| {
                x = (x * 997.0 + 0.1234).fract();
                0.40 * x - 0.20
            })
            .collect();
        let mut scalar = Vec::new();
        ctx.filter_rows_scalar(&noise, &mut scalar);
        let mut simd = Vec::new();
        unsafe { ctx.filter_rows_avx2(&noise, &mut simd) };
        assert_eq!(scalar.len(), simd.len(), "different survivor counts");
        assert!(
            scalar.iter().zip(&simd).all(|(a, b)| a.to_bits() == b.to_bits()),
            "record bytes differ"
        );
        if std::arch::is_x86_feature_detected!("avx512f") {
            let mut wide = Vec::new();
            unsafe { ctx.filter_rows_avx512(&noise, &mut wide) };
            assert_eq!(scalar.len(), wide.len(), "avx512 survivor counts");
            assert!(
                scalar.iter().zip(&wide).all(|(a, b)| a.to_bits() == b.to_bits()),
                "avx512 record bytes differ"
            );
        }
        // The filter is doing real work: some survive, some do not.
        let survivors = scalar.len() / ctx.stride;
        assert!(survivors > 0 && survivors < 1_003, "survivors {survivors}");
    }

    /// Scratch sharing — across qubits, partial assignments, and even
    /// different evaluators — must never change a single count: planes
    /// are pure stream prefixes and buffers are fully reinitialized.
    #[test]
    fn shared_scratch_is_bit_identical_to_fresh() {
        let arch = ibm::ibm_16q_2x8(BusMode::MaxFourQubit);
        let compiled = CompiledRegions::new(&arch);
        let candidates: Vec<f64> = (0..35).map(|i| 5.00 + 0.01 * i as f64).collect();
        let mut assigned: Vec<Option<f64>> = vec![None; arch.num_qubits()];
        for (i, slot) in assigned.iter_mut().enumerate().take(10) {
            *slot = Some(5.00 + 0.03 * (i % 12) as f64);
        }
        let mut scratch = AllocScratch::new();
        for trials in [600, 1_000] {
            for seed in [42, 7] {
                let e = LocalYieldEvaluator::new(
                    trials,
                    FabricationModel::new(0.030),
                    CollisionParams::default(),
                    seed,
                );
                for q in 10..arch.num_qubits() {
                    let shared = e.evaluate_candidates_compiled_with(
                        &compiled,
                        &assigned,
                        q,
                        &candidates,
                        &mut scratch,
                    );
                    let fresh =
                        e.evaluate_candidates_compiled(&compiled, &assigned, q, &candidates);
                    assert_eq!(shared, fresh, "trials {trials} seed {seed} qubit {q}");
                }
            }
        }
        assert!(scratch.cached_planes() > 0, "planes should be retained");
    }

    /// Growing a plane (same stream, longer prefix) must splice in
    /// bit-identically: a short-trials decision followed by a
    /// long-trials decision equals the long decision alone.
    #[test]
    fn plane_growth_matches_direct_fill() {
        let arch = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
        let compiled = CompiledRegions::new(&arch);
        let candidates = [5.00, 5.08, 5.17, 5.26, 5.34];
        let mut assigned: Vec<Option<f64>> = vec![None; arch.num_qubits()];
        for (i, slot) in assigned.iter_mut().enumerate().take(8) {
            *slot = Some(5.02 + 0.04 * (i % 8) as f64);
        }
        let model = FabricationModel::new(0.030);
        let params = CollisionParams::default();
        let mut scratch = AllocScratch::new();
        // 700 trials x m crosses a 4096-sample chunk boundary for every
        // region size here; 2_000 then grows the same plane.
        for trials in [700, 2_000, 900] {
            let e = LocalYieldEvaluator::new(trials, model, params, 42);
            for q in [9, 12] {
                let grown = e.evaluate_candidates_compiled_with(
                    &compiled,
                    &assigned,
                    q,
                    &candidates,
                    &mut scratch,
                );
                let direct = e.evaluate_candidates_compiled(&compiled, &assigned, q, &candidates);
                assert_eq!(grown, direct, "trials {trials} qubit {q}");
            }
        }
    }

    /// Odd-length noise blocks bypass the plane cache (their tail is
    /// drawn by the non-prefix-stable single-draw path) yet still match
    /// the scratch-free entry point.
    #[test]
    fn odd_trial_blocks_fall_back_and_match() {
        let arch = path3();
        let assigned = vec![Some(5.00), None, Some(5.23)];
        let compiled = CompiledRegions::new(&arch);
        let e = evaluator(333); // odd trials x odd m = odd block
        let mut scratch = AllocScratch::new();
        let with = e.evaluate_candidates_compiled_with(
            &compiled,
            &assigned,
            1,
            &[5.08, 5.12],
            &mut scratch,
        );
        let without = e.evaluate_candidates_compiled(&compiled, &assigned, 1, &[5.08, 5.12]);
        assert_eq!(with, without);
        assert_eq!(scratch.cached_planes(), 0, "odd blocks must not populate planes");
    }

    /// Changing sigma invalidates cached planes (same uniform stream,
    /// different values) and the evaluations still match fresh ones.
    #[test]
    fn sigma_change_resets_planes() {
        let arch = path3();
        let assigned = vec![Some(5.00), None, Some(5.23)];
        let compiled = CompiledRegions::new(&arch);
        let mut scratch = AllocScratch::new();
        for sigma in [0.030, 0.050, 0.030] {
            let e = LocalYieldEvaluator::new(
                1_000,
                FabricationModel::new(sigma),
                CollisionParams::default(),
                42,
            );
            let shared = e.evaluate_candidates_compiled_with(
                &compiled,
                &assigned,
                1,
                &[5.08, 5.12],
                &mut scratch,
            );
            let fresh = e.evaluate_candidates_compiled(&compiled, &assigned, 1, &[5.08, 5.12]);
            assert_eq!(shared, fresh, "sigma {sigma}");
        }
    }

    #[test]
    fn legacy_noise_changes_counts_but_not_structure() {
        let arch = path3();
        let assigned = vec![Some(5.00), None, Some(5.23)];
        let modern = evaluator(2_000);
        let legacy = modern.with_legacy_noise();
        let a = modern.evaluate_candidates(&arch, &assigned, 1, &[5.08, 5.12]);
        let b = legacy.evaluate_candidates(&arch, &assigned, 1, &[5.08, 5.12]);
        assert_ne!(a, b, "independent streams should differ in raw counts");
        // And the legacy fast path still agrees with the legacy reference.
        let b_ref = legacy.evaluate_candidates_reference(&arch, &assigned, 1, &[5.08, 5.12]);
        assert_eq!(b, b_ref);
    }
}
