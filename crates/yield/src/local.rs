//! Local-region yield evaluation for frequency allocation (paper §4.3).
//!
//! Algorithm 3 assigns frequencies one qubit at a time; for each candidate
//! frequency it simulates yield only within the new qubit's *local
//! region* — the subgraph where a collision involving the new qubit is
//! possible (distance <= 2 in the coupling graph: conditions 1–4 involve
//! direct neighbors, conditions 5–7 reach neighbors-of-neighbors).
//!
//! All candidates for one decision are evaluated under **common random
//! numbers** (the same noise samples), so candidate ranking reflects the
//! frequencies rather than sampling luck, and the whole allocation is
//! deterministic in the seed.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qpd_topology::Architecture;

use crate::collision::CollisionParams;
use crate::model::FabricationModel;

/// Evaluates candidate frequencies for one qubit against the already
/// assigned part of its local region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalYieldEvaluator {
    trials: usize,
    model: FabricationModel,
    params: CollisionParams,
    seed: u64,
}

impl LocalYieldEvaluator {
    /// Creates an evaluator.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero.
    pub fn new(trials: usize, model: FabricationModel, params: CollisionParams, seed: u64) -> Self {
        assert!(trials > 0, "need at least one trial");
        LocalYieldEvaluator { trials, model, params, seed }
    }

    /// Trial count per candidate.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// For each candidate frequency (GHz) for qubit `q`, the number of
    /// collision-free trials within `q`'s local region, given the partial
    /// assignment `assigned` (GHz; `None` = not yet assigned, ignored).
    ///
    /// Candidates share noise samples, so the counts are directly
    /// comparable; ties should be broken by the caller's own policy.
    ///
    /// # Panics
    ///
    /// Panics if `assigned.len() != arch.num_qubits()`, if `q` is out of
    /// range, or if `assigned[q]` is already `Some` (the decision was
    /// already made).
    pub fn evaluate_candidates(
        &self,
        arch: &Architecture,
        assigned: &[Option<f64>],
        q: usize,
        candidates: &[f64],
    ) -> Vec<u64> {
        assert_eq!(assigned.len(), arch.num_qubits(), "assignment length mismatch");
        assert!(q < arch.num_qubits(), "qubit out of range");
        assert!(assigned[q].is_none(), "qubit {q} already assigned");

        // Local region: qubits within distance 2 that are assigned, plus q.
        let region: Vec<usize> =
            arch.ball(q, 2).into_iter().filter(|&r| r == q || assigned[r].is_some()).collect();
        let index_of = |qubit: usize| region.iter().position(|&r| r == qubit);

        // Collision constraints fully inside the (assigned) region, split
        // into those involving `q` (candidate-dependent) and pure context
        // (identical for every candidate under common random numbers, so
        // they are evaluated once per trial).
        let qi = index_of(q).expect("q in region");
        let mut q_pairs: Vec<(usize, usize)> = Vec::new();
        let mut ctx_pairs: Vec<(usize, usize)> = Vec::new();
        for &(a, b) in arch.coupling_edges() {
            if let (Some(ia), Some(ib)) = (index_of(a), index_of(b)) {
                if ia == qi || ib == qi {
                    q_pairs.push((ia, ib));
                } else {
                    ctx_pairs.push((ia, ib));
                }
            }
        }
        let mut q_triples: Vec<(usize, usize, usize)> = Vec::new();
        let mut ctx_triples: Vec<(usize, usize, usize)> = Vec::new();
        for &j in &region {
            let nbrs: Vec<usize> =
                arch.neighbors(j).iter().copied().filter(|&x| index_of(x).is_some()).collect();
            let ij = index_of(j).expect("j in region");
            for x in 0..nbrs.len() {
                for y in x + 1..nbrs.len() {
                    let (ii, ik) = (index_of(nbrs[x]).unwrap(), index_of(nbrs[y]).unwrap());
                    if ij == qi || ii == qi || ik == qi {
                        q_triples.push((ij, ii, ik));
                    } else {
                        ctx_triples.push((ij, ii, ik));
                    }
                }
            }
        }

        // Pre-draw common noise: trials x |region|.
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.seed ^ (0xd134_2543_de82_ef95u64.wrapping_mul(q as u64 + 1)),
        );
        let m = region.len();
        let mut noise = vec![0.0f64; self.trials * m];
        self.model.sample_into(&mut rng, &mut noise);

        let base: Vec<f64> = region
            .iter()
            .map(|&r| if r == q { 0.0 } else { assigned[r].expect("assigned in region") })
            .collect();

        let p = &self.params;
        let gap = -p.anharmonicity_ghz;
        let pair_collides = |freqs: &[f64], a: usize, b: usize| -> bool {
            let d = (freqs[a] - freqs[b]).abs();
            d < p.t_degenerate_ghz
                || (d - gap / 2.0).abs() < p.t_half_ghz
                || (d - gap).abs() < p.t_full_ghz
                || d > gap
        };
        let triple_collides = |freqs: &[f64], j: usize, i: usize, k: usize| -> bool {
            let d = (freqs[i] - freqs[k]).abs();
            d < p.t_degenerate_ghz
                || (d - gap).abs() < p.t_full_ghz
                || (2.0 * freqs[j] - gap - freqs[i] - freqs[k]).abs() < p.t_two_photon_ghz
        };

        // Pass 1: evaluate the context once per trial, keeping the noisy
        // frequencies of trials whose context survives.
        let mut live_trials: Vec<Vec<f64>> = Vec::new();
        let mut freqs = vec![0.0f64; m];
        for t in 0..self.trials {
            let noise_row = &noise[t * m..(t + 1) * m];
            for i in 0..m {
                freqs[i] = base[i] + noise_row[i];
            }
            let ctx_ok = ctx_pairs.iter().all(|&(a, b)| !pair_collides(&freqs, a, b))
                && ctx_triples.iter().all(|&(j, i, k)| !triple_collides(&freqs, j, i, k));
            if ctx_ok {
                live_trials.push(freqs.clone());
            }
        }

        // Pass 2: per candidate, only the q-involving constraints on the
        // surviving trials.
        let mut out = Vec::with_capacity(candidates.len());
        for &candidate in candidates {
            let mut ok = 0u64;
            for trial in &mut live_trials {
                let saved = trial[qi];
                trial[qi] = saved + candidate;
                let collided = q_pairs.iter().any(|&(a, b)| pair_collides(trial, a, b))
                    || q_triples.iter().any(|&(j, i, k)| triple_collides(trial, j, i, k));
                trial[qi] = saved;
                if !collided {
                    ok += 1;
                }
            }
            out.push(ok);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpd_topology::Architecture;

    fn path3() -> Architecture {
        let mut b = Architecture::builder("path3");
        b.qubit(0, 0).qubit(0, 1).qubit(0, 2);
        b.build().unwrap()
    }

    fn evaluator(trials: usize) -> LocalYieldEvaluator {
        LocalYieldEvaluator::new(
            trials,
            FabricationModel::new(0.030),
            CollisionParams::default(),
            42,
        )
    }

    #[test]
    fn far_candidate_beats_degenerate_candidate() {
        let arch = path3();
        // Qubit 0 assigned at 5.00; choosing qubit 1.
        let assigned = vec![Some(5.00), None, None];
        let counts = evaluator(2_000).evaluate_candidates(&arch, &assigned, 1, &[5.00, 5.10]);
        // A candidate equal to its neighbor collides (condition 1) whenever
        // the sampled detuning |N(0, sigma*sqrt(2))| < 17 MHz (~31% of
        // trials at sigma = 30 MHz); 100 MHz detuning is nearly clean.
        assert!((counts[1] as f64) > (counts[0] as f64) * 1.25, "counts {counts:?}");
    }

    #[test]
    fn empty_region_yields_all_trials() {
        let arch = path3();
        // Nothing assigned: qubit 1 has no constraints yet.
        let assigned = vec![None, None, None];
        let counts = evaluator(500).evaluate_candidates(&arch, &assigned, 1, &[5.17]);
        assert_eq!(counts, vec![500]);
    }

    #[test]
    fn common_random_numbers_are_deterministic() {
        let arch = path3();
        let assigned = vec![Some(5.00), None, Some(5.23)];
        let e = evaluator(1_000);
        let a = e.evaluate_candidates(&arch, &assigned, 1, &[5.08, 5.12, 5.16]);
        let b = e.evaluate_candidates(&arch, &assigned, 1, &[5.08, 5.12, 5.16]);
        assert_eq!(a, b);
    }

    #[test]
    fn distance_two_constraints_are_seen() {
        // Qubits 0 and 2 are distance 2 apart (common neighbor 1): putting
        // the candidate for qubit 2 degenerate with qubit 0 must hurt via
        // condition 5 even though they are not connected.
        let arch = path3();
        let assigned = vec![Some(5.10), Some(5.22), None];
        let counts = evaluator(2_000).evaluate_candidates(&arch, &assigned, 2, &[5.10, 5.34]);
        assert!(counts[1] > counts[0], "counts {counts:?}");
    }

    #[test]
    #[should_panic(expected = "already assigned")]
    fn rejects_reassignment() {
        let arch = path3();
        let assigned = vec![Some(5.0), Some(5.1), None];
        evaluator(10).evaluate_candidates(&arch, &assigned, 1, &[5.2]);
    }

    #[test]
    fn qubits_outside_region_do_not_matter() {
        // A long path: the frequency of a far-away qubit must not affect
        // the evaluation for qubit 0.
        let mut b = Architecture::builder("path5");
        for c in 0..5 {
            b.qubit(0, c);
        }
        let arch = b.build().unwrap();
        let mut near = vec![None; 5];
        near[1] = Some(5.30);
        let mut with_far = near.clone();
        with_far[4] = Some(5.02); // distance 4 from qubit 0
        let e = evaluator(1_000);
        let a = e.evaluate_candidates(&arch, &near, 0, &[5.10, 5.13]);
        let b = e.evaluate_candidates(&arch, &with_far, 0, &[5.10, 5.13]);
        assert_eq!(a, b);
    }
}
