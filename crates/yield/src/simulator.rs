//! Monte Carlo yield simulation (paper §4.3.1 and §5.1).
//!
//! # Singleton and batch paths
//!
//! [`YieldSimulator::estimate`] evaluates one candidate; a round's worth
//! of candidates should go through [`YieldSimulator::evaluate_batch`]
//! (the [`crate::batch`] module), which returns bit-identical estimates
//! while generating each fabrication-noise trial stream once per group
//! of candidates that share it. The stream is fully determined by the
//! simulator `seed` and `trials` (fixed 16-chunk decomposition with
//! counter-derived per-chunk seeds), the *effective* sigma (configured
//! sigma mapped through the hardware family), and the qubit count (the
//! bulk-fill cadence draws `max(8192 / n, 1)` rows per fill, making `n`
//! part of the RNG consumption pattern). Collision parameters, coupling
//! structure, and designed frequencies affect only the per-trial check,
//! never the stream — so candidates differing in those may share one
//! stream, exactly as if each had generated it privately. See the batch
//! module docs for why determinism holds lane by lane.

use std::error::Error;
use std::fmt;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qpd_topology::Architecture;

use crate::collision::{CollisionChecker, CollisionParams};
use crate::hardware::HardwareFamily;
use crate::model::FabricationModel;

/// Error from the yield simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum YieldError {
    /// The architecture has no attached frequency plan.
    MissingFrequencyPlan,
}

impl fmt::Display for YieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            YieldError::MissingFrequencyPlan => {
                write!(f, "architecture has no frequency plan; attach one before simulating yield")
            }
        }
    }
}

impl Error for YieldError {}

/// A yield estimate with its sampling uncertainty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct YieldEstimate {
    successes: u64,
    trials: u64,
}

impl YieldEstimate {
    /// Builds an estimate from raw counts.
    ///
    /// # Panics
    ///
    /// Panics if `successes > trials` or `trials == 0`.
    pub fn new(successes: u64, trials: u64) -> Self {
        assert!(trials > 0, "need at least one trial");
        assert!(successes <= trials, "successes cannot exceed trials");
        YieldEstimate { successes, trials }
    }

    /// Successful (collision-free) fabrications.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Total simulated fabrications.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The estimated yield rate in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        self.successes as f64 / self.trials as f64
    }

    /// Binomial standard error of the rate.
    pub fn std_err(&self) -> f64 {
        let p = self.rate();
        (p * (1.0 - p) / self.trials as f64).sqrt()
    }

    /// Wilson 95% confidence interval for the rate — better behaved than
    /// the normal approximation at the extreme yields this paper operates
    /// at (down to 1e-5).
    pub fn wilson_ci95(&self) -> (f64, f64) {
        let z = 1.959_963_984_540_054_f64;
        let n = self.trials as f64;
        let p = self.rate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }
}

impl fmt::Display for YieldEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4e} ({}/{})", self.rate(), self.successes, self.trials)
    }
}

/// Incremental FNV-1a 64-bit hasher over `u64` words — tiny, stable, and
/// dependency-free, which is all a content-addressed memo key needs.
/// Public so evaluation caches (the design-space explorer) derive their
/// own content keys with the same function [`YieldSimulator::content_key`]
/// uses.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one word into the hash, byte by byte.
    pub fn push(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The final hash value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Monte Carlo yield simulator.
///
/// Defaults follow the paper's evaluation setup (§5.1): 10,000 trials and
/// `sigma = 30 MHz`. Results are deterministic in the seed: trials are
/// split into fixed chunks, each with its own counter-derived RNG stream,
/// so estimates do not depend on thread count. The chunks execute on the
/// shared [`qpd_par`] worker pool — at most
/// `std::thread::available_parallelism()` workers (override with
/// `QPD_THREADS`), never one thread per chunk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldSimulator {
    trials: u64,
    model: FabricationModel,
    params: CollisionParams,
    seed: u64,
    parallel: bool,
    hardware: HardwareFamily,
}

impl Default for YieldSimulator {
    fn default() -> Self {
        Self::new()
    }
}

/// Number of independent RNG streams; fixed so results are reproducible
/// regardless of how many threads execute them. Shared with the batch
/// evaluator ([`crate::batch`]), whose per-chunk streams must be the
/// same ones for batch results to stay bit-identical to singleton runs.
pub(crate) const CHUNKS: u64 = 16;

/// Noise samples drawn per bulk fill (~64 KiB of `f64`s): large enough
/// to amortize the sampler's batching, small enough that memory stays
/// flat no matter the trial count. Also shared with [`crate::batch`]:
/// the fill cadence is part of the RNG consumption pattern, so both
/// paths must cut trials into the same row batches.
pub(crate) const BULK_NOISE_SAMPLES: usize = 8_192;

/// The RNG-stream constant deriving per-chunk seeds from the simulator
/// seed (`seed ^ GOLDEN * (chunk + 1)`), shared with [`crate::batch`].
pub(crate) const CHUNK_SEED_MUL: u64 = 0x9e37_79b9_7f4a_7c15;

/// Minimum trial count for the pooled chunk fan-out; below it a singleton
/// estimate runs serially. Measured on the dev host (`with_threads(2)`,
/// `ibm_16q_2x8`): one 16-job pool dispatch costs ~2.7us and a trial
/// costs >= 0.2us (sparse bus mode; dense is ~0.4us), so ~1,350 trials
/// are needed before the dispatch drops below 1% of the serial work —
/// below that the pool's best case cannot clear its own overhead with
/// any margin (BENCH_6's `yield_sim/pooled` 1.003x was exactly this
/// overhead-plus-noise regime). The dev host has a single worker, so
/// multi-core wins are projected from the dispatch/trial-cost ratio, not
/// observed end to end.
const POOL_MIN_TRIALS: u64 = 1_350;

impl YieldSimulator {
    /// A simulator with the paper's defaults: 10,000 trials,
    /// `sigma = 30 MHz`, seed 0.
    pub fn new() -> Self {
        YieldSimulator {
            trials: 10_000,
            model: FabricationModel::default(),
            params: CollisionParams::default(),
            seed: 0,
            parallel: true,
            hardware: HardwareFamily::FixedFrequencyTransmon,
        }
    }

    /// Sets the trial count.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero.
    pub fn with_trials(mut self, trials: u64) -> Self {
        assert!(trials > 0, "need at least one trial");
        self.trials = trials;
        self
    }

    /// Sets the fabrication precision `sigma` in GHz.
    pub fn with_sigma_ghz(mut self, sigma_ghz: f64) -> Self {
        self.model = FabricationModel::new(sigma_ghz);
        self
    }

    /// Sets the collision parameters.
    pub fn with_params(mut self, params: CollisionParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the hardware family: adopts its collision parameters and,
    /// at sampling time, its effective fabrication noise. The default
    /// family leaves both the behavior and [`Self::content_key`] exactly
    /// as they were before the hardware layer existed.
    pub fn with_hardware(mut self, hardware: HardwareFamily) -> Self {
        self.hardware = hardware;
        self.params = hardware.model().collision_params();
        self
    }

    /// Disables multithreading (results are identical either way).
    pub fn single_threaded(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// The configured trial count.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The configured fabrication model.
    pub fn model(&self) -> &FabricationModel {
        &self.model
    }

    /// The configured hardware family.
    pub fn hardware(&self) -> HardwareFamily {
        self.hardware
    }

    /// The configured RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The collision parameters in effect (the hardware family's, once
    /// [`Self::with_hardware`] has run).
    pub fn params(&self) -> CollisionParams {
        self.params
    }

    /// The fabrication model actually sampled from: the configured sigma
    /// mapped through the hardware family's
    /// [`effective_sigma_ghz`](crate::hardware::HardwareModel::effective_sigma_ghz)
    /// (the identity for the default family).
    pub(crate) fn effective_model(&self) -> FabricationModel {
        FabricationModel::new(self.hardware.effective_sigma_ghz(self.model.sigma_ghz()))
    }

    /// Estimates the yield of an architecture using its attached frequency
    /// plan.
    ///
    /// # Errors
    ///
    /// Returns [`YieldError::MissingFrequencyPlan`] if none is attached.
    pub fn estimate(&self, arch: &Architecture) -> Result<YieldEstimate, YieldError> {
        let plan = arch.frequencies().ok_or(YieldError::MissingFrequencyPlan)?;
        Ok(self.estimate_with_frequencies(arch, plan.as_slice()))
    }

    /// Content key for memoizing [`Self::estimate`]: an FNV-1a hash of
    /// everything the estimate depends on — the simulator's trials, seed,
    /// noise model, and collision parameters, plus the architecture's
    /// coupling structure and designed frequencies. Two calls with equal
    /// keys return identical estimates, so evaluation caches (the
    /// design-space explorer's memo table) can safely key on it.
    ///
    /// # Errors
    ///
    /// Returns [`YieldError::MissingFrequencyPlan`] if none is attached.
    pub fn content_key(&self, arch: &Architecture) -> Result<u64, YieldError> {
        let plan = arch.frequencies().ok_or(YieldError::MissingFrequencyPlan)?;
        let mut h = Fnv64::new();
        h.push(self.trials);
        h.push(self.seed);
        h.push(self.model.sigma_ghz().to_bits());
        for t in [
            self.params.anharmonicity_ghz,
            self.params.t_degenerate_ghz,
            self.params.t_half_ghz,
            self.params.t_full_ghz,
            self.params.t_two_photon_ghz,
        ] {
            h.push(t.to_bits());
        }
        h.push(arch.num_qubits() as u64);
        for &(a, b) in arch.coupling_edges() {
            h.push(((a as u64) << 32) | b as u64);
        }
        for &f in plan.as_slice() {
            h.push(f.to_bits());
        }
        // Appended last, and only for non-default families, so every key
        // minted before the hardware layer existed is reproduced exactly.
        self.hardware.push_key_tag(&mut h);
        Ok(h.finish())
    }

    /// Estimates yield for an explicit designed-frequency vector (GHz).
    ///
    /// # Panics
    ///
    /// Panics if `designed.len() != arch.num_qubits()`.
    pub fn estimate_with_frequencies(
        &self,
        arch: &Architecture,
        designed: &[f64],
    ) -> YieldEstimate {
        assert_eq!(designed.len(), arch.num_qubits(), "frequency vector length mismatch");
        let checker = CollisionChecker::with_params(arch, self.params);
        let successes = self.run_chunks(&checker, designed);
        YieldEstimate::new(successes, self.trials)
    }

    /// Attributes Monte Carlo failures to the seven collision conditions:
    /// `breakdown[c - 1]` counts trials in which condition `c` fired
    /// (a trial with several distinct conditions counts toward each).
    /// The final element of the returned pair is the number of
    /// collision-free trials.
    ///
    /// Runs single-threaded on the diagnostic (event-collecting) path, so
    /// prefer modest trial counts.
    ///
    /// # Errors
    ///
    /// Returns [`YieldError::MissingFrequencyPlan`] if none is attached.
    pub fn condition_breakdown(&self, arch: &Architecture) -> Result<([u64; 7], u64), YieldError> {
        let plan = arch.frequencies().ok_or(YieldError::MissingFrequencyPlan)?;
        let designed = plan.as_slice();
        let checker = CollisionChecker::with_params(arch, self.params);
        let model = self.effective_model();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut breakdown = [0u64; 7];
        let mut clean = 0u64;
        let n = designed.len();
        if n == 0 {
            return Ok((breakdown, self.trials)); // no qubits, no collisions
        }
        // Same bounded batching as the estimate path: the sampler's bulk
        // fast path without per-trial overdraw.
        let batch_rows = (BULK_NOISE_SAMPLES / n).max(1);
        let mut noise = vec![0.0f64; batch_rows * n];
        let mut post = vec![0.0f64; n];
        let mut remaining = self.trials;
        while remaining > 0 {
            let rows = (batch_rows as u64).min(remaining) as usize;
            let buf = &mut noise[..rows * n];
            model.sample_into(&mut rng, buf);
            for row in buf.chunks_exact(n) {
                for ((slot, &f), &e) in post.iter_mut().zip(designed).zip(row) {
                    *slot = f + e;
                }
                let events = checker.collisions(&post);
                if events.is_empty() {
                    clean += 1;
                } else {
                    let mut seen = [false; 7];
                    for e in &events {
                        seen[(e.condition - 1) as usize] = true;
                    }
                    for (c, &fired) in seen.iter().enumerate() {
                        if fired {
                            breakdown[c] += 1;
                        }
                    }
                }
            }
            remaining -= rows as u64;
        }
        Ok((breakdown, clean))
    }

    fn run_chunks(&self, checker: &CollisionChecker, designed: &[f64]) -> u64 {
        let chunk_bounds: Vec<(u64, u64, u64)> = (0..CHUNKS)
            .map(|c| (c, self.trials * c / CHUNKS, self.trials * (c + 1) / CHUNKS))
            .collect();
        let model = self.effective_model();
        let run_chunk = |chunk_idx: u64, lo: u64, hi: u64| -> u64 {
            let mut rng =
                ChaCha8Rng::seed_from_u64(self.seed ^ (CHUNK_SEED_MUL.wrapping_mul(chunk_idx + 1)));
            let n = designed.len();
            if n == 0 {
                return hi - lo; // no qubits, no collisions
            }
            // Bounded multi-trial noise batches keep the sampler in its
            // bulk fast path at O(1) memory in the trial count.
            let batch_rows = (BULK_NOISE_SAMPLES / n).max(1);
            let mut noise = vec![0.0f64; batch_rows * n];
            let mut post = vec![0.0f64; n];
            let mut ok = 0u64;
            let mut remaining = hi - lo;
            while remaining > 0 {
                let rows = (batch_rows as u64).min(remaining) as usize;
                let buf = &mut noise[..rows * n];
                model.sample_into(&mut rng, buf);
                for row in buf.chunks_exact(n) {
                    for ((slot, &f), &e) in post.iter_mut().zip(designed).zip(row) {
                        *slot = f + e;
                    }
                    if !checker.has_collision(&post) {
                        ok += 1;
                    }
                }
                remaining -= rows as u64;
            }
            ok
        };
        // The 16 counter-seeded RNG streams are fixed for reproducibility;
        // the pool executes them on however many workers exist (at most
        // `available_parallelism`, or `QPD_THREADS`), the caller included.
        // Integer sums over the fixed chunk decomposition are exact, so
        // the estimate is byte-identical to the serial path.
        if self.parallel && self.trials >= POOL_MIN_TRIALS && qpd_par::threads() > 1 {
            qpd_par::par_map(&chunk_bounds, |&(i, lo, hi)| run_chunk(i, lo, hi)).into_iter().sum()
        } else {
            chunk_bounds.iter().map(|&(i, lo, hi)| run_chunk(i, lo, hi)).sum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpd_topology::{ibm, Architecture, BusMode, FrequencyPlan};

    #[test]
    fn missing_plan_errors() {
        let mut b = Architecture::builder("bare");
        b.qubit(0, 0).qubit(0, 1);
        let arch = b.build().unwrap();
        assert_eq!(
            YieldSimulator::new().estimate(&arch).unwrap_err(),
            YieldError::MissingFrequencyPlan
        );
    }

    #[test]
    fn zero_noise_perfect_design_yields_one() {
        let mut b = Architecture::builder("pair");
        b.qubit(0, 0).qubit(0, 1);
        let arch =
            b.build().unwrap().with_frequencies(FrequencyPlan::new(vec![5.00, 5.10])).unwrap();
        let sim = YieldSimulator::new().with_trials(100).with_sigma_ghz(0.0);
        assert_eq!(sim.estimate(&arch).unwrap().rate(), 1.0);
    }

    #[test]
    fn zero_noise_colliding_design_yields_zero() {
        let mut b = Architecture::builder("pair");
        b.qubit(0, 0).qubit(0, 1);
        let arch =
            b.build().unwrap().with_frequencies(FrequencyPlan::new(vec![5.10, 5.10])).unwrap();
        let sim = YieldSimulator::new().with_trials(100).with_sigma_ghz(0.0);
        assert_eq!(sim.estimate(&arch).unwrap().rate(), 0.0);
    }

    #[test]
    fn deterministic_and_thread_invariant() {
        let arch = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
        let par = YieldSimulator::new().with_trials(4_000).with_seed(11);
        let seq = par.single_threaded();
        let a = par.estimate(&arch).unwrap();
        let b = seq.estimate(&arch).unwrap();
        let c = par.estimate(&arch).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        // Byte-equality across explicit pool widths, serial included.
        for threads in [1, 2, 8] {
            let pooled = qpd_par::with_threads(threads, || par.estimate(&arch).unwrap());
            assert_eq!(a, pooled, "threads {threads}");
        }
    }

    #[test]
    fn more_connections_lower_yield() {
        // The paper's core trade-off: the 4-qubit-bus variant of the same
        // chip must yield strictly less under identical noise.
        let plain = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
        let dense = ibm::ibm_16q_2x8(BusMode::MaxFourQubit);
        let sim = YieldSimulator::new().with_trials(6_000).with_seed(5);
        let y_plain = sim.estimate(&plain).unwrap().rate();
        let y_dense = sim.estimate(&dense).unwrap().rate();
        assert!(y_plain > y_dense, "expected denser chip to yield less: {y_plain} vs {y_dense}");
    }

    #[test]
    fn seed_changes_estimate_slightly() {
        let arch = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
        let a = YieldSimulator::new().with_trials(2_000).with_seed(1).estimate(&arch).unwrap();
        let b = YieldSimulator::new().with_trials(2_000).with_seed(2).estimate(&arch).unwrap();
        // Same architecture: rates should be near each other but the raw
        // success counts should differ for different noise streams.
        assert_ne!(a.successes(), b.successes());
        assert!((a.rate() - b.rate()).abs() < 0.2);
    }

    #[test]
    fn estimate_statistics() {
        let e = YieldEstimate::new(50, 200);
        assert_eq!(e.rate(), 0.25);
        assert!(e.std_err() > 0.0);
        let (lo, hi) = e.wilson_ci95();
        assert!(lo < 0.25 && 0.25 < hi);
        assert!(lo >= 0.0 && hi <= 1.0);
    }

    #[test]
    fn wilson_handles_zero_successes() {
        let e = YieldEstimate::new(0, 1000);
        let (lo, hi) = e.wilson_ci95();
        assert!(lo.abs() < 1e-12);
        assert!(hi > 0.0 && hi < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let _ = YieldSimulator::new().with_trials(0);
    }

    #[test]
    fn content_key_distinguishes_what_matters() {
        let arch = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
        let sim = YieldSimulator::new().with_trials(2_000).with_seed(3);
        let k = sim.content_key(&arch).unwrap();
        // Stable across calls.
        assert_eq!(k, sim.content_key(&arch).unwrap());
        // Sensitive to simulator settings...
        assert_ne!(k, sim.with_seed(4).content_key(&arch).unwrap());
        assert_ne!(k, sim.with_trials(2_001).content_key(&arch).unwrap());
        assert_ne!(k, sim.with_sigma_ghz(0.031).content_key(&arch).unwrap());
        // ...to the coupling structure...
        let dense = ibm::ibm_16q_2x8(BusMode::MaxFourQubit);
        assert_ne!(k, sim.content_key(&dense).unwrap());
        // ...and to the designed frequencies.
        let plan = arch.frequencies().unwrap().clone();
        let mut shifted = plan.as_slice().to_vec();
        shifted[0] += 0.001;
        let moved = arch.clone().with_frequencies(FrequencyPlan::new(shifted)).unwrap();
        assert_ne!(k, sim.content_key(&moved).unwrap());
    }

    #[test]
    fn default_hardware_is_transparent() {
        // with_hardware(default) must be a no-op in both the estimate and
        // the content key, so pre-hardware-layer results are reproduced
        // bit for bit.
        let arch = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
        let plain = YieldSimulator::new().with_trials(2_000).with_seed(9);
        let tagged = plain.with_hardware(HardwareFamily::FixedFrequencyTransmon);
        assert_eq!(plain.estimate(&arch).unwrap(), tagged.estimate(&arch).unwrap());
        assert_eq!(plain.content_key(&arch).unwrap(), tagged.content_key(&arch).unwrap());
    }

    #[test]
    fn hardware_families_key_and_estimate_apart() {
        let arch = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
        let sim = YieldSimulator::new().with_trials(2_000).with_seed(9);
        let fixed = sim.content_key(&arch).unwrap();
        let tc = sim.with_hardware(HardwareFamily::TunableCoupler);
        let hh = sim.with_hardware(HardwareFamily::HeavyHex);
        assert_ne!(fixed, tc.content_key(&arch).unwrap());
        assert_ne!(fixed, hh.content_key(&arch).unwrap());
        assert_ne!(tc.content_key(&arch).unwrap(), hh.content_key(&arch).unwrap());
        // Tunable couplers relax the collision thresholds and halve the
        // effective noise, so the same chip yields at least as well.
        let y_fixed = sim.estimate(&arch).unwrap().successes();
        let y_tc = tc.estimate(&arch).unwrap().successes();
        assert!(y_tc >= y_fixed, "tunable-coupler yield regressed: {y_tc} < {y_fixed}");
    }

    #[test]
    fn hardware_estimates_stay_thread_invariant() {
        let arch = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
        let sim = YieldSimulator::new()
            .with_trials(4_000)
            .with_seed(11)
            .with_hardware(HardwareFamily::TunableCoupler);
        let a = sim.estimate(&arch).unwrap();
        assert_eq!(a, sim.single_threaded().estimate(&arch).unwrap());
        for threads in [1, 2, 8] {
            let pooled = qpd_par::with_threads(threads, || sim.estimate(&arch).unwrap());
            assert_eq!(a, pooled, "threads {threads}");
        }
    }

    #[test]
    fn content_key_requires_a_plan() {
        let mut b = Architecture::builder("bare");
        b.qubit(0, 0).qubit(0, 1);
        let arch = b.build().unwrap();
        assert_eq!(
            YieldSimulator::new().content_key(&arch).unwrap_err(),
            YieldError::MissingFrequencyPlan
        );
    }

    #[test]
    fn condition_breakdown_attributes_failures() {
        // Two qubits designed 10 MHz apart: condition 1 dominates.
        let mut b = Architecture::builder("pair");
        b.qubit(0, 0).qubit(0, 1);
        let arch =
            b.build().unwrap().with_frequencies(FrequencyPlan::new(vec![5.16, 5.17])).unwrap();
        let sim = YieldSimulator::new().with_trials(2_000).with_seed(6);
        let (breakdown, clean) = sim.condition_breakdown(&arch).unwrap();
        assert!(breakdown[0] > 2_000 / 4, "condition 1 should dominate: {breakdown:?}");
        assert!(breakdown[0] > 10 * breakdown[2].max(1));
        // Conditions 5-7 need a common neighbor; impossible on a pair.
        assert_eq!(breakdown[4] + breakdown[5] + breakdown[6], 0);
        // Tallies are consistent: clean + (failed at least once) = trials.
        let failed_max = breakdown.iter().copied().max().unwrap();
        assert!(clean + failed_max <= 2_000);
        assert!(clean > 0);
    }

    #[test]
    fn condition_breakdown_consistent_with_estimate() {
        let arch = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
        let sim = YieldSimulator::new().with_trials(2_000).with_seed(1).single_threaded();
        let (_, clean) = sim.condition_breakdown(&arch).unwrap();
        let estimate = sim.estimate(&arch).unwrap();
        // Same seed and single-threaded estimate still differ in RNG
        // stream structure (chunked), so allow statistical slack only.
        let rate = clean as f64 / 2_000.0;
        assert!(
            (rate - estimate.rate()).abs() < 0.05,
            "breakdown clean-rate {rate} vs estimate {}",
            estimate.rate()
        );
    }
}
