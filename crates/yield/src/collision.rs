//! The seven frequency-collision conditions (paper Figure 3).
//!
//! With anharmonicity `delta = f12 - f01` (negative, -340 MHz for the
//! typical transmon design) the conditions are, for a connected pair
//! `(j, k)` checked in both orientations:
//!
//! 1. `f_j ~= f_k`              within 17 MHz
//! 2. `f_j ~= f_k - delta/2`    within 4 MHz
//! 3. `f_j ~= f_k - delta`      within 25 MHz
//! 4. `f_j >  f_k - delta`      (strict inequality, no threshold)
//!
//! and for qubits `i` and `k` both connected to a common qubit `j`:
//!
//! 5. `f_i ~= f_k`              within 17 MHz
//! 6. `f_i ~= f_k - delta`      within 25 MHz
//! 7. `2 f_j + delta ~= f_k + f_i` within 17 MHz
//!
//! Because every condition is symmetric once both orientations are
//! folded in, the checker reduces pair conditions to the absolute detuning
//! `d = |f_j - f_k|`: collision iff `d < 17 MHz`, `|d - 170 MHz| < 4 MHz`,
//! `|d - 340 MHz| < 25 MHz`, or `d > 340 MHz`.

use qpd_topology::Architecture;

/// Model parameters: anharmonicity and the per-condition thresholds, all
/// in GHz. Defaults follow the paper (Figure 3 and §2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollisionParams {
    /// Qubit anharmonicity `delta = f12 - f01` (negative), GHz.
    pub anharmonicity_ghz: f64,
    /// Threshold for conditions 1 and 5 (degenerate neighbors), GHz.
    pub t_degenerate_ghz: f64,
    /// Threshold for condition 2 (half-anharmonicity resonance), GHz.
    pub t_half_ghz: f64,
    /// Threshold for conditions 3 and 6 (full-anharmonicity resonance), GHz.
    pub t_full_ghz: f64,
    /// Threshold for condition 7 (two-photon resonance), GHz.
    pub t_two_photon_ghz: f64,
}

impl Default for CollisionParams {
    fn default() -> Self {
        CollisionParams {
            anharmonicity_ghz: -0.340,
            t_degenerate_ghz: 0.017,
            t_half_ghz: 0.004,
            t_full_ghz: 0.025,
            t_two_photon_ghz: 0.017,
        }
    }
}

impl CollisionParams {
    /// Whether a connected pair at frequencies `fa`, `fb` trips any of
    /// conditions 1–4. This is the single shared hot-path predicate; the
    /// checker and the local-yield evaluator both call it, so their
    /// floating-point behavior is identical by construction.
    #[inline]
    pub fn pair_collides(&self, fa: f64, fb: f64) -> bool {
        let gap = -self.anharmonicity_ghz;
        let d = (fa - fb).abs();
        d < self.t_degenerate_ghz
            || (d - gap / 2.0).abs() < self.t_half_ghz
            || (d - gap).abs() < self.t_full_ghz
            || d > gap
    }

    /// Whether qubits at `fi`, `fk` sharing a neighbor at `fj` trip any
    /// of conditions 5–7.
    #[inline]
    pub fn triple_collides(&self, fj: f64, fi: f64, fk: f64) -> bool {
        let gap = -self.anharmonicity_ghz;
        let d = (fi - fk).abs();
        d < self.t_degenerate_ghz
            || (d - gap).abs() < self.t_full_ghz
            || (2.0 * fj - gap - fi - fk).abs() < self.t_two_photon_ghz
    }
}

/// A detected collision: which condition fired and the qubits involved.
///
/// For conditions 1–4 `third` is `None`; for 5–7 the tuple is
/// `(i, k, Some(j))` with `j` the shared neighbor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollisionEvent {
    /// Condition number, 1 through 7 (Figure 3 numbering).
    pub condition: u8,
    /// First involved qubit.
    pub a: usize,
    /// Second involved qubit.
    pub b: usize,
    /// Shared neighbor for the three-qubit conditions.
    pub third: Option<usize>,
}

/// Precompiled collision checker for one architecture.
///
/// Construction extracts the connected pairs and the `(j; i, k)` triples
/// (two distinct neighbors of a common qubit) once, so the per-trial hot
/// path is a flat scan.
#[derive(Debug, Clone)]
pub struct CollisionChecker {
    params: CollisionParams,
    pairs: Vec<(u32, u32)>,
    /// (shared neighbor j, i, k) with i < k.
    triples: Vec<(u32, u32, u32)>,
}

impl CollisionChecker {
    /// Builds a checker for `arch` with default parameters.
    pub fn new(arch: &Architecture) -> Self {
        Self::with_params(arch, CollisionParams::default())
    }

    /// Builds a checker with explicit parameters.
    pub fn with_params(arch: &Architecture, params: CollisionParams) -> Self {
        let pairs: Vec<(u32, u32)> =
            arch.coupling_edges().iter().map(|&(a, b)| (a as u32, b as u32)).collect();
        let mut triples = Vec::new();
        for j in 0..arch.num_qubits() {
            let nbrs = arch.neighbors(j);
            for x in 0..nbrs.len() {
                for y in x + 1..nbrs.len() {
                    triples.push((j as u32, nbrs[x] as u32, nbrs[y] as u32));
                }
            }
        }
        CollisionChecker { params, pairs, triples }
    }

    /// The parameters in use.
    pub fn params(&self) -> &CollisionParams {
        &self.params
    }

    /// Number of connected pairs checked per trial.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Number of common-neighbor triples checked per trial.
    pub fn triple_count(&self) -> usize {
        self.triples.len()
    }

    /// The connected pairs checked per trial, as qubit indices `(a, b)` in
    /// the order [`Self::has_collision`] visits them — the batch kernels
    /// lay their per-candidate operands out in exactly this order.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// The common-neighbor triples checked per trial, as qubit indices
    /// `(j; i, k)` in [`Self::has_collision`] order.
    pub fn triples(&self) -> &[(u32, u32, u32)] {
        &self.triples
    }

    /// Whether the (post-fabrication) frequencies collide anywhere.
    ///
    /// `freqs[q]` is the frequency of qubit `q` in GHz. This is the
    /// early-exit hot path of the Monte Carlo simulator.
    ///
    /// # Panics
    ///
    /// Panics if `freqs` is shorter than the architecture's qubit count.
    pub fn has_collision(&self, freqs: &[f64]) -> bool {
        let p = &self.params;
        for &(a, b) in &self.pairs {
            if p.pair_collides(freqs[a as usize], freqs[b as usize]) {
                return true;
            }
        }
        for &(j, i, k) in &self.triples {
            if p.triple_collides(freqs[j as usize], freqs[i as usize], freqs[k as usize]) {
                return true;
            }
        }
        false
    }

    /// All collisions in the given frequencies, with condition numbers —
    /// the diagnostic (non-hot-path) variant of [`Self::has_collision`].
    ///
    /// # Panics
    ///
    /// Panics if `freqs` is shorter than the architecture's qubit count.
    pub fn collisions(&self, freqs: &[f64]) -> Vec<CollisionEvent> {
        let p = &self.params;
        let gap = -p.anharmonicity_ghz;
        let mut events = Vec::new();
        for &(a, b) in &self.pairs {
            let (a, b) = (a as usize, b as usize);
            let d = (freqs[a] - freqs[b]).abs();
            if d < p.t_degenerate_ghz {
                events.push(CollisionEvent { condition: 1, a, b, third: None });
            }
            if (d - gap / 2.0).abs() < p.t_half_ghz {
                events.push(CollisionEvent { condition: 2, a, b, third: None });
            }
            if (d - gap).abs() < p.t_full_ghz {
                events.push(CollisionEvent { condition: 3, a, b, third: None });
            }
            if d > gap {
                events.push(CollisionEvent { condition: 4, a, b, third: None });
            }
        }
        for &(j, i, k) in &self.triples {
            let (j, i, k) = (j as usize, i as usize, k as usize);
            let d = (freqs[i] - freqs[k]).abs();
            if d < p.t_degenerate_ghz {
                events.push(CollisionEvent { condition: 5, a: i, b: k, third: Some(j) });
            }
            if (d - gap).abs() < p.t_full_ghz {
                events.push(CollisionEvent { condition: 6, a: i, b: k, third: Some(j) });
            }
            if (2.0 * freqs[j] - gap - freqs[i] - freqs[k]).abs() < p.t_two_photon_ghz {
                events.push(CollisionEvent { condition: 7, a: i, b: k, third: Some(j) });
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpd_topology::Architecture;

    /// Two connected qubits.
    fn pair() -> Architecture {
        let mut b = Architecture::builder("pair");
        b.qubit(0, 0).qubit(0, 1);
        b.build().unwrap()
    }

    /// A path of three qubits: 0 - 1 - 2 (qubit 1 in the middle).
    fn path3() -> Architecture {
        let mut b = Architecture::builder("path3");
        b.qubit(0, 0).qubit(0, 1).qubit(0, 2);
        b.build().unwrap()
    }

    fn conditions(arch: &Architecture, freqs: &[f64]) -> Vec<u8> {
        let mut c: Vec<u8> =
            CollisionChecker::new(arch).collisions(freqs).iter().map(|e| e.condition).collect();
        c.sort_unstable();
        c.dedup();
        c
    }

    #[test]
    fn condition1_degenerate_pair() {
        assert_eq!(conditions(&pair(), &[5.10, 5.11]), vec![1]);
        assert!(conditions(&pair(), &[5.10, 5.13]).is_empty());
    }

    #[test]
    fn condition2_half_anharmonicity() {
        // Detuning 170 MHz within 4 MHz.
        assert_eq!(conditions(&pair(), &[5.00, 5.17]), vec![2]);
        assert_eq!(conditions(&pair(), &[5.17, 5.003]), vec![2]); // other orientation
        assert!(conditions(&pair(), &[5.00, 5.175]).is_empty());
    }

    #[test]
    fn condition3_and_4_full_anharmonicity() {
        // Detuning exactly 340 MHz: condition 3 fires; condition 4 does not
        // (strict inequality).
        assert_eq!(conditions(&pair(), &[5.00, 5.34]), vec![3]);
        // Detuning 360 MHz: conditions 3 (within 25 MHz) and 4 (d > gap).
        assert_eq!(conditions(&pair(), &[5.00, 5.36]), vec![3, 4]);
        // Detuning 400 MHz: only condition 4.
        assert_eq!(conditions(&pair(), &[5.00, 5.40]), vec![4]);
    }

    #[test]
    fn condition5_degenerate_neighbors() {
        // Qubits 0 and 2 share neighbor 1; they are 400 MHz away from the
        // middle qubit (no pair collision: d=0.4 > 0.34 -> condition 4!).
        // Use a spacing that keeps pairs clean: middle at 5.17, ends at
        // 5.05 and 5.06: pair detunings 0.12 and 0.11 are clean; ends
        // differ by 10 MHz < 17 MHz -> condition 5.
        assert_eq!(conditions(&path3(), &[5.05, 5.17, 5.06]), vec![5]);
    }

    #[test]
    fn condition6_neighbor_full_gap() {
        // Ends differ by exactly 340 MHz; middle chosen so pair detunings
        // stay clean: 5.00, 5.17, 5.34: pairs are both at 0.17 -> that is
        // condition 2 territory... shift middle: 5.00, 5.10, 5.34 gives
        // pair detunings 0.10 and 0.24 (clean) and end gap 0.34.
        let c = conditions(&path3(), &[5.00, 5.10, 5.34]);
        assert!(c.contains(&6), "got {c:?}");
        assert!(!c.contains(&1) && !c.contains(&2) && !c.contains(&3) && !c.contains(&4));
    }

    #[test]
    fn condition7_two_photon() {
        // 2 f_j + delta = f_i + f_k with j the middle qubit.
        // Pick f_i = 5.00, f_k = 5.06; f_j = (5.00 + 5.06 + 0.34) / 2 = 5.20.
        // Pair detunings: 0.20, 0.14 (clean); end gap 0.06 (clean).
        let c = conditions(&path3(), &[5.00, 5.20, 5.06]);
        assert_eq!(c, vec![7]);
    }

    #[test]
    fn unconnected_qubits_do_not_collide() {
        let mut b = Architecture::builder("far");
        b.qubit(0, 0).qubit(3, 3);
        let arch = b.build().unwrap();
        // Identical frequencies, but no coupling edge.
        assert!(conditions(&arch, &[5.10, 5.10]).is_empty());
    }

    #[test]
    fn has_collision_matches_collisions() {
        let arch = path3();
        let checker = CollisionChecker::new(&arch);
        for freqs in [
            [5.05, 5.17, 5.06],
            [5.00, 5.20, 5.06],
            [5.02, 5.14, 5.28],
            [5.00, 5.10, 5.34],
            [5.01, 5.11, 5.21],
        ] {
            assert_eq!(
                checker.has_collision(&freqs),
                !checker.collisions(&freqs).is_empty(),
                "freqs {freqs:?}"
            );
        }
    }

    #[test]
    fn counts_of_pairs_and_triples() {
        let checker = CollisionChecker::new(&path3());
        assert_eq!(checker.pair_count(), 2);
        assert_eq!(checker.triple_count(), 1);
        // A 4-qubit-bus square: 4 qubits all mutually connected (6 edges);
        // each qubit has 3 neighbors -> 4 * C(3,2) = 12 triples.
        let mut b = Architecture::builder("sq");
        b.qubit(0, 0).qubit(0, 1).qubit(1, 0).qubit(1, 1).four_qubit_bus(0, 0);
        let arch = b.build().unwrap();
        let checker = CollisionChecker::new(&arch);
        assert_eq!(checker.pair_count(), 6);
        assert_eq!(checker.triple_count(), 12);
    }

    #[test]
    fn five_frequency_neighbors_are_clean_by_design() {
        // Adjacent five-scheme frequencies (70 MHz apart or more, under
        // 340 MHz) trigger no pair condition pre-fabrication.
        let checker = CollisionChecker::new(&pair());
        for (a, b) in [(5.00, 5.07), (5.07, 5.13), (5.00, 5.27), (5.13, 5.27)] {
            assert!(!checker.has_collision(&[a, b]), "({a}, {b})");
        }
    }

    #[test]
    fn custom_params_change_sensitivity() {
        // Widen condition 1 to 50 MHz.
        let params = CollisionParams { t_degenerate_ghz: 0.050, ..Default::default() };
        let arch = pair();
        let strict = CollisionChecker::with_params(&arch, params);
        let default = CollisionChecker::new(&arch);
        let freqs = [5.10, 5.14];
        assert!(strict.has_collision(&freqs));
        assert!(!default.has_collision(&freqs));
    }
}
