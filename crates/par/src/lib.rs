//! Deterministic scoped parallelism on a persistent worker pool.
//!
//! The workspace's hot kernels (Monte Carlo yield simulation, local-yield
//! candidate evaluation, the experiment runner) are embarrassingly
//! parallel. This crate gives them one shared, lazily-initialized pool of
//! worker threads — std-only, no external dependencies — with two scoped
//! primitives:
//!
//! - [`par_map`]: map a function over a slice, results in input order;
//! - [`par_chunks`]: map a function over contiguous chunks of a slice.
//!
//! Both are **deterministic**: every index is computed by exactly one
//! worker and written to its own result slot, so the returned vector is
//! bit-identical regardless of how many threads execute it (including
//! one). Reductions built on top of them stay deterministic as long as
//! they combine results in index order (or are exact, like integer sums).
//!
//! The pool is sized from `std::thread::available_parallelism()` and can
//! be overridden with the `QPD_THREADS` environment variable (read once,
//! at first use) or per-scope with [`with_threads`]. The calling thread
//! always participates in the work, so `QPD_THREADS=1` runs everything
//! inline on the caller with no queueing overhead, and a starved pool can
//! never deadlock a caller.
//!
//! # Worked example
//!
//! Estimate π by splitting a deterministic quasi-random scan into chunks,
//! then mapping a transform over the per-chunk tallies. The result is the
//! same for any thread count:
//!
//! ```
//! // 20,000 lattice points, tested for membership in the unit circle.
//! let points: Vec<u64> = (0..20_000).collect();
//! let hits = qpd_par::par_chunks(&points, 1024, |_chunk_index, chunk| {
//!     chunk
//!         .iter()
//!         .filter(|&&i| {
//!             let x = (i % 200) as f64 / 200.0;
//!             let y = (i / 200) as f64 / 100.0;
//!             x * x + y * y <= 1.0
//!         })
//!         .count() as u64
//! });
//! // Index-ordered results: an exact sum is thread-count invariant.
//! let total: u64 = hits.iter().sum();
//! let pi = 4.0 * total as f64 / 20_000.0;
//! assert!((pi - std::f64::consts::PI).abs() < 0.05);
//!
//! // The same computation pinned to one thread is bit-identical.
//! let serial = qpd_par::with_threads(1, || {
//!     qpd_par::par_chunks(&points, 1024, |_, chunk| chunk.len() as u64)
//! });
//! assert_eq!(serial.iter().sum::<u64>(), 20_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard ceiling on pool workers; `QPD_THREADS` and [`with_threads`]
/// requests are clamped to it.
const MAX_THREADS: usize = 256;

type Job = Box<dyn FnOnce() + Send>;

/// The job queue shared by all persistent workers.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

fn shared() -> &'static Arc<Shared> {
    static SHARED: OnceLock<Arc<Shared>> = OnceLock::new();
    SHARED.get_or_init(|| {
        Arc::new(Shared { queue: Mutex::new(VecDeque::new()), ready: Condvar::new() })
    })
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.ready.wait(queue).expect("pool queue poisoned");
            }
        };
        // Jobs never unwind: `TaskState::drain` catches panics itself.
        job();
    }
}

/// Grows the persistent pool to at least `n` workers (lazily: the first
/// parallel call spawns them). Spawn failures degrade gracefully — the
/// caller drains whatever the pool does not.
fn ensure_workers(n: usize) {
    static SPAWNED: Mutex<usize> = Mutex::new(0);
    let mut spawned = SPAWNED.lock().expect("worker counter poisoned");
    while *spawned < n.min(MAX_THREADS) {
        let shared = Arc::clone(shared());
        let builder = std::thread::Builder::new().name(format!("qpd-par-{spawned}"));
        if builder.spawn(move || worker_loop(shared)).is_err() {
            break;
        }
        *spawned += 1;
    }
}

fn submit(job: Job) {
    let shared = shared();
    shared.queue.lock().expect("pool queue poisoned").push_back(job);
    shared.ready.notify_one();
}

/// Parses a `QPD_THREADS`-style value: a positive integer, clamped to
/// [`MAX_THREADS`]; anything else means "not configured".
fn parse_threads(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .map(|n| n.min(MAX_THREADS))
}

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        parse_threads(std::env::var("QPD_THREADS").ok().as_deref()).unwrap_or_else(|| {
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
        })
    })
}

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The thread count parallel primitives will use on this thread: the
/// innermost [`with_threads`] override, else `QPD_THREADS` (read once),
/// else `std::thread::available_parallelism()`.
pub fn threads() -> usize {
    OVERRIDE.with(Cell::get).unwrap_or_else(default_threads)
}

/// Runs `f` with the effective thread count pinned to `n` on the calling
/// thread (nested parallel calls made directly by `f` observe it; work
/// already running on pool workers does not). The previous value is
/// restored afterwards, including on unwind.
///
/// This is the in-process equivalent of setting `QPD_THREADS=n`, and what
/// the determinism tests use to prove thread-count invariance.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "thread count must be at least 1");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|cell| cell.replace(Some(n.min(MAX_THREADS)))));
    f()
}

/// Progress of one scoped parallel region, guarded by a single mutex:
/// the work items are chunky (thousands of Monte Carlo trials each), so
/// per-item locking is noise.
struct Progress {
    /// Next unclaimed index; monotonically non-decreasing.
    next: usize,
    /// Claimed indices whose execution has finished (successfully or not).
    finished: usize,
    /// Whether any item panicked (stops further claims).
    panicked: bool,
    /// First panic payload, for the owner to rethrow.
    payload: Option<Box<dyn Any + Send>>,
}

/// One scoped parallel region. `work` borrows the owner's stack; the
/// owner must not return before every claimed index has finished
/// (enforced by [`TaskState::wait`]). Helpers that arrive late claim
/// nothing and never dereference `work`.
struct TaskState {
    work: *const (dyn Fn(usize) + Sync),
    len: usize,
    progress: Mutex<Progress>,
    done: Condvar,
}

// SAFETY: `work` is only dereferenced between a successful claim and the
// matching `finished` increment, and the owning stack frame outlives all
// claims (it blocks in `wait` until `finished == next`).
unsafe impl Send for TaskState {}
unsafe impl Sync for TaskState {}

impl TaskState {
    /// Claims and runs indices until none remain (or a panic is seen).
    /// Both the owner and pool helpers run this; it never unwinds.
    fn drain(&self) {
        loop {
            let index = {
                let mut p = self.progress.lock().expect("task progress poisoned");
                if p.panicked || p.next >= self.len {
                    break;
                }
                let index = p.next;
                p.next += 1;
                index
            };
            // SAFETY: the owner is still inside `run_indexed` (it cannot
            // pass `wait` while our claim is unfinished), so `work` is live.
            let work = unsafe { &*self.work };
            let result = catch_unwind(AssertUnwindSafe(|| work(index)));
            let mut p = self.progress.lock().expect("task progress poisoned");
            p.finished += 1;
            if let Err(payload) = result {
                p.panicked = true;
                if p.payload.is_none() {
                    p.payload = Some(payload);
                }
            }
            if p.finished == p.next && (p.next >= self.len || p.panicked) {
                self.done.notify_all();
            }
        }
    }

    /// Blocks until every claimed index has finished and no further
    /// claims are possible, then returns the first panic payload, if any.
    fn wait(&self) -> Option<Box<dyn Any + Send>> {
        let mut p = self.progress.lock().expect("task progress poisoned");
        while !(p.finished == p.next && (p.next >= self.len || p.panicked)) {
            p = self.done.wait(p).expect("task progress poisoned");
        }
        p.payload.take()
    }
}

/// A raw pointer that may cross threads: each claimed index writes a
/// distinct slot, so concurrent use is race-free.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// wrapper — and with it the `Send`/`Sync` impls — not the raw field.
    fn get(&self) -> *mut T {
        self.0
    }
}

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Computes `f(0..len)` into a vector, fanning the indices out over the
/// pool. Results are written to per-index slots, so the output does not
/// depend on the thread count. Panics from `f` are forwarded to the
/// caller after all in-flight work has drained.
fn run_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads();
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }

    let mut slots: Vec<MaybeUninit<R>> = Vec::with_capacity(len);
    slots.resize_with(len, MaybeUninit::uninit);
    let out = SendPtr(slots.as_mut_ptr());
    let work = move |i: usize| {
        // SAFETY: each index is claimed exactly once; distinct slots.
        unsafe { (*out.get().add(i)).write(f(i)) };
    };
    let work_ref: &(dyn Fn(usize) + Sync) = &work;
    // SAFETY: erase the borrow's lifetime so pool workers can hold the
    // pointer. `wait` below keeps this frame alive past every dereference.
    let work_ptr: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(work_ref) };
    let state = Arc::new(TaskState {
        work: work_ptr,
        len,
        progress: Mutex::new(Progress { next: 0, finished: 0, panicked: false, payload: None }),
        done: Condvar::new(),
    });

    let helpers = (threads - 1).min(len - 1);
    ensure_workers(helpers);
    for _ in 0..helpers {
        let helper = Arc::clone(&state);
        submit(Box::new(move || helper.drain()));
    }
    state.drain();
    let panic = state.wait();
    if let Some(payload) = panic {
        // `slots` drops without running destructors of initialized
        // elements; leaking on the panic path is acceptable.
        resume_unwind(payload);
    }

    // No panic: every index in 0..len was claimed and finished, so every
    // slot is initialized.
    let mut slots = ManuallyDrop::new(slots);
    let (ptr, length, capacity) = (slots.as_mut_ptr(), slots.len(), slots.capacity());
    // SAFETY: Vec<MaybeUninit<R>> and Vec<R> share layout; all slots are
    // initialized; ptr/length/capacity come from the original vector.
    unsafe { Vec::from_raw_parts(ptr as *mut R, length, capacity) }
}

/// Maps `f` over `items` on the pool, returning results in input order.
///
/// Deterministic: the output is identical for any thread count. The
/// calling thread participates, so this never blocks on pool capacity.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_indexed(items.len(), |i| f(&items[i]))
}

/// Maps `f` over contiguous chunks of `items` (each of `chunk_len`
/// elements; the last may be shorter), passing the chunk index and the
/// chunk. Results are in chunk order, so concatenating them reproduces
/// the serial iteration order exactly.
///
/// # Panics
///
/// Panics if `chunk_len` is zero.
pub fn par_chunks<T, R, F>(items: &[T], chunk_len: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    assert!(chunk_len > 0, "chunk length must be positive");
    let chunks: Vec<&[T]> = items.chunks(chunk_len).collect();
    run_indexed(chunks.len(), |i| f(i, chunks[i]))
}

/// Maps `f` over disjoint *mutable* chunks of `items` (each of
/// `chunk_len` elements; the last may be shorter), passing the chunk
/// index and the chunk. The chunks partition `items`, each is visited by
/// exactly one worker, and results come back in chunk order.
///
/// # Panics
///
/// Panics if `chunk_len` is zero.
pub fn par_chunks_mut<T, R, F>(items: &mut [T], chunk_len: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    assert!(chunk_len > 0, "chunk length must be positive");
    let parts: Vec<(SendPtr<T>, usize)> =
        items.chunks_mut(chunk_len).map(|c| (SendPtr(c.as_mut_ptr()), c.len())).collect();
    run_indexed(parts.len(), |i| {
        let (ref ptr, len) = parts[i];
        // SAFETY: the chunks are disjoint subslices of `items` (pointer
        // provenance preserved via SendPtr), each index is claimed by
        // exactly one worker, and the caller blocks until all work
        // finishes — standard scoped split-at-mut.
        let chunk = unsafe { std::slice::from_raw_parts_mut(ptr.get(), len) };
        f(i, chunk)
    })
}

/// Computes `f(i)` for every `i in 0..len` on the pool, returning results
/// in index order — the batch-shaped fan-out for callers whose work units
/// are a flat grid (e.g. candidate-group x RNG-chunk cells) rather than a
/// slice. Deterministic: the output is identical for any thread count,
/// and the calling thread participates, so this never blocks on pool
/// capacity.
pub fn par_indices<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run_indexed(len, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn mix(i: u64) -> u64 {
        // SplitMix64 finalizer: cheap, deterministic per-index payload.
        let mut z = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn map_preserves_order_and_values() {
        let items: Vec<u64> = (0..1_000).collect();
        let expected: Vec<u64> = items.iter().map(|&i| mix(i)).collect();
        for threads in [1, 2, 3, 8] {
            let got = with_threads(threads, || par_map(&items, |&i| mix(i)));
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn indices_preserve_order_and_values() {
        let expected: Vec<u64> = (0..1_003).map(mix).collect();
        for threads in [1, 2, 3, 8] {
            let got = with_threads(threads, || par_indices(1_003, |i| mix(i as u64)));
            assert_eq!(got, expected, "threads = {threads}");
        }
        assert!(par_indices(0, |i| i).is_empty());
    }

    #[test]
    fn chunks_cover_exactly_once() {
        let items: Vec<u64> = (0..997).collect(); // prime: ragged tail
        for chunk_len in [1, 7, 64, 997, 2_000] {
            let sums = with_threads(4, || {
                par_chunks(&items, chunk_len, |_, chunk| chunk.iter().sum::<u64>())
            });
            assert_eq!(sums.iter().sum::<u64>(), items.iter().sum::<u64>(), "len {chunk_len}");
            assert_eq!(sums.len(), items.len().div_ceil(chunk_len));
        }
    }

    #[test]
    fn chunk_indices_line_up() {
        let items: Vec<usize> = (0..100).collect();
        let firsts = with_threads(8, || par_chunks(&items, 16, |ci, chunk| (ci, chunk[0])));
        for (ci, first) in firsts {
            assert_eq!(first, ci * 16);
        }
    }

    #[test]
    fn chunks_mut_writes_every_slot() {
        let mut data = vec![0u64; 1_003];
        for threads in [1, 4] {
            data.iter_mut().for_each(|d| *d = 0);
            let lens = with_threads(threads, || {
                par_chunks_mut(&mut data, 64, |ci, chunk| {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = mix((ci * 64 + j) as u64);
                    }
                    chunk.len()
                })
            });
            assert_eq!(lens.iter().sum::<usize>(), data.len());
            for (i, &d) in data.iter().enumerate() {
                assert_eq!(d, mix(i as u64), "slot {i} threads {threads}");
            }
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: [u32; 0] = [];
        assert_eq!(par_map(&empty, |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[5u32], |&x| x * 2), vec![10]);
        assert_eq!(par_chunks(&empty, 4, |_, c| c.len()), Vec::<usize>::new());
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let items: Vec<u64> = (0..5_000).collect();
        let baseline = with_threads(1, || par_map(&items, |&i| mix(i) as f64 / u64::MAX as f64));
        for threads in [2, 5, 8] {
            let other =
                with_threads(threads, || par_map(&items, |&i| mix(i) as f64 / u64::MAX as f64));
            assert!(
                baseline.iter().zip(&other).all(|(a, b)| a.to_bits() == b.to_bits()),
                "bitwise mismatch at {threads} threads"
            );
        }
    }

    #[test]
    fn nested_parallelism_completes() {
        let outer: Vec<u64> = (0..8).collect();
        let got = with_threads(4, || {
            par_map(&outer, |&o| {
                let inner: Vec<u64> = (0..64).map(|i| o * 64 + i).collect();
                par_map(&inner, |&i| mix(i)).iter().fold(0u64, |a, &x| a.wrapping_add(x))
            })
        });
        let expected: Vec<u64> = (0..8u64)
            .map(|o| (0..64).map(|i| mix(o * 64 + i)).fold(0u64, |a, x| a.wrapping_add(x)))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn panics_propagate_to_caller() {
        let items: Vec<u64> = (0..100).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_threads(4, || {
                par_map(&items, |&i| {
                    if i == 57 {
                        panic!("boom at {i}");
                    }
                    i
                })
            })
        }));
        let payload = result.expect_err("must propagate");
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("boom at 57"), "got {message}");
    }

    #[test]
    fn with_threads_restores_on_unwind() {
        let before = threads();
        let _ = catch_unwind(AssertUnwindSafe(|| {
            with_threads(7, || {
                assert_eq!(threads(), 7);
                panic!("unwind");
            })
        }));
        assert_eq!(threads(), before);
    }

    #[test]
    fn with_threads_nests() {
        with_threads(4, || {
            assert_eq!(threads(), 4);
            with_threads(2, || assert_eq!(threads(), 2));
            assert_eq!(threads(), 4);
        });
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..512).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..512).collect();
        with_threads(8, || {
            par_map(&items, |&i| hits[i].fetch_add(1, Ordering::Relaxed));
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parse_threads_rules() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("-3")), None);
        assert_eq!(parse_threads(Some("junk")), None);
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 12 ")), Some(12));
        assert_eq!(parse_threads(Some("100000")), Some(MAX_THREADS));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threads_rejected() {
        with_threads(0, || ());
    }
}
