//! Gate dependency DAG over a circuit.
//!
//! Routing algorithms (SABRE in `qpd-mapping`) consume circuits as a
//! dependency graph: instruction B depends on instruction A when they share
//! a qubit and A precedes B. The DAG exposes the *front layer* (instructions
//! with no unresolved dependencies) and lets callers retire instructions to
//! release their successors.

use crate::circuit::Circuit;

/// Immutable dependency structure of a circuit, with per-gate successor
/// lists and in-degrees.
///
/// ```
/// use qpd_circuit::{Circuit, GateDag};
///
/// let mut c = Circuit::new(3);
/// c.cx(0, 1).cx(1, 2).cx(0, 2);
/// let dag = GateDag::new(&c);
/// assert_eq!(dag.initial_front(), &[0]);
/// assert_eq!(dag.successors(0), &[1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct GateDag {
    successors: Vec<Vec<usize>>,
    in_degree: Vec<usize>,
    initial_front: Vec<usize>,
}

impl GateDag {
    /// Builds the dependency DAG for `circuit`.
    ///
    /// Two instructions are ordered iff they share at least one qubit;
    /// each instruction depends on the previous instruction on each of its
    /// qubit lines (transitive edges are not materialized).
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut in_degree = vec![0usize; n];
        let mut last_on_line: Vec<Option<usize>> = vec![None; circuit.num_qubits()];

        for (idx, inst) in circuit.iter().enumerate() {
            for q in inst.qubits() {
                if let Some(prev) = last_on_line[q.index()] {
                    // A gate touching two lines whose previous gate is the
                    // same instruction must not double-count the edge.
                    if successors[prev].last() != Some(&idx) {
                        successors[prev].push(idx);
                        in_degree[idx] += 1;
                    }
                }
                last_on_line[q.index()] = Some(idx);
            }
        }

        let initial_front = (0..n).filter(|&i| in_degree[i] == 0).collect();
        GateDag { successors, in_degree, initial_front }
    }

    /// Number of instructions in the underlying circuit.
    pub fn len(&self) -> usize {
        self.in_degree.len()
    }

    /// Whether the underlying circuit was empty.
    pub fn is_empty(&self) -> bool {
        self.in_degree.is_empty()
    }

    /// Instructions with no dependencies at all (the initial front layer).
    pub fn initial_front(&self) -> &[usize] {
        &self.initial_front
    }

    /// Direct successors of instruction `idx`.
    pub fn successors(&self, idx: usize) -> &[usize] {
        &self.successors[idx]
    }

    /// In-degree (number of direct predecessors) of instruction `idx`.
    pub fn in_degree(&self, idx: usize) -> usize {
        self.in_degree[idx]
    }

    /// Creates a mutable traversal cursor over this DAG.
    pub fn cursor(&self) -> DagCursor<'_> {
        DagCursor {
            dag: self,
            remaining_preds: self.in_degree.clone(),
            executed: vec![false; self.len()],
            executed_count: 0,
        }
    }
}

/// A mutable topological traversal over a [`GateDag`].
///
/// Callers retire ready instructions with [`DagCursor::execute`]; newly
/// released successors are returned so the caller can maintain its own
/// front layer.
#[derive(Debug, Clone)]
pub struct DagCursor<'a> {
    dag: &'a GateDag,
    remaining_preds: Vec<usize>,
    executed: Vec<bool>,
    executed_count: usize,
}

impl<'a> DagCursor<'a> {
    /// Whether instruction `idx` has all dependencies resolved and has not
    /// been executed yet.
    pub fn is_ready(&self, idx: usize) -> bool {
        !self.executed[idx] && self.remaining_preds[idx] == 0
    }

    /// Whether instruction `idx` has been executed.
    pub fn is_executed(&self, idx: usize) -> bool {
        self.executed[idx]
    }

    /// Number of instructions executed so far.
    pub fn executed_count(&self) -> usize {
        self.executed_count
    }

    /// Whether every instruction has been executed.
    pub fn is_done(&self) -> bool {
        self.executed_count == self.dag.len()
    }

    /// Retires instruction `idx`, returning the successors that became
    /// ready as a result.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not ready (unexecuted with zero remaining
    /// predecessors); executing out of order would corrupt the traversal.
    pub fn execute(&mut self, idx: usize) -> Vec<usize> {
        let mut released = Vec::new();
        self.execute_into(idx, &mut released);
        released
    }

    /// [`Self::execute`] into a caller-owned buffer: newly released
    /// successors are *appended* to `released` (the buffer is not
    /// cleared), so a traversal loop can retire every instruction of a
    /// front layer without allocating per gate.
    ///
    /// # Panics
    ///
    /// As [`Self::execute`].
    pub fn execute_into(&mut self, idx: usize, released: &mut Vec<usize>) {
        assert!(self.is_ready(idx), "instruction {idx} executed out of order");
        self.executed[idx] = true;
        self.executed_count += 1;
        for &succ in self.dag.successors(idx) {
            self.remaining_preds[succ] -= 1;
            if self.remaining_preds[succ] == 0 {
                released.push(succ);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    fn chain3() -> Circuit {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2).cx(0, 2);
        c
    }

    #[test]
    fn front_and_successors() {
        let dag = GateDag::new(&chain3());
        assert_eq!(dag.initial_front(), &[0]);
        assert_eq!(dag.successors(0), &[1, 2]);
        assert_eq!(dag.successors(1), &[2]);
        assert_eq!(dag.in_degree(2), 2);
    }

    #[test]
    fn no_duplicate_edges_for_shared_pair() {
        // Both lines of the second cx end at the first cx.
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0);
        let dag = GateDag::new(&c);
        assert_eq!(dag.successors(0), &[1]);
        assert_eq!(dag.in_degree(1), 1);
    }

    #[test]
    fn cursor_releases_in_topological_order() {
        let dag = GateDag::new(&chain3());
        let mut cur = dag.cursor();
        assert!(cur.is_ready(0));
        assert!(!cur.is_ready(1));
        let released = cur.execute(0);
        assert_eq!(released, vec![1]);
        let released = cur.execute(1);
        assert_eq!(released, vec![2]);
        assert!(!cur.is_done());
        cur.execute(2);
        assert!(cur.is_done());
        assert_eq!(cur.executed_count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn cursor_rejects_out_of_order() {
        let dag = GateDag::new(&chain3());
        let mut cur = dag.cursor();
        cur.execute(2);
    }

    #[test]
    fn parallel_gates_all_in_front() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3);
        let dag = GateDag::new(&c);
        assert_eq!(dag.initial_front(), &[0, 1]);
    }

    #[test]
    fn single_qubit_gates_chain() {
        let mut c = Circuit::new(1);
        c.h(0).x(0).h(0);
        let dag = GateDag::new(&c);
        assert_eq!(dag.initial_front(), &[0]);
        assert_eq!(dag.successors(0), &[1]);
        assert_eq!(dag.successors(1), &[2]);
    }

    #[test]
    fn empty_circuit() {
        let dag = GateDag::new(&Circuit::new(3));
        assert!(dag.is_empty());
        assert!(dag.cursor().is_done());
    }
}
