//! Seeded random circuit generation for tests and benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::qubit::Qubit;

/// Configuration for [`random_circuit`].
#[derive(Debug, Clone)]
pub struct RandomCircuitSpec {
    /// Number of qubits.
    pub num_qubits: usize,
    /// Number of gates to draw.
    pub num_gates: usize,
    /// Probability that a drawn gate is a two-qubit gate (CX).
    pub two_qubit_fraction: f64,
    /// RNG seed; equal seeds give equal circuits.
    pub seed: u64,
}

impl Default for RandomCircuitSpec {
    fn default() -> Self {
        RandomCircuitSpec { num_qubits: 5, num_gates: 50, two_qubit_fraction: 0.4, seed: 0 }
    }
}

/// Generates a random circuit of single-qubit rotations and CNOTs.
///
/// The output is deterministic in the spec (including the seed), making it
/// safe for golden tests and criterion benchmarks.
///
/// # Panics
///
/// Panics if `num_qubits < 2` while `two_qubit_fraction > 0`, or if
/// `two_qubit_fraction` is outside `[0, 1]`.
pub fn random_circuit(spec: &RandomCircuitSpec) -> Circuit {
    assert!(
        (0.0..=1.0).contains(&spec.two_qubit_fraction),
        "two_qubit_fraction must be within [0, 1]"
    );
    assert!(
        spec.num_qubits >= 2 || spec.two_qubit_fraction == 0.0,
        "two-qubit gates need at least 2 qubits"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut c = Circuit::new(spec.num_qubits);
    for _ in 0..spec.num_gates {
        if rng.gen_bool(spec.two_qubit_fraction) {
            let a = rng.gen_range(0..spec.num_qubits);
            let mut b = rng.gen_range(0..spec.num_qubits - 1);
            if b >= a {
                b += 1;
            }
            c.push(Gate::Cx, &[Qubit::from(a), Qubit::from(b)]).expect("valid random cx");
        } else {
            let q = Qubit::from(rng.gen_range(0..spec.num_qubits));
            let gate = match rng.gen_range(0..4) {
                0 => Gate::H,
                1 => Gate::Rx(rng.gen_range(-3.2..3.2)),
                2 => Gate::Ry(rng.gen_range(-3.2..3.2)),
                _ => Gate::Rz(rng.gen_range(-3.2..3.2)),
            };
            c.push(gate, &[q]).expect("valid random 1q gate");
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let spec = RandomCircuitSpec { seed: 42, ..Default::default() };
        assert_eq!(random_circuit(&spec), random_circuit(&spec));
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_circuit(&RandomCircuitSpec { seed: 1, ..Default::default() });
        let b = random_circuit(&RandomCircuitSpec { seed: 2, ..Default::default() });
        assert_ne!(a, b);
    }

    #[test]
    fn respects_gate_count_and_width() {
        let spec = RandomCircuitSpec { num_qubits: 7, num_gates: 123, ..Default::default() };
        let c = random_circuit(&spec);
        assert_eq!(c.num_qubits(), 7);
        assert_eq!(c.len(), 123);
    }

    #[test]
    fn pure_single_qubit_circuit() {
        let spec =
            RandomCircuitSpec { num_qubits: 1, num_gates: 10, two_qubit_fraction: 0.0, seed: 3 };
        let c = random_circuit(&spec);
        assert_eq!(c.two_qubit_gate_count(), 0);
    }

    #[test]
    fn two_qubit_fraction_one() {
        let spec =
            RandomCircuitSpec { num_qubits: 4, num_gates: 30, two_qubit_fraction: 1.0, seed: 9 };
        let c = random_circuit(&spec);
        assert_eq!(c.two_qubit_gate_count(), 30);
    }
}
