//! Peephole circuit optimization.
//!
//! Decomposition and routing leave easy savings behind: adjacent
//! self-inverse pairs (`CX; CX`, `H; H`), rotation chains
//! (`Rz(a); Rz(b)` -> `Rz(a+b)`), and identity rotations. This pass
//! removes them. It is deliberately local — it never reorders gates —
//! so it preserves the per-line gate order that routing verification
//! depends on, and it only shrinks circuits.
//!
//! The paper's gate-count metric uses unoptimized post-mapping circuits;
//! the experiment harness therefore does not run this pass. It exists
//! for downstream users of the library (and is exercised in tests
//! against the reference simulator).

use crate::circuit::{Circuit, Instruction};
use crate::gate::Gate;

/// Angle below which a rotation is considered the identity.
const EPS: f64 = 1e-12;

/// Whether two instructions are adjacent inverses that cancel exactly.
fn cancels(a: &Instruction, b: &Instruction) -> bool {
    if a.qubits() != b.qubits() {
        return false;
    }
    matches!(
        (a.gate(), b.gate()),
        (Gate::H, Gate::H)
            | (Gate::X, Gate::X)
            | (Gate::Y, Gate::Y)
            | (Gate::Z, Gate::Z)
            | (Gate::Cx, Gate::Cx)
            | (Gate::Cy, Gate::Cy)
            | (Gate::Cz, Gate::Cz)
            | (Gate::Swap, Gate::Swap)
            | (Gate::Ccx, Gate::Ccx)
            | (Gate::Cswap, Gate::Cswap)
            | (Gate::S, Gate::Sdg)
            | (Gate::Sdg, Gate::S)
            | (Gate::T, Gate::Tdg)
            | (Gate::Tdg, Gate::T)
            | (Gate::Sx, Gate::Sxdg)
            | (Gate::Sxdg, Gate::Sx)
    )
}

/// Merges two same-axis rotations on identical operands, if possible.
fn merge(a: &Instruction, b: &Instruction) -> Option<Instruction> {
    if a.qubits() != b.qubits() {
        return None;
    }
    let gate = match (a.gate(), b.gate()) {
        (Gate::Rx(x), Gate::Rx(y)) => Gate::Rx(x + y),
        (Gate::Ry(x), Gate::Ry(y)) => Gate::Ry(x + y),
        (Gate::Rz(x), Gate::Rz(y)) => Gate::Rz(x + y),
        (Gate::P(x), Gate::P(y)) => Gate::P(x + y),
        (Gate::Cp(x), Gate::Cp(y)) => Gate::Cp(x + y),
        (Gate::Crz(x), Gate::Crz(y)) => Gate::Crz(x + y),
        (Gate::Rzz(x), Gate::Rzz(y)) => Gate::Rzz(x + y),
        _ => return None,
    };
    Some(Instruction::new(gate, a.qubits().to_vec()).expect("operands already validated"))
}

/// Whether the instruction is an identity rotation (or an explicit `id`).
fn is_identity(inst: &Instruction) -> bool {
    match inst.gate() {
        Gate::I => true,
        Gate::Rx(t)
        | Gate::Ry(t)
        | Gate::Rz(t)
        | Gate::P(t)
        | Gate::Cp(t)
        | Gate::Crz(t)
        | Gate::Rzz(t) => t.abs() < EPS,
        _ => false,
    }
}

/// Runs the peephole pass to a fixed point: cancels adjacent inverse
/// pairs, merges same-axis rotations, and drops identity rotations.
/// "Adjacent" means consecutive *on the instruction's qubit line(s)*
/// with no intervening gate sharing a qubit, so independent gates on
/// other qubits do not block cancellation.
pub fn peephole(circuit: &Circuit) -> Circuit {
    let mut work: Vec<Option<Instruction>> = circuit.iter().cloned().map(Some).collect();
    let num_qubits = circuit.num_qubits();

    loop {
        let mut changed = false;
        // last_on_line[q] = index into `work` of the latest live gate
        // touching qubit q.
        let mut last_on_line: Vec<Option<usize>> = vec![None; num_qubits];
        for idx in 0..work.len() {
            let Some(inst) = work[idx].clone() else { continue };
            if is_identity(&inst) {
                work[idx] = None;
                changed = true;
                continue;
            }
            // The candidate predecessor must be the previous gate on
            // *every* operand line.
            let preds: Vec<Option<usize>> =
                inst.qubits().iter().map(|q| last_on_line[q.index()]).collect();
            let same_pred =
                preds.first().copied().flatten().filter(|&p| preds.iter().all(|&x| x == Some(p)));
            let mut consumed = false;
            if let Some(p) = same_pred {
                let prev = work[p].clone().expect("live predecessor");
                if cancels(&prev, &inst) {
                    // Both vanish; restore the line pointers of the
                    // predecessor's own predecessors lazily by rescanning
                    // on the next outer iteration.
                    work[p] = None;
                    work[idx] = None;
                    changed = true;
                    consumed = true;
                } else if let Some(merged) = merge(&prev, &inst) {
                    work[p] = None;
                    work[idx] = Some(merged.clone());
                    changed = true;
                    if is_identity(&merged) {
                        work[idx] = None;
                        consumed = true;
                    }
                }
            }
            if !consumed {
                if let Some(live) = &work[idx] {
                    for q in live.qubits() {
                        last_on_line[q.index()] = Some(idx);
                    }
                } else {
                    // Cancelled pair: clear stale line pointers to the
                    // predecessor.
                    for (q, &pred) in inst.qubits().iter().zip(&preds) {
                        if last_on_line[q.index()] == pred {
                            last_on_line[q.index()] = None;
                        }
                    }
                }
            } else {
                for (q, &pred) in inst.qubits().iter().zip(&preds) {
                    if last_on_line[q.index()] == pred || last_on_line[q.index()] == Some(idx) {
                        last_on_line[q.index()] = None;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = Circuit::new(num_qubits);
    for inst in work.into_iter().flatten() {
        out.push_instruction(inst).expect("instructions were valid");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose_to_native;
    use crate::random::{random_circuit, RandomCircuitSpec};
    use crate::sim::StateVector;

    #[test]
    fn cancels_adjacent_cx_pairs() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1).h(0);
        let opt = peephole(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.instructions()[0].gate().name(), "h");
    }

    #[test]
    fn independent_gates_do_not_block() {
        // A gate on another qubit between the pair must not prevent
        // cancellation.
        let mut c = Circuit::new(3);
        c.cx(0, 1).h(2).cx(0, 1);
        let opt = peephole(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.instructions()[0].gate().name(), "h");
    }

    #[test]
    fn interleaved_gate_blocks_cancellation() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).h(1).cx(0, 1);
        let opt = peephole(&c);
        assert_eq!(opt.len(), 3, "h on the target must block");
    }

    #[test]
    fn merges_rotations() {
        let mut c = Circuit::new(1);
        c.rz(0.25, 0).rz(0.5, 0);
        let opt = peephole(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.instructions()[0].gate().params(), vec![0.75]);
    }

    #[test]
    fn merged_identity_vanishes() {
        let mut c = Circuit::new(1);
        c.rz(0.4, 0).rz(-0.4, 0);
        assert!(peephole(&c).is_empty());
    }

    #[test]
    fn drops_identity_rotations() {
        let mut c = Circuit::new(2);
        c.rx(0.0, 0).cp(0.0, 0, 1).h(1);
        let opt = peephole(&c);
        assert_eq!(opt.len(), 1);
    }

    #[test]
    fn cascades_to_fixed_point() {
        // h h around a cancelling cx pair: everything vanishes, but only
        // after the inner pair goes first.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).cx(0, 1).h(0);
        assert!(peephole(&c).is_empty());
    }

    #[test]
    fn s_sdg_and_t_tdg_cancel() {
        let mut c = Circuit::new(1);
        c.s(0).sdg(0).t(0).tdg(0);
        assert!(peephole(&c).is_empty());
    }

    #[test]
    fn preserves_semantics_on_random_circuits() {
        for seed in 0..10 {
            let c = random_circuit(&RandomCircuitSpec {
                num_qubits: 5,
                num_gates: 80,
                two_qubit_fraction: 0.4,
                seed,
            });
            let opt = peephole(&c);
            assert!(opt.len() <= c.len());
            let a = StateVector::from_circuit(&c).unwrap();
            let b = StateVector::from_circuit(&opt).unwrap();
            assert!(a.approx_eq_global_phase(&b, 1e-9), "seed {seed}");
        }
    }

    #[test]
    fn preserves_semantics_on_decomposed_benchmark_like_circuit() {
        let mut c = Circuit::new(5);
        c.ccx(0, 1, 2).ccx(0, 1, 2).mcx(&[0, 1, 2], 3).h(4);
        let native = decompose_to_native(&c).unwrap();
        let opt = peephole(&native);
        assert!(opt.len() < native.len(), "toffoli pair should shrink");
        let a = StateVector::from_circuit(&native).unwrap();
        let b = StateVector::from_circuit(&opt).unwrap();
        assert!(a.approx_eq_global_phase(&b, 1e-9));
    }

    #[test]
    fn measure_and_barrier_are_untouched() {
        let mut c = Circuit::new(2);
        c.measure(0).barrier_all().measure(1);
        let opt = peephole(&c);
        assert_eq!(opt.len(), 3);
    }
}
