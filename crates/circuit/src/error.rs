//! Error types for circuit construction and OpenQASM processing.

use std::error::Error;
use std::fmt;

use crate::gate::Arity;

/// Error constructing or transforming a [`Circuit`](crate::Circuit).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A gate referenced a qubit index outside the circuit.
    QubitOutOfRange {
        /// Offending qubit index.
        qubit: u32,
        /// Number of qubits in the circuit.
        num_qubits: usize,
    },
    /// The same qubit appeared twice among one gate's operands.
    DuplicateOperand {
        /// The repeated qubit index.
        qubit: u32,
    },
    /// A gate received the wrong number of operands.
    WrongArity {
        /// Gate name.
        gate: &'static str,
        /// Operands the gate accepts.
        expected: Arity,
        /// Operands actually provided.
        actual: usize,
    },
    /// A qubit permutation passed to `remap` was not a bijection on the
    /// circuit's qubits.
    InvalidPermutation {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A decomposition required scratch qubits the circuit does not have.
    NotEnoughAncillas {
        /// Gate being decomposed.
        gate: &'static str,
        /// Scratch qubits required.
        needed: usize,
        /// Scratch qubits available.
        available: usize,
    },
    /// The circuit cannot be inverted because it contains a non-unitary
    /// operation.
    NotInvertible {
        /// The offending gate.
        gate: &'static str,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(f, "qubit q{qubit} out of range for circuit with {num_qubits} qubits")
            }
            CircuitError::DuplicateOperand { qubit } => {
                write!(f, "qubit q{qubit} used twice in one instruction")
            }
            CircuitError::WrongArity { gate, expected, actual } => {
                write!(f, "gate `{gate}` takes {expected} operand(s), got {actual}")
            }
            CircuitError::InvalidPermutation { reason } => {
                write!(f, "invalid qubit permutation: {reason}")
            }
            CircuitError::NotEnoughAncillas { gate, needed, available } => {
                write!(
                    f,
                    "decomposing `{gate}` needs {needed} scratch qubit(s), only {available} available"
                )
            }
            CircuitError::NotInvertible { gate } => {
                write!(f, "cannot invert a circuit containing `{gate}`")
            }
        }
    }
}

impl Error for CircuitError {}

/// Error lexing, parsing, elaborating, or emitting OpenQASM 2.0.
#[derive(Debug, Clone, PartialEq)]
pub struct QasmError {
    line: usize,
    col: usize,
    message: String,
}

impl QasmError {
    /// Creates an error pinned to a source location (1-based line/column;
    /// `0, 0` for errors without a location, e.g. emission errors).
    pub fn new(line: usize, col: usize, message: impl Into<String>) -> Self {
        QasmError { line, col, message: message.into() }
    }

    /// 1-based source line, or 0 when the error has no location.
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based source column, or 0 when the error has no location.
    pub fn col(&self) -> usize {
        self.col
    }

    /// Explanation of what went wrong.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "qasm error: {}", self.message)
        } else {
            write!(f, "qasm error at {}:{}: {}", self.line, self.col, self.message)
        }
    }
}

impl Error for QasmError {}

impl From<CircuitError> for QasmError {
    fn from(err: CircuitError) -> Self {
        QasmError::new(0, 0, err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = CircuitError::QubitOutOfRange { qubit: 9, num_qubits: 4 };
        assert_eq!(e.to_string(), "qubit q9 out of range for circuit with 4 qubits");
        let e = CircuitError::WrongArity { gate: "cx", expected: Arity::Fixed(2), actual: 3 };
        assert_eq!(e.to_string(), "gate `cx` takes exactly 2 operand(s), got 3");
    }

    #[test]
    fn qasm_error_carries_location() {
        let e = QasmError::new(3, 14, "unexpected token");
        assert_eq!(e.line(), 3);
        assert_eq!(e.col(), 14);
        assert!(e.to_string().contains("3:14"));
        let e = QasmError::new(0, 0, "no measure target");
        assert!(!e.to_string().contains("0:0"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<CircuitError>();
        assert_err::<QasmError>();
    }
}
