//! The circuit container: an ordered list of validated instructions.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::CircuitError;
use crate::gate::Gate;
use crate::qubit::Qubit;

/// One gate application: a [`Gate`] plus its qubit operands.
///
/// Instructions are validated on construction: operand count must match the
/// gate arity and operands must be pairwise distinct.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    gate: Gate,
    qubits: Vec<Qubit>,
}

impl Instruction {
    /// Creates a validated instruction.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::WrongArity`] if the operand count does not
    /// match the gate, and [`CircuitError::DuplicateOperand`] if a qubit
    /// repeats.
    pub fn new(gate: Gate, qubits: Vec<Qubit>) -> Result<Self, CircuitError> {
        let arity = gate.arity();
        if !arity.accepts(qubits.len()) {
            return Err(CircuitError::WrongArity {
                gate: gate.name(),
                expected: arity,
                actual: qubits.len(),
            });
        }
        for (i, q) in qubits.iter().enumerate() {
            if qubits[..i].contains(q) {
                return Err(CircuitError::DuplicateOperand { qubit: q.raw() });
            }
        }
        Ok(Instruction { gate, qubits })
    }

    /// The gate being applied.
    pub fn gate(&self) -> &Gate {
        &self.gate
    }

    /// The qubit operands, in gate order (controls first, target last).
    pub fn qubits(&self) -> &[Qubit] {
        &self.qubits
    }

    /// Whether this is a unitary acting on exactly two qubits.
    pub fn is_two_qubit(&self) -> bool {
        self.gate.is_unitary() && self.qubits.len() == 2
    }

    /// For a two-qubit instruction, the operand pair `(first, second)`.
    pub fn qubit_pair(&self) -> Option<(Qubit, Qubit)> {
        if self.qubits.len() == 2 {
            Some((self.qubits[0], self.qubits[1]))
        } else {
            None
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ops: Vec<String> = self.qubits.iter().map(|q| q.to_string()).collect();
        write!(f, "{} {}", self.gate, ops.join(","))
    }
}

/// A quantum circuit over `num_qubits` logical qubits.
///
/// The circuit is an ordered list of [`Instruction`]s. Classical bits are
/// not modeled: measurements record only the measured qubit, which is all
/// the architecture design flow needs (paper §3 ignores measurement when
/// profiling).
///
/// ```
/// use qpd_circuit::Circuit;
///
/// let mut c = Circuit::new(3);
/// c.h(0).cx(0, 1).cx(1, 2).measure_all();
/// assert_eq!(c.num_qubits(), 3);
/// assert_eq!(c.two_qubit_gate_count(), 2);
/// assert_eq!(c.depth(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit { num_qubits, instructions: Vec::new() }
    }

    /// Number of logical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of instructions (including barriers and measurements).
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the circuit contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instruction list.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Appends a validated instruction.
    ///
    /// # Errors
    ///
    /// Returns an error if an operand is out of range, repeated, or the
    /// operand count does not match the gate arity.
    pub fn push(&mut self, gate: Gate, qubits: &[Qubit]) -> Result<(), CircuitError> {
        for q in qubits {
            if q.index() >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q.raw(),
                    num_qubits: self.num_qubits,
                });
            }
        }
        let inst = Instruction::new(gate, qubits.to_vec())?;
        self.instructions.push(inst);
        Ok(())
    }

    /// Appends a pre-validated instruction, re-checking qubit ranges.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] if the instruction
    /// references qubits this circuit does not have.
    pub fn push_instruction(&mut self, inst: Instruction) -> Result<(), CircuitError> {
        for q in inst.qubits() {
            if q.index() >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q.raw(),
                    num_qubits: self.num_qubits,
                });
            }
        }
        self.instructions.push(inst);
        Ok(())
    }

    fn must_push(&mut self, gate: Gate, qubits: &[Qubit]) -> &mut Self {
        self.push(gate, qubits).expect("invalid builder call");
        self
    }

    /// Appends every instruction of `other`.
    ///
    /// # Errors
    ///
    /// Returns an error if `other` uses qubits outside this circuit.
    pub fn compose(&mut self, other: &Circuit) -> Result<(), CircuitError> {
        for inst in other.iter() {
            self.push_instruction(inst.clone())?;
        }
        Ok(())
    }

    /// Returns a circuit with the instruction order reversed.
    ///
    /// Used by SABRE-style reverse traversal; note this reverses order only
    /// and does not invert gates.
    pub fn reversed(&self) -> Circuit {
        Circuit {
            num_qubits: self.num_qubits,
            instructions: self.instructions.iter().rev().cloned().collect(),
        }
    }

    /// Returns the adjoint circuit: inverse gates in reverse order, so
    /// that `c` followed by `c.inverse()` is the identity.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::WrongArity`]-free; fails with
    /// [`CircuitError::NotInvertible`] if the circuit contains
    /// measurement or reset.
    pub fn inverse(&self) -> Result<Circuit, CircuitError> {
        let mut out = Circuit::new(self.num_qubits);
        for inst in self.instructions.iter().rev() {
            let gate = inst
                .gate()
                .inverse()
                .ok_or(CircuitError::NotInvertible { gate: inst.gate().name() })?;
            out.push(gate, inst.qubits())?;
        }
        Ok(out)
    }

    /// Relabels qubits: qubit `i` becomes `perm[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidPermutation`] unless `perm` is a
    /// permutation of `0..num_qubits`.
    pub fn remap(&self, perm: &[u32]) -> Result<Circuit, CircuitError> {
        if perm.len() != self.num_qubits {
            return Err(CircuitError::InvalidPermutation {
                reason: format!("length {} != {} qubits", perm.len(), self.num_qubits),
            });
        }
        let mut seen = vec![false; self.num_qubits];
        for &p in perm {
            let idx = p as usize;
            if idx >= self.num_qubits {
                return Err(CircuitError::InvalidPermutation {
                    reason: format!("image {idx} out of range"),
                });
            }
            if seen[idx] {
                return Err(CircuitError::InvalidPermutation {
                    reason: format!("image {idx} repeated"),
                });
            }
            seen[idx] = true;
        }
        let mut out = Circuit::new(self.num_qubits);
        for inst in self.iter() {
            let qubits: Vec<Qubit> =
                inst.qubits().iter().map(|q| Qubit::new(perm[q.index()])).collect();
            out.push(inst.gate().clone(), &qubits)?;
        }
        Ok(out)
    }

    // --- statistics -------------------------------------------------------

    /// Total number of gates, excluding barriers.
    ///
    /// This is the paper's performance metric input: "total post-mapping
    /// gate count" (§5.1) counts every operation executed on hardware.
    pub fn gate_count(&self) -> usize {
        self.instructions.iter().filter(|i| !matches!(i.gate(), Gate::Barrier)).count()
    }

    /// Number of two-qubit unitary gates.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.instructions.iter().filter(|i| i.is_two_qubit()).count()
    }

    /// Number of single-qubit unitary gates.
    pub fn single_qubit_gate_count(&self) -> usize {
        self.instructions.iter().filter(|i| i.gate().is_single_qubit()).count()
    }

    /// Gate histogram keyed by canonical gate name.
    pub fn counts_by_name(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for inst in &self.instructions {
            *counts.entry(inst.gate().name()).or_insert(0) += 1;
        }
        counts
    }

    /// Circuit depth: the length of the longest qubit-line dependency
    /// chain. Barriers synchronize their operands but do not add depth.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        for inst in &self.instructions {
            let max = inst.qubits().iter().map(|q| level[q.index()]).max().unwrap_or(0);
            let next = if matches!(inst.gate(), Gate::Barrier) { max } else { max + 1 };
            for q in inst.qubits() {
                level[q.index()] = next;
            }
        }
        level.into_iter().max().unwrap_or(0)
    }

    /// Iterates over the operand pairs of all two-qubit unitary gates, in
    /// circuit order. This is the stream the profiler consumes.
    pub fn two_qubit_pairs(&self) -> impl Iterator<Item = (Qubit, Qubit)> + '_ {
        self.instructions
            .iter()
            .filter_map(|i| if i.is_two_qubit() { i.qubit_pair() } else { None })
    }

    /// The highest qubit index actually used, plus one (0 for an empty
    /// circuit).
    pub fn used_qubits(&self) -> usize {
        self.instructions.iter().flat_map(|i| i.qubits()).map(|q| q.index() + 1).max().unwrap_or(0)
    }

    // --- builder conveniences --------------------------------------------
    //
    // These panic on invalid input, which keeps construction of known-good
    // circuits (tests, generators) readable. Use `push` for fallible
    // construction from untrusted data.

    /// Applies a Hadamard gate.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range (as do all builder conveniences below).
    pub fn h(&mut self, q: impl Into<Qubit>) -> &mut Self {
        self.must_push(Gate::H, &[q.into()])
    }

    /// Applies a Pauli-X gate.
    pub fn x(&mut self, q: impl Into<Qubit>) -> &mut Self {
        self.must_push(Gate::X, &[q.into()])
    }

    /// Applies a Pauli-Y gate.
    pub fn y(&mut self, q: impl Into<Qubit>) -> &mut Self {
        self.must_push(Gate::Y, &[q.into()])
    }

    /// Applies a Pauli-Z gate.
    pub fn z(&mut self, q: impl Into<Qubit>) -> &mut Self {
        self.must_push(Gate::Z, &[q.into()])
    }

    /// Applies an S gate.
    pub fn s(&mut self, q: impl Into<Qubit>) -> &mut Self {
        self.must_push(Gate::S, &[q.into()])
    }

    /// Applies an S-dagger gate.
    pub fn sdg(&mut self, q: impl Into<Qubit>) -> &mut Self {
        self.must_push(Gate::Sdg, &[q.into()])
    }

    /// Applies a T gate.
    pub fn t(&mut self, q: impl Into<Qubit>) -> &mut Self {
        self.must_push(Gate::T, &[q.into()])
    }

    /// Applies a T-dagger gate.
    pub fn tdg(&mut self, q: impl Into<Qubit>) -> &mut Self {
        self.must_push(Gate::Tdg, &[q.into()])
    }

    /// Applies an X-rotation.
    pub fn rx(&mut self, theta: f64, q: impl Into<Qubit>) -> &mut Self {
        self.must_push(Gate::Rx(theta), &[q.into()])
    }

    /// Applies a Y-rotation.
    pub fn ry(&mut self, theta: f64, q: impl Into<Qubit>) -> &mut Self {
        self.must_push(Gate::Ry(theta), &[q.into()])
    }

    /// Applies a Z-rotation.
    pub fn rz(&mut self, theta: f64, q: impl Into<Qubit>) -> &mut Self {
        self.must_push(Gate::Rz(theta), &[q.into()])
    }

    /// Applies a phase gate `u1(lambda)`.
    pub fn p(&mut self, lambda: f64, q: impl Into<Qubit>) -> &mut Self {
        self.must_push(Gate::P(lambda), &[q.into()])
    }

    /// Applies a generic single-qubit unitary `u3`.
    pub fn u(&mut self, theta: f64, phi: f64, lambda: f64, q: impl Into<Qubit>) -> &mut Self {
        self.must_push(Gate::U(theta, phi, lambda), &[q.into()])
    }

    /// Applies a CNOT with `control` and `target`.
    pub fn cx(&mut self, control: impl Into<Qubit>, target: impl Into<Qubit>) -> &mut Self {
        self.must_push(Gate::Cx, &[control.into(), target.into()])
    }

    /// Applies a controlled-Z.
    pub fn cz(&mut self, a: impl Into<Qubit>, b: impl Into<Qubit>) -> &mut Self {
        self.must_push(Gate::Cz, &[a.into(), b.into()])
    }

    /// Applies a controlled phase rotation `cu1(lambda)`.
    pub fn cp(
        &mut self,
        lambda: f64,
        control: impl Into<Qubit>,
        target: impl Into<Qubit>,
    ) -> &mut Self {
        self.must_push(Gate::Cp(lambda), &[control.into(), target.into()])
    }

    /// Applies a controlled Z-rotation.
    pub fn crz(
        &mut self,
        theta: f64,
        control: impl Into<Qubit>,
        target: impl Into<Qubit>,
    ) -> &mut Self {
        self.must_push(Gate::Crz(theta), &[control.into(), target.into()])
    }

    /// Applies an Ising ZZ rotation.
    pub fn rzz(&mut self, theta: f64, a: impl Into<Qubit>, b: impl Into<Qubit>) -> &mut Self {
        self.must_push(Gate::Rzz(theta), &[a.into(), b.into()])
    }

    /// Applies a SWAP.
    pub fn swap(&mut self, a: impl Into<Qubit>, b: impl Into<Qubit>) -> &mut Self {
        self.must_push(Gate::Swap, &[a.into(), b.into()])
    }

    /// Applies a Toffoli with controls `c0`, `c1` and target `t`.
    pub fn ccx(
        &mut self,
        c0: impl Into<Qubit>,
        c1: impl Into<Qubit>,
        t: impl Into<Qubit>,
    ) -> &mut Self {
        self.must_push(Gate::Ccx, &[c0.into(), c1.into(), t.into()])
    }

    /// Applies a multi-controlled NOT (controls then target).
    pub fn mcx(&mut self, controls: &[u32], target: u32) -> &mut Self {
        let mut qubits: Vec<Qubit> = controls.iter().map(|&c| Qubit::new(c)).collect();
        qubits.push(Qubit::new(target));
        self.must_push(Gate::Mcx, &qubits)
    }

    /// Measures one qubit.
    pub fn measure(&mut self, q: impl Into<Qubit>) -> &mut Self {
        self.must_push(Gate::Measure, &[q.into()])
    }

    /// Measures every qubit.
    pub fn measure_all(&mut self) -> &mut Self {
        for q in 0..self.num_qubits {
            self.must_push(Gate::Measure, &[Qubit::from(q)]);
        }
        self
    }

    /// Inserts a barrier over every qubit.
    pub fn barrier_all(&mut self) -> &mut Self {
        let qubits: Vec<Qubit> = (0..self.num_qubits).map(Qubit::from).collect();
        self.must_push(Gate::Barrier, &qubits)
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

impl Extend<Instruction> for Circuit {
    /// Extends the circuit with instructions.
    ///
    /// # Panics
    ///
    /// Panics if an instruction references a qubit out of range; use
    /// [`Circuit::push_instruction`] for fallible insertion.
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        for inst in iter {
            self.push_instruction(inst).expect("instruction out of range in extend");
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit on {} qubits, {} instructions:", self.num_qubits, self.len())?;
        for inst in &self.instructions {
            writeln!(f, "  {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_range() {
        let mut c = Circuit::new(2);
        let err = c.push(Gate::H, &[Qubit::new(2)]).unwrap_err();
        assert_eq!(err, CircuitError::QubitOutOfRange { qubit: 2, num_qubits: 2 });
    }

    #[test]
    fn push_validates_duplicates() {
        let mut c = Circuit::new(2);
        let err = c.push(Gate::Cx, &[Qubit::new(1), Qubit::new(1)]).unwrap_err();
        assert_eq!(err, CircuitError::DuplicateOperand { qubit: 1 });
    }

    #[test]
    fn push_validates_arity() {
        let mut c = Circuit::new(3);
        let err = c.push(Gate::Cx, &[Qubit::new(0)]).unwrap_err();
        assert!(matches!(err, CircuitError::WrongArity { gate: "cx", .. }));
    }

    #[test]
    fn builder_chain_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).rz(0.3, 2).barrier_all().measure_all();
        assert_eq!(c.len(), 8);
        assert_eq!(c.gate_count(), 7); // barrier excluded
        assert_eq!(c.two_qubit_gate_count(), 2);
        assert_eq!(c.single_qubit_gate_count(), 2);
        assert_eq!(c.counts_by_name()["cx"], 2);
        assert_eq!(c.counts_by_name()["measure"], 3);
    }

    #[test]
    fn depth_tracks_longest_line() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).cx(0, 1).cx(1, 2);
        assert_eq!(c.depth(), 3);
        // Barriers do not add depth but do synchronize.
        let mut c = Circuit::new(2);
        c.h(0).barrier_all().h(1);
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn two_qubit_pairs_in_order() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).h(2).cz(2, 0);
        let pairs: Vec<_> = c.two_qubit_pairs().collect();
        assert_eq!(pairs, vec![(Qubit::new(0), Qubit::new(1)), (Qubit::new(2), Qubit::new(0))]);
    }

    #[test]
    fn remap_relabels() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2);
        let remapped = c.remap(&[2, 0, 1]).unwrap();
        let pairs: Vec<_> = remapped.two_qubit_pairs().collect();
        assert_eq!(pairs, vec![(Qubit::new(2), Qubit::new(0)), (Qubit::new(0), Qubit::new(1))]);
    }

    #[test]
    fn remap_rejects_non_bijections() {
        let c = Circuit::new(2);
        assert!(c.remap(&[0]).is_err());
        assert!(c.remap(&[0, 0]).is_err());
        assert!(c.remap(&[0, 5]).is_err());
    }

    #[test]
    fn reversed_reverses_order() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let r = c.reversed();
        assert_eq!(r.instructions()[0].gate().name(), "cx");
        assert_eq!(r.instructions()[1].gate().name(), "h");
    }

    #[test]
    fn inverse_undoes_unitary_circuits() {
        use crate::sim::StateVector;
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).u(0.3, -0.7, 1.1, 2).cp(0.9, 1, 2).t(0).swap(0, 2);
        let mut round_trip = c.clone();
        round_trip.compose(&c.inverse().unwrap()).unwrap();
        let sv = StateVector::from_circuit(&round_trip).unwrap();
        let id = StateVector::new(3).unwrap();
        assert!(sv.approx_eq_global_phase(&id, 1e-9));
    }

    #[test]
    fn inverse_rejects_measurement() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0);
        assert_eq!(c.inverse().unwrap_err(), CircuitError::NotInvertible { gate: "measure" });
    }

    #[test]
    fn compose_appends() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.compose(&b).unwrap();
        assert_eq!(a.len(), 2);
        let big = {
            let mut c = Circuit::new(3);
            c.cx(0, 2);
            c
        };
        let mut small = Circuit::new(2);
        assert!(small.compose(&big).is_err());
    }

    #[test]
    fn used_qubits_ignores_unused_tail() {
        let mut c = Circuit::new(10);
        c.cx(0, 3);
        assert_eq!(c.used_qubits(), 4);
        assert_eq!(Circuit::new(5).used_qubits(), 0);
    }
}
