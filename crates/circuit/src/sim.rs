//! Reference simulators used to verify circuit transformations.
//!
//! Two simulators are provided:
//!
//! - [`StateVector`]: a dense state-vector simulator for small circuits
//!   (used by tests to check that decompositions are functionally correct
//!   up to global phase);
//! - [`apply_reversible`]: a classical bit-level simulator for circuits in
//!   the reversible basis `{X, CX, CCX, MCX, SWAP}`, fast enough to verify
//!   the arithmetic benchmark generators on all (or sampled) basis states.
//!
//! Neither simulator is used by the design flow itself; they exist so the
//! rest of the workspace can be tested against ground truth.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::circuit::Circuit;
use crate::gate::Gate;

/// A complex number with `f64` components.
///
/// Hand-rolled to avoid an external dependency; only the operations the
/// simulator needs are implemented.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The complex number `re + i*im`.
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Zero.
    pub const ZERO: C64 = C64::new(0.0, 0.0);
    /// One.
    pub const ONE: C64 = C64::new(1.0, 0.0);
    /// The imaginary unit.
    pub const I: C64 = C64::new(0.0, 1.0);

    /// `e^{i*theta}`.
    pub fn cis(theta: f64) -> Self {
        C64::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        C64::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    fn mul(self, rhs: f64) -> C64 {
        C64::new(self.re * rhs, self.im * rhs)
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.4}{:+.4}i", self.re, self.im)
    }
}

/// Error from a simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The circuit is too wide for the simulator.
    TooManyQubits {
        /// Requested width.
        requested: usize,
        /// Maximum supported width.
        max: usize,
    },
    /// A gate is not supported by this simulator.
    UnsupportedGate {
        /// Name of the offending gate.
        gate: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TooManyQubits { requested, max } => {
                write!(f, "circuit has {requested} qubits, simulator supports at most {max}")
            }
            SimError::UnsupportedGate { gate } => {
                write!(f, "gate `{gate}` not supported by this simulator")
            }
        }
    }
}

impl std::error::Error for SimError {}

const MAX_SV_QUBITS: usize = 22;

/// Dense state-vector simulator.
///
/// Qubit `i` is the `i`-th least significant bit of the basis-state index.
///
/// ```
/// use qpd_circuit::Circuit;
/// use qpd_circuit::sim::StateVector;
///
/// # fn main() -> Result<(), qpd_circuit::sim::SimError> {
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let sv = StateVector::from_circuit(&bell)?;
/// assert!((sv.probability(0b00) - 0.5).abs() < 1e-12);
/// assert!((sv.probability(0b11) - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// The all-zeros state on `num_qubits` qubits.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] above 22 qubits (64 MiB of
    /// amplitudes).
    pub fn new(num_qubits: usize) -> Result<Self, SimError> {
        if num_qubits > MAX_SV_QUBITS {
            return Err(SimError::TooManyQubits { requested: num_qubits, max: MAX_SV_QUBITS });
        }
        let mut amps = vec![C64::ZERO; 1 << num_qubits];
        amps[0] = C64::ONE;
        Ok(StateVector { num_qubits, amps })
    }

    /// Runs `circuit` on the all-zeros state.
    ///
    /// # Errors
    ///
    /// Returns an error for unsupported widths or non-unitary gates
    /// (measure/reset). Barriers are ignored.
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, SimError> {
        let mut sv = StateVector::new(circuit.num_qubits())?;
        sv.run(circuit)?;
        Ok(sv)
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The amplitude of basis state `index`.
    pub fn amplitude(&self, index: usize) -> C64 {
        self.amps[index]
    }

    /// The probability of measuring basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Applies every gate of `circuit` in order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedGate`] for measure/reset.
    pub fn run(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        for inst in circuit.iter() {
            let qs: Vec<usize> = inst.qubits().iter().map(|q| q.index()).collect();
            self.apply(inst.gate(), &qs)?;
        }
        Ok(())
    }

    /// Applies one gate to the state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedGate`] for measure/reset.
    pub fn apply(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), SimError> {
        match gate {
            Gate::Barrier | Gate::I => Ok(()),
            Gate::Measure | Gate::Reset => Err(SimError::UnsupportedGate { gate: gate.name() }),
            g if g.is_single_qubit() => {
                let m = single_qubit_matrix(g);
                self.apply_1q(&m, qubits[0]);
                Ok(())
            }
            Gate::Cx => {
                self.apply_controlled_x(&qubits[..1], qubits[1]);
                Ok(())
            }
            Gate::Ccx => {
                self.apply_controlled_x(&qubits[..2], qubits[2]);
                Ok(())
            }
            Gate::Mcx => {
                let (target, controls) = qubits.split_last().expect("mcx has operands");
                self.apply_controlled_x(controls, *target);
                Ok(())
            }
            Gate::Swap => {
                self.apply_swap(qubits[0], qubits[1]);
                Ok(())
            }
            Gate::Cswap => {
                self.apply_cswap(qubits[0], qubits[1], qubits[2]);
                Ok(())
            }
            Gate::Cy => {
                self.apply_controlled_1q(&single_qubit_matrix(&Gate::Y), qubits[0], qubits[1]);
                Ok(())
            }
            Gate::Cz => {
                self.apply_controlled_1q(&single_qubit_matrix(&Gate::Z), qubits[0], qubits[1]);
                Ok(())
            }
            Gate::Ch => {
                self.apply_controlled_1q(&single_qubit_matrix(&Gate::H), qubits[0], qubits[1]);
                Ok(())
            }
            Gate::Cp(l) => {
                self.apply_controlled_1q(&single_qubit_matrix(&Gate::P(*l)), qubits[0], qubits[1]);
                Ok(())
            }
            Gate::Crz(t) => {
                let m = rz_matrix(*t);
                self.apply_controlled_1q(&m, qubits[0], qubits[1]);
                Ok(())
            }
            Gate::Cu3(t, p, l) => {
                self.apply_controlled_1q(
                    &single_qubit_matrix(&Gate::U(*t, *p, *l)),
                    qubits[0],
                    qubits[1],
                );
                Ok(())
            }
            Gate::Rzz(t) => {
                self.apply_rzz(*t, qubits[0], qubits[1]);
                Ok(())
            }
            _ => Err(SimError::UnsupportedGate { gate: gate.name() }),
        }
    }

    fn apply_1q(&mut self, m: &[[C64; 2]; 2], q: usize) {
        let bit = 1usize << q;
        for base in 0..self.amps.len() {
            if base & bit == 0 {
                let a = self.amps[base];
                let b = self.amps[base | bit];
                self.amps[base] = m[0][0] * a + m[0][1] * b;
                self.amps[base | bit] = m[1][0] * a + m[1][1] * b;
            }
        }
    }

    fn apply_controlled_1q(&mut self, m: &[[C64; 2]; 2], control: usize, target: usize) {
        let cbit = 1usize << control;
        let tbit = 1usize << target;
        for base in 0..self.amps.len() {
            if base & cbit != 0 && base & tbit == 0 {
                let a = self.amps[base];
                let b = self.amps[base | tbit];
                self.amps[base] = m[0][0] * a + m[0][1] * b;
                self.amps[base | tbit] = m[1][0] * a + m[1][1] * b;
            }
        }
    }

    fn apply_controlled_x(&mut self, controls: &[usize], target: usize) {
        let cmask: usize = controls.iter().map(|&c| 1usize << c).sum();
        let tbit = 1usize << target;
        for base in 0..self.amps.len() {
            if base & cmask == cmask && base & tbit == 0 {
                self.amps.swap(base, base | tbit);
            }
        }
    }

    fn apply_swap(&mut self, a: usize, b: usize) {
        let abit = 1usize << a;
        let bbit = 1usize << b;
        for base in 0..self.amps.len() {
            if base & abit != 0 && base & bbit == 0 {
                self.amps.swap(base, (base & !abit) | bbit);
            }
        }
    }

    fn apply_cswap(&mut self, c: usize, a: usize, b: usize) {
        let cbit = 1usize << c;
        let abit = 1usize << a;
        let bbit = 1usize << b;
        for base in 0..self.amps.len() {
            if base & cbit != 0 && base & abit != 0 && base & bbit == 0 {
                self.amps.swap(base, (base & !abit) | bbit);
            }
        }
    }

    fn apply_rzz(&mut self, theta: f64, a: usize, b: usize) {
        let abit = 1usize << a;
        let bbit = 1usize << b;
        let plus = C64::cis(theta / 2.0);
        let minus = C64::cis(-theta / 2.0);
        for base in 0..self.amps.len() {
            let parity = ((base & abit != 0) as u8) ^ ((base & bbit != 0) as u8);
            let phase = if parity == 1 { plus } else { minus };
            self.amps[base] = self.amps[base] * phase;
        }
    }

    /// Fidelity-style comparison: whether `self` and `other` describe the
    /// same state up to a global phase, within `tol` per amplitude.
    pub fn approx_eq_global_phase(&self, other: &StateVector, tol: f64) -> bool {
        if self.num_qubits != other.num_qubits {
            return false;
        }
        // Align on the largest amplitude of self.
        let (k, _) = self
            .amps
            .iter()
            .enumerate()
            .max_by(|(_, x), (_, y)| x.norm_sqr().total_cmp(&y.norm_sqr()))
            .expect("non-empty state");
        if self.amps[k].abs() < tol {
            return false;
        }
        if other.amps[k].abs() < tol * tol {
            return false;
        }
        // phase = self[k] / other[k]
        let denom = other.amps[k].norm_sqr();
        let phase = self.amps[k] * other.amps[k].conj() * (1.0 / denom);
        self.amps.iter().zip(other.amps.iter()).all(|(a, b)| (*a - *b * phase).abs() <= tol)
    }
}

/// The 2x2 matrix of a single-qubit unitary gate.
///
/// `Rz` is realized as a phase gate times a global phase (irrelevant for
/// uncontrolled application); controlled variants use [`rz_matrix`].
///
/// # Panics
///
/// Panics if `gate` is not a single-qubit unitary.
pub fn single_qubit_matrix(gate: &Gate) -> [[C64; 2]; 2] {
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};
    match *gate {
        Gate::I => u3_matrix(0.0, 0.0, 0.0),
        Gate::H => u3_matrix(FRAC_PI_2, 0.0, PI),
        Gate::X => u3_matrix(PI, 0.0, PI),
        Gate::Y => u3_matrix(PI, FRAC_PI_2, FRAC_PI_2),
        Gate::Z => phase_matrix(PI),
        Gate::S => phase_matrix(FRAC_PI_2),
        Gate::Sdg => phase_matrix(-FRAC_PI_2),
        Gate::T => phase_matrix(FRAC_PI_4),
        Gate::Tdg => phase_matrix(-FRAC_PI_4),
        Gate::Sx => {
            let h = C64::new(0.5, 0.5);
            let hc = C64::new(0.5, -0.5);
            [[h, hc], [hc, h]]
        }
        Gate::Sxdg => {
            let h = C64::new(0.5, -0.5);
            let hc = C64::new(0.5, 0.5);
            [[h, hc], [hc, h]]
        }
        Gate::Rx(t) => u3_matrix(t, -FRAC_PI_2, FRAC_PI_2),
        Gate::Ry(t) => u3_matrix(t, 0.0, 0.0),
        Gate::Rz(t) => rz_matrix(t),
        Gate::P(l) => phase_matrix(l),
        Gate::U(t, p, l) => u3_matrix(t, p, l),
        ref g => panic!("not a single-qubit unitary: {}", g.name()),
    }
}

fn u3_matrix(theta: f64, phi: f64, lambda: f64) -> [[C64; 2]; 2] {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    [[C64::new(c, 0.0), -C64::cis(lambda) * s], [C64::cis(phi) * s, C64::cis(phi + lambda) * c]]
}

fn phase_matrix(lambda: f64) -> [[C64; 2]; 2] {
    [[C64::ONE, C64::ZERO], [C64::ZERO, C64::cis(lambda)]]
}

/// The exact `Rz` matrix `diag(e^{-i t/2}, e^{i t/2})` (needed when `Rz`
/// appears under a control, where global phase becomes relative phase).
pub fn rz_matrix(theta: f64) -> [[C64; 2]; 2] {
    [[C64::cis(-theta / 2.0), C64::ZERO], [C64::ZERO, C64::cis(theta / 2.0)]]
}

/// Runs a reversible circuit (`X`/`CX`/`CCX`/`MCX`/`SWAP`, plus ignored
/// barriers) on a classical basis state. Bit `i` of the state corresponds
/// to qubit `i`.
///
/// # Errors
///
/// Returns [`SimError::TooManyQubits`] above 128 qubits and
/// [`SimError::UnsupportedGate`] if the circuit leaves the reversible basis.
///
/// ```
/// use qpd_circuit::Circuit;
/// use qpd_circuit::sim::apply_reversible;
///
/// let mut c = Circuit::new(3);
/// c.x(0).cx(0, 1).ccx(0, 1, 2);
/// assert_eq!(apply_reversible(&c, 0b000).unwrap(), 0b111);
/// ```
pub fn apply_reversible(circuit: &Circuit, input: u128) -> Result<u128, SimError> {
    if circuit.num_qubits() > 128 {
        return Err(SimError::TooManyQubits { requested: circuit.num_qubits(), max: 128 });
    }
    let mut state = input;
    for inst in circuit.iter() {
        let qs = inst.qubits();
        match inst.gate() {
            Gate::Barrier => {}
            Gate::X => state ^= 1u128 << qs[0].index(),
            Gate::Cx => {
                if state >> qs[0].index() & 1 == 1 {
                    state ^= 1u128 << qs[1].index();
                }
            }
            Gate::Ccx => {
                if state >> qs[0].index() & 1 == 1 && state >> qs[1].index() & 1 == 1 {
                    state ^= 1u128 << qs[2].index();
                }
            }
            Gate::Mcx => {
                let (target, controls) = qs.split_last().expect("mcx has operands");
                if controls.iter().all(|c| state >> c.index() & 1 == 1) {
                    state ^= 1u128 << target.index();
                }
            }
            Gate::Swap => {
                let a = state >> qs[0].index() & 1;
                let b = state >> qs[1].index() & 1;
                if a != b {
                    state ^= (1u128 << qs[0].index()) | (1u128 << qs[1].index());
                }
            }
            Gate::Cswap => {
                if state >> qs[0].index() & 1 == 1 {
                    let a = state >> qs[1].index() & 1;
                    let b = state >> qs[2].index() & 1;
                    if a != b {
                        state ^= (1u128 << qs[1].index()) | (1u128 << qs[2].index());
                    }
                }
            }
            g => return Err(SimError::UnsupportedGate { gate: g.name() }),
        }
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn complex_arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
        assert!((C64::cis(PI).re + 1.0).abs() < 1e-12);
        assert_eq!(a.conj(), C64::new(1.0, -2.0));
    }

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = StateVector::from_circuit(&c).unwrap();
        assert!((sv.probability(0) - 0.5).abs() < 1e-12);
        assert!((sv.probability(3) - 0.5).abs() < 1e-12);
        assert!(sv.probability(1) < 1e-12);
    }

    #[test]
    fn x_gate_flips() {
        let mut c = Circuit::new(1);
        c.x(0);
        let sv = StateVector::from_circuit(&c).unwrap();
        assert!((sv.probability(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hh_is_identity_up_to_phase() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        let sv = StateVector::from_circuit(&c).unwrap();
        let id = StateVector::new(1).unwrap();
        assert!(sv.approx_eq_global_phase(&id, 1e-10));
    }

    #[test]
    fn cz_equals_h_cx_h() {
        let mut a = Circuit::new(2);
        a.h(0).h(1).cz(0, 1);
        let mut b = Circuit::new(2);
        b.h(0).h(1).h(1).cx(0, 1).h(1);
        let sa = StateVector::from_circuit(&a).unwrap();
        let sb = StateVector::from_circuit(&b).unwrap();
        assert!(sa.approx_eq_global_phase(&sb, 1e-10));
    }

    #[test]
    fn swap_exchanges() {
        let mut c = Circuit::new(2);
        c.x(0).swap(0, 1);
        let sv = StateVector::from_circuit(&c).unwrap();
        assert!((sv.probability(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ccx_truth_table_quantum() {
        for input in 0..8usize {
            let mut c = Circuit::new(3);
            for q in 0..3 {
                if input >> q & 1 == 1 {
                    c.x(q as u32);
                }
            }
            c.ccx(0, 1, 2);
            let sv = StateVector::from_circuit(&c).unwrap();
            let expected = if input & 3 == 3 { input ^ 4 } else { input };
            assert!((sv.probability(expected) - 1.0).abs() < 1e-12, "input {input}");
        }
    }

    #[test]
    fn rzz_is_cx_rz_cx() {
        let theta = 0.37;
        let mut a = Circuit::new(2);
        a.h(0).h(1).rzz(theta, 0, 1);
        let mut b = Circuit::new(2);
        b.h(0).h(1).cx(0, 1).rz(theta, 1).cx(0, 1);
        let sa = StateVector::from_circuit(&a).unwrap();
        let sb = StateVector::from_circuit(&b).unwrap();
        assert!(sa.approx_eq_global_phase(&sb, 1e-10));
    }

    #[test]
    fn crz_differs_from_cp() {
        // crz(t) = cp(t) up to a phase on the control; verify via
        // circuit identity crz(t) = u1(t/2) on target conjugated by cx.
        let theta = 1.234;
        let mut a = Circuit::new(2);
        a.h(0).h(1).crz(theta, 0, 1);
        let mut b = Circuit::new(2);
        b.h(0).h(1).rz(theta / 2.0, 1).cx(0, 1).rz(-theta / 2.0, 1).cx(0, 1);
        let sa = StateVector::from_circuit(&a).unwrap();
        let sb = StateVector::from_circuit(&b).unwrap();
        assert!(sa.approx_eq_global_phase(&sb, 1e-10));
    }

    #[test]
    fn measure_is_rejected() {
        let mut c = Circuit::new(1);
        c.measure(0);
        assert_eq!(
            StateVector::from_circuit(&c).unwrap_err(),
            SimError::UnsupportedGate { gate: "measure" }
        );
    }

    #[test]
    fn width_cap() {
        assert!(StateVector::new(23).is_err());
    }

    #[test]
    fn reversible_mcx() {
        let mut c = Circuit::new(5);
        c.mcx(&[0, 1, 2, 3], 4);
        assert_eq!(apply_reversible(&c, 0b01111).unwrap(), 0b11111);
        assert_eq!(apply_reversible(&c, 0b00111).unwrap(), 0b00111);
    }

    #[test]
    fn reversible_swap_and_cswap() {
        let mut c = Circuit::new(3);
        c.swap(0, 2);
        assert_eq!(apply_reversible(&c, 0b001).unwrap(), 0b100);
        let mut c = Circuit::new(3);
        use crate::Qubit;
        c.push(Gate::Cswap, &[Qubit::new(0), Qubit::new(1), Qubit::new(2)]).unwrap();
        assert_eq!(apply_reversible(&c, 0b011).unwrap(), 0b101);
        assert_eq!(apply_reversible(&c, 0b010).unwrap(), 0b010);
    }

    #[test]
    fn reversible_rejects_h() {
        let mut c = Circuit::new(1);
        c.h(0);
        assert!(apply_reversible(&c, 0).is_err());
    }
}
