//! Gate decomposition passes.
//!
//! The modeled hardware natively supports single-qubit gates and CNOT
//! (paper §2.1: "any multi-qubit gate can be decomposed into a series of
//! single-qubit gates and CNOT gates ... the basic gate set directly
//! supported on IBM's devices"). This module lowers the full [`Gate`]
//! set to that basis:
//!
//! - [`lower_mcx`] rewrites multi-controlled NOTs into `{CCX, CX, X}`
//!   using a dirty-ancilla V-chain (Barenco et al. Lemma 7.2 shape) when
//!   `k - 2` spare qubits exist, falling back to the one-dirty-ancilla
//!   split of Lemma 7.3 otherwise;
//! - [`decompose_to_native`] lowers every remaining non-native gate
//!   (CZ, CY, CH, SWAP, CP, CRZ, CU3, RZZ, CCX, CSWAP) to `{CX, 1q}`.
//!
//! All decompositions are verified in tests against the reference
//! simulators in [`crate::sim`].

use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

use crate::circuit::{Circuit, Instruction};
use crate::error::CircuitError;
use crate::gate::Gate;
use crate::qubit::Qubit;

/// Lowers [`Gate::Mcx`] instructions to `{CCX, CX, X}`; all other
/// instructions are copied through unchanged.
///
/// # Errors
///
/// Returns [`CircuitError::NotEnoughAncillas`] if an MCX with three or
/// more controls spans every qubit of the circuit (the decomposition
/// needs at least one spare qubit to borrow as a dirty ancilla).
pub fn lower_mcx(circuit: &Circuit) -> Result<Circuit, CircuitError> {
    let mut out = Circuit::new(circuit.num_qubits());
    for inst in circuit.iter() {
        match inst.gate() {
            Gate::Mcx => {
                let (target, controls) = inst.qubits().split_last().expect("mcx operands");
                emit_mcx(&mut out, controls, *target)?;
            }
            _ => out.push_instruction(inst.clone())?,
        }
    }
    Ok(out)
}

/// Emits an MCX on `controls`/`target` into `out`, borrowing dirty
/// ancillas from the unused qubits of `out`.
fn emit_mcx(out: &mut Circuit, controls: &[Qubit], target: Qubit) -> Result<(), CircuitError> {
    match controls.len() {
        0 => unreachable!("mcx arity >= 2 enforced by Instruction::new"),
        1 => {
            out.push(Gate::Cx, &[controls[0], target])?;
            Ok(())
        }
        2 => {
            out.push(Gate::Ccx, &[controls[0], controls[1], target])?;
            Ok(())
        }
        k => {
            let free = free_qubits(out.num_qubits(), controls, target);
            if free.len() >= k - 2 {
                emit_vchain(out, controls, &free[..k - 2], target)
            } else if !free.is_empty() {
                emit_split(out, controls, free[0], target)
            } else {
                Err(CircuitError::NotEnoughAncillas { gate: "mcx", needed: 1, available: 0 })
            }
        }
    }
}

/// Qubits of the circuit not among the given operands (usable as dirty
/// ancillas).
fn free_qubits(num_qubits: usize, controls: &[Qubit], target: Qubit) -> Vec<Qubit> {
    let mut used = vec![false; num_qubits];
    for c in controls {
        used[c.index()] = true;
    }
    used[target.index()] = true;
    (0..num_qubits).map(Qubit::from).filter(|q| !used[q.index()]).collect()
}

/// Dirty-ancilla V-chain: `k >= 3` controls, `k - 2` ancillas of arbitrary
/// initial value (restored afterwards). Emits `4k - 8` Toffolis.
fn emit_vchain(
    out: &mut Circuit,
    controls: &[Qubit],
    ancillas: &[Qubit],
    target: Qubit,
) -> Result<(), CircuitError> {
    let k = controls.len();
    debug_assert!(k >= 3 && ancillas.len() == k - 2);
    let half = |out: &mut Circuit| -> Result<(), CircuitError> {
        out.push(Gate::Ccx, &[controls[k - 1], ancillas[k - 3], target])?;
        for i in (2..k - 1).rev() {
            out.push(Gate::Ccx, &[controls[i], ancillas[i - 2], ancillas[i - 1]])?;
        }
        out.push(Gate::Ccx, &[controls[0], controls[1], ancillas[0]])?;
        for i in 2..k - 1 {
            out.push(Gate::Ccx, &[controls[i], ancillas[i - 2], ancillas[i - 1]])?;
        }
        Ok(())
    };
    half(out)?;
    half(out)
}

/// One-dirty-ancilla split (Barenco Lemma 7.3 shape):
/// `MCX(C, t) = MCX(C1, a) MCX(C2 + a, t) MCX(C1, a) MCX(C2 + a, t)`
/// with `C = C1 + C2`, correct for an ancilla of arbitrary initial value.
fn emit_split(
    out: &mut Circuit,
    controls: &[Qubit],
    ancilla: Qubit,
    target: Qubit,
) -> Result<(), CircuitError> {
    let k = controls.len();
    let m1 = k.div_ceil(2);
    let (c1, c2) = controls.split_at(m1);
    let mut c2a: Vec<Qubit> = c2.to_vec();
    c2a.push(ancilla);
    for _ in 0..2 {
        emit_mcx(out, c1, ancilla)?;
        emit_mcx(out, &c2a, target)?;
    }
    Ok(())
}

/// Lowers a circuit all the way to the native basis `{CX, single-qubit,
/// measure, reset, barrier}`.
///
/// # Errors
///
/// Propagates [`CircuitError::NotEnoughAncillas`] from [`lower_mcx`].
pub fn decompose_to_native(circuit: &Circuit) -> Result<Circuit, CircuitError> {
    let lowered = lower_mcx(circuit)?;
    let mut out = Circuit::new(lowered.num_qubits());
    for inst in lowered.iter() {
        emit_native(&mut out, inst)?;
    }
    Ok(out)
}

fn emit_native(out: &mut Circuit, inst: &Instruction) -> Result<(), CircuitError> {
    let qs = inst.qubits();
    match *inst.gate() {
        ref g if g.is_native() => out.push_instruction(inst.clone()),
        Gate::Cz => {
            let (c, t) = (qs[0], qs[1]);
            out.h(t).cx(c, t).h(t);
            Ok(())
        }
        Gate::Cy => {
            let (c, t) = (qs[0], qs[1]);
            out.sdg(t).cx(c, t).s(t);
            Ok(())
        }
        Gate::Ch => {
            // qelib1 ch decomposition.
            let (a, b) = (qs[0], qs[1]);
            out.h(b).sdg(b).cx(a, b).h(b).t(b).cx(a, b).t(b).h(b).s(b).x(b).s(a);
            Ok(())
        }
        Gate::Swap => {
            let (a, b) = (qs[0], qs[1]);
            out.cx(a, b).cx(b, a).cx(a, b);
            Ok(())
        }
        Gate::Cp(lambda) => {
            let (c, t) = (qs[0], qs[1]);
            out.p(lambda / 2.0, c).cx(c, t).p(-lambda / 2.0, t).cx(c, t).p(lambda / 2.0, t);
            Ok(())
        }
        Gate::Crz(theta) => {
            let (c, t) = (qs[0], qs[1]);
            out.rz(theta / 2.0, t).cx(c, t).rz(-theta / 2.0, t).cx(c, t);
            Ok(())
        }
        Gate::Cu3(theta, phi, lambda) => {
            // qelib1 cu3 decomposition.
            let (c, t) = (qs[0], qs[1]);
            out.p((lambda + phi) / 2.0, c)
                .p((lambda - phi) / 2.0, t)
                .cx(c, t)
                .u(-theta / 2.0, 0.0, -(phi + lambda) / 2.0, t)
                .cx(c, t)
                .u(theta / 2.0, phi, 0.0, t);
            Ok(())
        }
        Gate::Rzz(theta) => {
            let (a, b) = (qs[0], qs[1]);
            out.cx(a, b).rz(theta, b).cx(a, b);
            Ok(())
        }
        Gate::Ccx => {
            emit_ccx(out, qs[0], qs[1], qs[2]);
            Ok(())
        }
        Gate::Cswap => {
            // qelib1: cswap a,b,c = cx c,b; ccx a,b,c; cx c,b.
            let (a, b, c) = (qs[0], qs[1], qs[2]);
            out.cx(c, b);
            emit_ccx(out, a, b, c);
            out.cx(c, b);
            Ok(())
        }
        Gate::Mcx => unreachable!("mcx removed by lower_mcx"),
        ref g => unreachable!("unhandled non-native gate {}", g.name()),
    }
}

/// Standard 6-CNOT Toffoli decomposition (qelib1 `ccx`).
fn emit_ccx(out: &mut Circuit, a: Qubit, b: Qubit, c: Qubit) {
    out.h(c)
        .cx(b, c)
        .tdg(c)
        .cx(a, c)
        .t(c)
        .cx(b, c)
        .tdg(c)
        .cx(a, c)
        .t(b)
        .t(c)
        .h(c)
        .cx(a, b)
        .t(a)
        .tdg(b)
        .cx(a, b);
}

/// Convenience: the u3 angles realizing an arbitrary-axis rotation used by
/// tests and generators; exposed for reuse.
///
/// Returns `(theta, phi, lambda)` such that `U(theta, phi, lambda) = H`.
pub fn h_as_u3() -> (f64, f64, f64) {
    (FRAC_PI_2, 0.0, PI)
}

/// Returns `(theta, phi, lambda)` such that `U(theta, phi, lambda) = T`
/// up to global phase.
pub fn t_as_u3() -> (f64, f64, f64) {
    (0.0, 0.0, FRAC_PI_4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{apply_reversible, StateVector};

    /// A generic product state preparation so equivalence checks are not
    /// fooled by special inputs.
    fn scramble(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.u(0.3 + 0.41 * q as f64, 0.7 - 0.13 * q as f64, 0.2 + 0.29 * q as f64, q as u32);
        }
        c
    }

    fn assert_equiv(original: &Circuit, decomposed: &Circuit) {
        let n = original.num_qubits();
        let mut a = scramble(n);
        a.compose(original).unwrap();
        let mut b = scramble(n);
        b.compose(decomposed).unwrap();
        let sa = StateVector::from_circuit(&a).unwrap();
        let sb = StateVector::from_circuit(&b).unwrap();
        assert!(sa.approx_eq_global_phase(&sb, 1e-9), "decomposition changed the unitary action");
    }

    #[test]
    fn native_passthrough() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rz(0.3, 1).measure(1);
        let d = decompose_to_native(&c).unwrap();
        assert_eq!(d.len(), c.len());
    }

    type GateCase = Box<dyn Fn(&mut Circuit)>;

    #[test]
    fn every_two_qubit_gate_decomposes_correctly() {
        let cases: Vec<GateCase> = vec![
            Box::new(|c| {
                c.cz(0, 1);
            }),
            Box::new(|c| {
                c.push(Gate::Cy, &[Qubit::new(0), Qubit::new(1)]).unwrap();
            }),
            Box::new(|c| {
                c.push(Gate::Ch, &[Qubit::new(0), Qubit::new(1)]).unwrap();
            }),
            Box::new(|c| {
                c.swap(0, 1);
            }),
            Box::new(|c| {
                c.cp(0.37, 0, 1);
            }),
            Box::new(|c| {
                c.crz(1.2, 0, 1);
            }),
            Box::new(|c| {
                c.push(Gate::Cu3(0.4, 0.9, -0.3), &[Qubit::new(0), Qubit::new(1)]).unwrap();
            }),
            Box::new(|c| {
                c.rzz(0.81, 0, 1);
            }),
        ];
        for case in cases {
            let mut orig = Circuit::new(2);
            case(&mut orig);
            let native = decompose_to_native(&orig).unwrap();
            assert!(native.iter().all(|i| i.gate().is_native()), "not native: {native}");
            assert_equiv(&orig, &native);
        }
    }

    #[test]
    fn ccx_and_cswap_decompose_correctly() {
        let mut orig = Circuit::new(3);
        orig.ccx(0, 1, 2);
        let native = decompose_to_native(&orig).unwrap();
        assert!(native.iter().all(|i| i.gate().is_native()));
        assert_equiv(&orig, &native);

        let mut orig = Circuit::new(3);
        orig.push(Gate::Cswap, &[Qubit::new(0), Qubit::new(1), Qubit::new(2)]).unwrap();
        let native = decompose_to_native(&orig).unwrap();
        assert_equiv(&orig, &native);
    }

    #[test]
    fn mcx_lowering_truth_tables_with_dirty_ancillas() {
        // For each control count, exhaustively check the lowered circuit on
        // every basis state of the full register (so ancilla restoration is
        // verified for dirty values too).
        for k in 1..=6usize {
            let n = k + 3; // one target + two spare lines
            let mut c = Circuit::new(n);
            let controls: Vec<u32> = (0..k as u32).collect();
            c.mcx(&controls, k as u32);
            let lowered = lower_mcx(&c).unwrap();
            assert!(
                lowered.iter().all(|i| matches!(i.gate(), Gate::Ccx | Gate::Cx | Gate::X)),
                "unexpected gate in lowered mcx"
            );
            let cmask: u128 = (1 << k) - 1;
            for input in 0..(1u128 << n) {
                let expected = if input & cmask == cmask { input ^ (1 << k) } else { input };
                assert_eq!(
                    apply_reversible(&lowered, input).unwrap(),
                    expected,
                    "k={k} input={input:b}"
                );
            }
        }
    }

    #[test]
    fn mcx_split_path_with_single_free_qubit() {
        // k controls, 1 target, exactly 1 free qubit forces the Lemma 7.3
        // split for k >= 4.
        for k in 3..=6usize {
            let n = k + 2;
            let mut c = Circuit::new(n);
            let controls: Vec<u32> = (0..k as u32).collect();
            c.mcx(&controls, k as u32);
            let lowered = lower_mcx(&c).unwrap();
            let cmask: u128 = (1 << k) - 1;
            for input in 0..(1u128 << n) {
                let expected = if input & cmask == cmask { input ^ (1 << k) } else { input };
                assert_eq!(
                    apply_reversible(&lowered, input).unwrap(),
                    expected,
                    "k={k} input={input:b}"
                );
            }
        }
    }

    #[test]
    fn full_width_mcx_errors() {
        let mut c = Circuit::new(4);
        c.mcx(&[0, 1, 2], 3);
        let err = lower_mcx(&c).unwrap_err();
        assert!(matches!(err, CircuitError::NotEnoughAncillas { gate: "mcx", .. }));
    }

    #[test]
    fn small_mcx_direct() {
        let mut c = Circuit::new(4);
        c.mcx(&[0], 1).mcx(&[0, 1], 2);
        let lowered = lower_mcx(&c).unwrap();
        let names: Vec<_> = lowered.iter().map(|i| i.gate().name()).collect();
        assert_eq!(names, vec!["cx", "ccx"]);
    }

    #[test]
    fn decompose_to_native_handles_mcx_end_to_end() {
        let mut c = Circuit::new(6);
        c.mcx(&[0, 1, 2], 3);
        let native = decompose_to_native(&c).unwrap();
        assert!(native.iter().all(|i| i.gate().is_native()));
        // Functional check through the state-vector simulator.
        assert_equiv(
            &{
                let mut lc = Circuit::new(6);
                lc.mcx(&[0, 1, 2], 3);
                lc
            },
            &native,
        );
    }

    #[test]
    fn vchain_cost_is_linear() {
        // 4k - 8 Toffolis for the dirty V-chain.
        for k in 3..=7usize {
            let n = 2 * k; // plenty of ancillas
            let mut c = Circuit::new(n);
            let controls: Vec<u32> = (0..k as u32).collect();
            c.mcx(&controls, k as u32);
            let lowered = lower_mcx(&c).unwrap();
            assert_eq!(lowered.len(), 4 * k - 8, "k={k}");
        }
    }
}
