//! Recursive-descent parser and elaborator for OpenQASM 2.0.

use std::collections::HashMap;

use crate::circuit::Circuit;
use crate::error::QasmError;
use crate::gate::Gate;
use crate::qubit::Qubit;

use super::ast::{BinOp, Expr, Program, RegisterRef, Statement};
use super::lexer::{Lexer, Token, TokenKind};

/// Parses QASM source directly into a [`Circuit`].
///
/// Equivalent to [`parse_program`] followed by [`elaborate`].
///
/// # Errors
///
/// Returns a [`QasmError`] with source location on any lexical, syntactic,
/// or semantic problem.
pub fn parse(source: &str) -> Result<Circuit, QasmError> {
    elaborate(&parse_program(source)?)
}

/// Parses QASM source into an AST without elaborating it.
///
/// # Errors
///
/// Returns a [`QasmError`] on lexical or syntactic problems.
pub fn parse_program(source: &str) -> Result<Program, QasmError> {
    let tokens = Lexer::new(source).tokenize()?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, QasmError> {
        let t = self.bump();
        if &t.kind == kind {
            Ok(t)
        } else {
            Err(QasmError::new(
                t.line,
                t.col,
                format!("expected {}, found {}", kind.describe(), t.kind.describe()),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, usize, usize), QasmError> {
        let t = self.bump();
        match t.kind {
            TokenKind::Ident(s) => Ok((s, t.line, t.col)),
            other => Err(QasmError::new(
                t.line,
                t.col,
                format!("expected identifier, found {}", other.describe()),
            )),
        }
    }

    fn expect_int(&mut self) -> Result<usize, QasmError> {
        let t = self.bump();
        match t.kind {
            TokenKind::Int(v) => Ok(v as usize),
            other => Err(QasmError::new(
                t.line,
                t.col,
                format!("expected integer, found {}", other.describe()),
            )),
        }
    }

    fn program(&mut self) -> Result<Program, QasmError> {
        // Header: OPENQASM 2.0;
        let (kw, line, col) = self.expect_ident()?;
        if kw != "OPENQASM" {
            return Err(QasmError::new(line, col, "file must start with `OPENQASM 2.0;`"));
        }
        let t = self.bump();
        let version = match t.kind {
            TokenKind::Real(v) if (v - 2.0).abs() < 1e-9 => (2, 0),
            TokenKind::Real(v) => {
                return Err(QasmError::new(
                    t.line,
                    t.col,
                    format!("unsupported OPENQASM version {v}; only 2.0 is supported"),
                ))
            }
            other => {
                return Err(QasmError::new(
                    t.line,
                    t.col,
                    format!("expected version number, found {}", other.describe()),
                ))
            }
        };
        self.expect(&TokenKind::Semicolon)?;

        let mut statements = Vec::new();
        while self.peek().kind != TokenKind::Eof {
            statements.push(self.statement(false)?);
        }
        Ok(Program { version, statements })
    }

    fn statement(&mut self, in_gate_body: bool) -> Result<Statement, QasmError> {
        let t = self.peek().clone();
        let TokenKind::Ident(ref word) = t.kind else {
            return Err(QasmError::new(
                t.line,
                t.col,
                format!("expected statement, found {}", t.kind.describe()),
            ));
        };
        match word.as_str() {
            "include" if !in_gate_body => {
                self.bump();
                let tok = self.bump();
                let TokenKind::Str(file) = tok.kind else {
                    return Err(QasmError::new(tok.line, tok.col, "expected file name string"));
                };
                self.expect(&TokenKind::Semicolon)?;
                Ok(Statement::Include { file, line: t.line })
            }
            "qreg" | "creg" if !in_gate_body => {
                let is_q = word == "qreg";
                self.bump();
                let (name, ..) = self.expect_ident()?;
                self.expect(&TokenKind::LBracket)?;
                let size = self.expect_int()?;
                self.expect(&TokenKind::RBracket)?;
                self.expect(&TokenKind::Semicolon)?;
                if is_q {
                    Ok(Statement::QregDecl { name, size, line: t.line })
                } else {
                    Ok(Statement::CregDecl { name, size, line: t.line })
                }
            }
            "gate" if !in_gate_body => self.gate_def(t.line),
            "opaque" if !in_gate_body => {
                self.bump();
                let (name, ..) = self.expect_ident()?;
                // Skip (params) and args up to `;`.
                while self.peek().kind != TokenKind::Semicolon && self.peek().kind != TokenKind::Eof
                {
                    self.bump();
                }
                self.expect(&TokenKind::Semicolon)?;
                Ok(Statement::OpaqueDecl { name, line: t.line })
            }
            "measure" if !in_gate_body => {
                self.bump();
                let src = self.register_ref()?;
                self.expect(&TokenKind::Arrow)?;
                let dst = self.register_ref()?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(Statement::Measure { src, dst, line: t.line })
            }
            "reset" if !in_gate_body => {
                self.bump();
                let target = self.register_ref()?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(Statement::Reset { target, line: t.line })
            }
            "barrier" => {
                self.bump();
                let operands = self.operand_list()?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(Statement::Barrier { operands, line: t.line })
            }
            "if" => Err(QasmError::new(
                t.line,
                t.col,
                "classically controlled operations (`if`) are not supported",
            )),
            _ => {
                // Gate application: name [(params)] operands ;
                let (name, line, col) = self.expect_ident()?;
                let mut params = Vec::new();
                if self.peek().kind == TokenKind::LParen {
                    self.bump();
                    if self.peek().kind != TokenKind::RParen {
                        loop {
                            params.push(self.expr()?);
                            if self.peek().kind == TokenKind::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                }
                let operands = self.operand_list()?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(Statement::Apply { name, params, operands, line, col })
            }
        }
    }

    fn gate_def(&mut self, line: usize) -> Result<Statement, QasmError> {
        self.bump(); // `gate`
        let (name, ..) = self.expect_ident()?;
        let mut params = Vec::new();
        if self.peek().kind == TokenKind::LParen {
            self.bump();
            if self.peek().kind != TokenKind::RParen {
                loop {
                    let (p, ..) = self.expect_ident()?;
                    params.push(p);
                    if self.peek().kind == TokenKind::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let mut args = Vec::new();
        loop {
            let (a, ..) = self.expect_ident()?;
            args.push(a);
            if self.peek().kind == TokenKind::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&TokenKind::LBrace)?;
        let mut body = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            if self.peek().kind == TokenKind::Eof {
                let t = self.peek();
                return Err(QasmError::new(t.line, t.col, "unterminated gate body"));
            }
            body.push(self.statement(true)?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(Statement::GateDef { name, params, args, body, line })
    }

    fn operand_list(&mut self) -> Result<Vec<RegisterRef>, QasmError> {
        let mut operands = vec![self.register_ref()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            operands.push(self.register_ref()?);
        }
        Ok(operands)
    }

    fn register_ref(&mut self) -> Result<RegisterRef, QasmError> {
        let (name, line, col) = self.expect_ident()?;
        let index = if self.peek().kind == TokenKind::LBracket {
            self.bump();
            let idx = self.expect_int()?;
            self.expect(&TokenKind::RBracket)?;
            Some(idx)
        } else {
            None
        };
        Ok(RegisterRef { name, index, line, col })
    }

    // Expression grammar: expr := term (('+'|'-') term)*
    //                     term := factor (('*'|'/') factor)*
    //                     factor := unary ('^' factor)?
    //                     unary := '-' unary | atom
    fn expr(&mut self) -> Result<Expr, QasmError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
    }

    fn term(&mut self) -> Result<Expr, QasmError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.factor()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
    }

    fn factor(&mut self) -> Result<Expr, QasmError> {
        let base = self.unary()?;
        if self.peek().kind == TokenKind::Caret {
            self.bump();
            let exp = self.factor()?; // right-associative
            Ok(Expr::Binary { op: BinOp::Pow, lhs: Box::new(base), rhs: Box::new(exp) })
        } else {
            Ok(base)
        }
    }

    fn unary(&mut self) -> Result<Expr, QasmError> {
        if self.peek().kind == TokenKind::Minus {
            self.bump();
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        let t = self.bump();
        match t.kind {
            TokenKind::Real(v) => Ok(Expr::Number(v)),
            TokenKind::Int(v) => Ok(Expr::Number(v as f64)),
            TokenKind::Ident(name) if name == "pi" => Ok(Expr::Pi),
            TokenKind::Ident(name) => {
                if self.peek().kind == TokenKind::LParen {
                    self.bump();
                    let arg = self.expr()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Call { func: name, arg: Box::new(arg) })
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            TokenKind::LParen => {
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            other => Err(QasmError::new(
                t.line,
                t.col,
                format!("expected expression, found {}", other.describe()),
            )),
        }
    }
}

// --- elaboration ----------------------------------------------------------

struct GateDefInfo<'a> {
    params: &'a [String],
    args: &'a [String],
    body: &'a [Statement],
}

struct Elaborator<'a> {
    qregs: HashMap<String, (usize, usize)>, // name -> (offset, size)
    qreg_order: Vec<String>,
    cregs: HashMap<String, usize>, // name -> size
    defs: HashMap<String, GateDefInfo<'a>>,
    opaques: HashMap<String, usize>, // name -> decl line
    num_qubits: usize,
}

/// What an operand resolved to.
enum Operand {
    Single(Qubit),
    Whole(Vec<Qubit>),
}

/// Elaborates a parsed [`Program`] into a flat [`Circuit`].
///
/// Quantum registers are laid out contiguously in declaration order.
/// Classical registers are validated and then discarded (measurements
/// record only the measured qubit).
///
/// # Errors
///
/// Returns a [`QasmError`] on undeclared registers, out-of-range indices,
/// arity mismatches, broadcast size mismatches, applications of opaque
/// gates, or unknown gate names.
pub fn elaborate(program: &Program) -> Result<Circuit, QasmError> {
    let mut el = Elaborator {
        qregs: HashMap::new(),
        qreg_order: Vec::new(),
        cregs: HashMap::new(),
        defs: HashMap::new(),
        opaques: HashMap::new(),
        num_qubits: 0,
    };

    // Pass 1: declarations.
    for stmt in &program.statements {
        match stmt {
            Statement::QregDecl { name, size, line } => {
                if el.qregs.contains_key(name) {
                    return Err(QasmError::new(*line, 0, format!("qreg `{name}` redeclared")));
                }
                el.qregs.insert(name.clone(), (el.num_qubits, *size));
                el.qreg_order.push(name.clone());
                el.num_qubits += size;
            }
            Statement::CregDecl { name, size, line } => {
                if el.cregs.contains_key(name) {
                    return Err(QasmError::new(*line, 0, format!("creg `{name}` redeclared")));
                }
                el.cregs.insert(name.clone(), *size);
            }
            Statement::GateDef { name, params, args, body, .. } => {
                el.defs.insert(name.clone(), GateDefInfo { params, args, body });
            }
            Statement::OpaqueDecl { name, line } => {
                el.opaques.insert(name.clone(), *line);
            }
            _ => {}
        }
    }

    // Pass 2: executable statements.
    let mut circuit = Circuit::new(el.num_qubits);
    for stmt in &program.statements {
        el.exec(stmt, &mut circuit)?;
    }
    Ok(circuit)
}

impl<'a> Elaborator<'a> {
    fn exec(&self, stmt: &Statement, circuit: &mut Circuit) -> Result<(), QasmError> {
        match stmt {
            Statement::Include { .. }
            | Statement::QregDecl { .. }
            | Statement::CregDecl { .. }
            | Statement::GateDef { .. }
            | Statement::OpaqueDecl { .. } => Ok(()),
            Statement::Apply { name, params, operands, line, col } => {
                let values = params
                    .iter()
                    .map(|e| {
                        e.eval(&[]).ok_or_else(|| {
                            QasmError::new(*line, *col, "unbound identifier in parameter")
                        })
                    })
                    .collect::<Result<Vec<f64>, QasmError>>()?;
                let resolved = operands.iter().map(|r| self.resolve_qubit(r)).collect::<Result<
                    Vec<Operand>,
                    QasmError,
                >>(
                )?;
                for group in broadcast(&resolved, *line, *col)? {
                    self.apply_gate(name, &values, &group, circuit, *line, *col, 0)?;
                }
                Ok(())
            }
            Statement::Measure { src, dst, line } => {
                let src_ops = self.resolve_qubit(src)?;
                self.check_creg(dst, *line)?;
                // Broadcast widths must agree: `measure q -> c` needs
                // |q| == |c|; a whole register cannot measure into one bit.
                let src_width = match &src_ops {
                    Operand::Single(_) => 1,
                    Operand::Whole(qs) => qs.len(),
                };
                let dst_width = match dst.index {
                    Some(_) => 1,
                    None => self.cregs[&dst.name],
                };
                if src_width != dst_width {
                    return Err(QasmError::new(
                        *line,
                        dst.col,
                        format!(
                            "measure width mismatch: {src_width} qubit(s) into {dst_width} bit(s)"
                        ),
                    ));
                }
                let groups = broadcast(std::slice::from_ref(&src_ops), *line, 0)?;
                for g in groups {
                    circuit.push(Gate::Measure, &g).map_err(QasmError::from)?;
                }
                Ok(())
            }
            Statement::Reset { target, line } => {
                let ops = self.resolve_qubit(target)?;
                for g in broadcast(std::slice::from_ref(&ops), *line, 0)? {
                    circuit.push(Gate::Reset, &g).map_err(QasmError::from)?;
                }
                Ok(())
            }
            Statement::Barrier { operands, line: _ } => {
                let mut qubits = Vec::new();
                for r in operands {
                    match self.resolve_qubit(r)? {
                        Operand::Single(q) => qubits.push(q),
                        Operand::Whole(qs) => qubits.extend(qs),
                    }
                }
                circuit.push(Gate::Barrier, &qubits).map_err(QasmError::from)?;
                Ok(())
            }
        }
    }

    fn check_creg(&self, r: &RegisterRef, line: usize) -> Result<(), QasmError> {
        let Some(size) = self.cregs.get(&r.name) else {
            return Err(QasmError::new(line, r.col, format!("creg `{}` not declared", r.name)));
        };
        if let Some(i) = r.index {
            if i >= *size {
                return Err(QasmError::new(
                    line,
                    r.col,
                    format!("index {i} out of range for creg `{}` of size {size}", r.name),
                ));
            }
        }
        Ok(())
    }

    fn resolve_qubit(&self, r: &RegisterRef) -> Result<Operand, QasmError> {
        let Some(&(offset, size)) = self.qregs.get(&r.name) else {
            return Err(QasmError::new(r.line, r.col, format!("qreg `{}` not declared", r.name)));
        };
        match r.index {
            Some(i) if i >= size => Err(QasmError::new(
                r.line,
                r.col,
                format!("index {i} out of range for qreg `{}` of size {size}", r.name),
            )),
            Some(i) => Ok(Operand::Single(Qubit::from(offset + i))),
            None => Ok(Operand::Whole((offset..offset + size).map(Qubit::from).collect())),
        }
    }

    /// Applies a (possibly user-defined) gate to concrete qubits.
    #[allow(clippy::too_many_arguments)]
    fn apply_gate(
        &self,
        name: &str,
        params: &[f64],
        qubits: &[Qubit],
        circuit: &mut Circuit,
        line: usize,
        col: usize,
        depth: usize,
    ) -> Result<(), QasmError> {
        if depth > 64 {
            return Err(QasmError::new(line, col, format!("gate `{name}` expands too deeply")));
        }
        // User definitions shadow the builtin library.
        if let Some(def) = self.defs.get(name) {
            if def.params.len() != params.len() {
                return Err(QasmError::new(
                    line,
                    col,
                    format!(
                        "gate `{name}` takes {} parameter(s), got {}",
                        def.params.len(),
                        params.len()
                    ),
                ));
            }
            if def.args.len() != qubits.len() {
                return Err(QasmError::new(
                    line,
                    col,
                    format!(
                        "gate `{name}` takes {} qubit(s), got {}",
                        def.args.len(),
                        qubits.len()
                    ),
                ));
            }
            let bindings: Vec<(String, f64)> =
                def.params.iter().cloned().zip(params.iter().copied()).collect();
            for stmt in def.body {
                match stmt {
                    Statement::Apply { name: inner, params: ps, operands, line: l, col: c } => {
                        let values = ps
                            .iter()
                            .map(|e| {
                                e.eval(&bindings).ok_or_else(|| {
                                    QasmError::new(
                                        *l,
                                        *c,
                                        "unbound identifier in gate body parameter",
                                    )
                                })
                            })
                            .collect::<Result<Vec<f64>, QasmError>>()?;
                        let mapped = operands
                            .iter()
                            .map(|r| {
                                if r.index.is_some() {
                                    return Err(QasmError::new(
                                        *l,
                                        r.col,
                                        "indexing is not allowed inside gate bodies",
                                    ));
                                }
                                def.args
                                    .iter()
                                    .position(|a| a == &r.name)
                                    .map(|i| qubits[i])
                                    .ok_or_else(|| {
                                        QasmError::new(
                                            *l,
                                            r.col,
                                            format!("unknown formal argument `{}`", r.name),
                                        )
                                    })
                            })
                            .collect::<Result<Vec<Qubit>, QasmError>>()?;
                        self.apply_gate(inner, &values, &mapped, circuit, *l, *c, depth + 1)?;
                    }
                    Statement::Barrier { operands, line: l } => {
                        let mapped = operands
                            .iter()
                            .map(|r| {
                                def.args
                                    .iter()
                                    .position(|a| a == &r.name)
                                    .map(|i| qubits[i])
                                    .ok_or_else(|| {
                                        QasmError::new(
                                            *l,
                                            r.col,
                                            format!("unknown formal argument `{}`", r.name),
                                        )
                                    })
                            })
                            .collect::<Result<Vec<Qubit>, QasmError>>()?;
                        circuit.push(Gate::Barrier, &mapped).map_err(QasmError::from)?;
                    }
                    other => {
                        return Err(QasmError::new(
                            line,
                            col,
                            format!("unsupported statement in gate body: {other:?}"),
                        ))
                    }
                }
            }
            return Ok(());
        }
        if let Some(decl_line) = self.opaques.get(name) {
            return Err(QasmError::new(
                line,
                col,
                format!("cannot apply opaque gate `{name}` (declared at line {decl_line})"),
            ));
        }
        let gate = builtin_gate(name, params, qubits.len(), line, col)?;
        circuit.push(gate, qubits).map_err(QasmError::from)?;
        Ok(())
    }
}

/// Expands broadcast semantics: whole-register operands apply the gate
/// element-wise; all whole-register operands must have equal length.
fn broadcast(operands: &[Operand], line: usize, col: usize) -> Result<Vec<Vec<Qubit>>, QasmError> {
    let mut width: Option<usize> = None;
    for op in operands {
        if let Operand::Whole(qs) = op {
            match width {
                None => width = Some(qs.len()),
                Some(w) if w != qs.len() => {
                    return Err(QasmError::new(
                        line,
                        col,
                        format!("register broadcast size mismatch: {} vs {}", w, qs.len()),
                    ))
                }
                _ => {}
            }
        }
    }
    let width = width.unwrap_or(1);
    let mut out = Vec::with_capacity(width);
    for i in 0..width {
        let group: Vec<Qubit> = operands
            .iter()
            .map(|op| match op {
                Operand::Single(q) => *q,
                Operand::Whole(qs) => qs[i],
            })
            .collect();
        out.push(group);
    }
    Ok(out)
}

/// Maps a builtin gate name (the QASM primitives plus the qelib1 library
/// and Qiskit's common extensions) to a [`Gate`].
fn builtin_gate(
    name: &str,
    params: &[f64],
    operand_count: usize,
    line: usize,
    col: usize,
) -> Result<Gate, QasmError> {
    use std::f64::consts::FRAC_PI_2;
    let param_err = |expected: usize| {
        QasmError::new(
            line,
            col,
            format!("gate `{name}` takes {expected} parameter(s), got {}", params.len()),
        )
    };
    let check = |expected: usize| -> Result<(), QasmError> {
        if params.len() == expected {
            Ok(())
        } else {
            Err(param_err(expected))
        }
    };
    let gate = match name {
        "U" | "u3" | "u" => {
            check(3)?;
            Gate::U(params[0], params[1], params[2])
        }
        "u2" => {
            check(2)?;
            Gate::U(FRAC_PI_2, params[0], params[1])
        }
        "u1" | "p" | "phase" => {
            check(1)?;
            Gate::P(params[0])
        }
        "CX" | "cx" | "cnot" => {
            check(0)?;
            Gate::Cx
        }
        "id" | "i" => {
            check(0)?;
            Gate::I
        }
        "x" => {
            check(0)?;
            Gate::X
        }
        "y" => {
            check(0)?;
            Gate::Y
        }
        "z" => {
            check(0)?;
            Gate::Z
        }
        "h" => {
            check(0)?;
            Gate::H
        }
        "s" => {
            check(0)?;
            Gate::S
        }
        "sdg" => {
            check(0)?;
            Gate::Sdg
        }
        "t" => {
            check(0)?;
            Gate::T
        }
        "tdg" => {
            check(0)?;
            Gate::Tdg
        }
        "sx" => {
            check(0)?;
            Gate::Sx
        }
        "sxdg" => {
            check(0)?;
            Gate::Sxdg
        }
        "rx" => {
            check(1)?;
            Gate::Rx(params[0])
        }
        "ry" => {
            check(1)?;
            Gate::Ry(params[0])
        }
        "rz" => {
            check(1)?;
            Gate::Rz(params[0])
        }
        "cz" => {
            check(0)?;
            Gate::Cz
        }
        "cy" => {
            check(0)?;
            Gate::Cy
        }
        "ch" => {
            check(0)?;
            Gate::Ch
        }
        "swap" => {
            check(0)?;
            Gate::Swap
        }
        "cu1" | "cp" => {
            check(1)?;
            Gate::Cp(params[0])
        }
        "crz" => {
            check(1)?;
            Gate::Crz(params[0])
        }
        "cu3" => {
            check(3)?;
            Gate::Cu3(params[0], params[1], params[2])
        }
        "rzz" => {
            check(1)?;
            Gate::Rzz(params[0])
        }
        "ccx" | "toffoli" => {
            check(0)?;
            Gate::Ccx
        }
        "cswap" | "fredkin" => {
            check(0)?;
            Gate::Cswap
        }
        "mcx" => {
            check(0)?;
            Gate::Mcx
        }
        _ => {
            return Err(QasmError::new(line, col, format!("unknown gate `{name}`")));
        }
    };
    // Arity errors surface through Instruction validation, but catching the
    // obvious case here gives a located error message.
    if !gate.arity().accepts(operand_count) {
        return Err(QasmError::new(
            line,
            col,
            format!("gate `{name}` takes {} operand(s), got {operand_count}", gate.arity()),
        ));
    }
    Ok(gate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_program() {
        let c = parse("OPENQASM 2.0; qreg q[2]; h q[0]; cx q[0], q[1];").unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn version_is_checked() {
        assert!(parse("OPENQASM 3.0; qreg q[1];").is_err());
        assert!(parse("qreg q[1];").is_err());
    }

    #[test]
    fn broadcast_single_register() {
        let c = parse("OPENQASM 2.0; qreg q[3]; h q;").unwrap();
        assert_eq!(c.len(), 3);
        assert!(c.iter().all(|i| i.gate().name() == "h"));
    }

    #[test]
    fn broadcast_two_registers() {
        let c = parse("OPENQASM 2.0; qreg a[2]; qreg b[2]; cx a, b;").unwrap();
        assert_eq!(c.len(), 2);
        let pairs: Vec<_> = c.two_qubit_pairs().collect();
        assert_eq!(pairs[0], (Qubit::new(0), Qubit::new(2)));
        assert_eq!(pairs[1], (Qubit::new(1), Qubit::new(3)));
    }

    #[test]
    fn broadcast_mixed() {
        let c = parse("OPENQASM 2.0; qreg a[1]; qreg b[3]; cx a[0], b;").unwrap();
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn broadcast_mismatch_is_error() {
        let err = parse("OPENQASM 2.0; qreg a[2]; qreg b[3]; cx a, b;").unwrap_err();
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn measure_with_creg() {
        let c = parse("OPENQASM 2.0; qreg q[2]; creg c[2]; measure q -> c;").unwrap();
        assert_eq!(c.counts_by_name()["measure"], 2);
        assert!(parse("OPENQASM 2.0; qreg q[2]; creg c[1]; measure q -> c;").is_err());
        assert!(parse("OPENQASM 2.0; qreg q[2]; measure q[0] -> c[0];").is_err());
    }

    #[test]
    fn custom_gate_definition_expands() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            gate majority a, b, c { cx c, b; cx c, a; ccx a, b, c; }
            qreg q[3];
            majority q[0], q[1], q[2];
        "#;
        let c = parse(src).unwrap();
        let names: Vec<_> = c.iter().map(|i| i.gate().name()).collect();
        assert_eq!(names, vec!["cx", "cx", "ccx"]);
    }

    #[test]
    fn parameterized_gate_definition() {
        let src = r#"
            OPENQASM 2.0;
            gate twist(theta) a, b { rz(theta/2) a; cx a, b; rz(-theta/2) b; }
            qreg q[2];
            twist(pi) q[0], q[1];
        "#;
        let c = parse(src).unwrap();
        assert_eq!(c.len(), 3);
        let p = c.instructions()[0].gate().params()[0];
        assert!((p - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        let p = c.instructions()[2].gate().params()[0];
        assert!((p + std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn expression_precedence() {
        let c = parse("OPENQASM 2.0; qreg q[1]; rz(1+2*3) q[0];").unwrap();
        assert_eq!(c.instructions()[0].gate().params()[0], 7.0);
        let c = parse("OPENQASM 2.0; qreg q[1]; rz(-pi/4) q[0];").unwrap();
        assert!(
            (c.instructions()[0].gate().params()[0] + std::f64::consts::FRAC_PI_4).abs() < 1e-12
        );
        let c = parse("OPENQASM 2.0; qreg q[1]; rz(2^3^1) q[0];").unwrap(); // right assoc
        assert_eq!(c.instructions()[0].gate().params()[0], 8.0);
        let c = parse("OPENQASM 2.0; qreg q[1]; rz(cos(0)) q[0];").unwrap();
        assert_eq!(c.instructions()[0].gate().params()[0], 1.0);
    }

    #[test]
    fn opaque_gate_rejected_on_use() {
        let src = "OPENQASM 2.0; opaque magic a, b; qreg q[2]; magic q[0], q[1];";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("opaque"));
    }

    #[test]
    fn if_is_rejected() {
        let src = "OPENQASM 2.0; qreg q[1]; creg c[1]; if (c==1) x q[0];";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("if"));
    }

    #[test]
    fn unknown_gate_is_located() {
        let err = parse("OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];").unwrap_err();
        assert_eq!(err.line(), 3);
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn out_of_range_index() {
        let err = parse("OPENQASM 2.0; qreg q[2]; h q[2];").unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn multiple_qregs_are_laid_out_in_order() {
        let c = parse("OPENQASM 2.0; qreg a[2]; qreg b[2]; cx a[1], b[0];").unwrap();
        let pairs: Vec<_> = c.two_qubit_pairs().collect();
        assert_eq!(pairs, vec![(Qubit::new(1), Qubit::new(2))]);
    }

    #[test]
    fn barrier_over_registers() {
        let c = parse("OPENQASM 2.0; qreg q[2]; qreg r[1]; barrier q, r;").unwrap();
        assert_eq!(c.instructions()[0].qubits().len(), 3);
    }

    #[test]
    fn u2_maps_to_u3() {
        let c = parse("OPENQASM 2.0; qreg q[1]; u2(0, pi) q[0];").unwrap();
        assert_eq!(c.instructions()[0].gate().name(), "u3");
    }

    #[test]
    fn gate_shadowing_builtin() {
        // A user-defined `h` takes precedence over the builtin.
        let src = "OPENQASM 2.0; gate h a { x a; } qreg q[1]; h q[0];";
        let c = parse(src).unwrap();
        assert_eq!(c.instructions()[0].gate().name(), "x");
    }
}
