//! OpenQASM 2.0 emission.

use std::fmt::Write as _;

use crate::circuit::Circuit;
use crate::error::QasmError;
use crate::gate::Gate;

/// Serializes a circuit as OpenQASM 2.0 targeting the (Qiskit-extended)
/// `qelib1.inc` gate library.
///
/// The circuit's qubits become a single register `q[n]`; if measurements
/// are present a classical register `c[n]` is declared and `measure q[i]
/// -> c[i]` emitted.
///
/// # Errors
///
/// Returns a [`QasmError`] if the circuit contains a gate with no QASM
/// spelling ([`Gate::Mcx`] — lower it first with
/// [`crate::decompose::lower_mcx`]).
///
/// ```
/// use qpd_circuit::Circuit;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1).measure_all();
/// let qasm = qpd_circuit::qasm::to_qasm(&c)?;
/// assert!(qasm.contains("cx q[0], q[1];"));
/// let back = qpd_circuit::qasm::parse(&qasm)?;
/// assert_eq!(back, c);
/// # Ok(())
/// # }
/// ```
pub fn to_qasm(circuit: &Circuit) -> Result<String, QasmError> {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let n = circuit.num_qubits();
    let _ = writeln!(out, "qreg q[{n}];");
    if circuit.iter().any(|i| matches!(i.gate(), Gate::Measure)) {
        let _ = writeln!(out, "creg c[{n}];");
    }
    for inst in circuit.iter() {
        let qubits: Vec<String> =
            inst.qubits().iter().map(|q| format!("q[{}]", q.index())).collect();
        match inst.gate() {
            Gate::Mcx => {
                return Err(QasmError::new(
                    0,
                    0,
                    "`mcx` has no qelib1 spelling; lower it with decompose::lower_mcx first",
                ));
            }
            Gate::Measure => {
                let q = inst.qubits()[0].index();
                let _ = writeln!(out, "measure q[{q}] -> c[{q}];");
            }
            Gate::Barrier => {
                let _ = writeln!(out, "barrier {};", qubits.join(", "));
            }
            Gate::Reset => {
                let _ = writeln!(out, "reset {};", qubits[0]);
            }
            g => {
                let params = g.params();
                if params.is_empty() {
                    let _ = writeln!(out, "{} {};", g.name(), qubits.join(", "));
                } else {
                    let rendered: Vec<String> = params.iter().map(|p| format_param(*p)).collect();
                    let _ = writeln!(
                        out,
                        "{}({}) {};",
                        g.name(),
                        rendered.join(", "),
                        qubits.join(", ")
                    );
                }
            }
        }
    }
    Ok(out)
}

/// Formats an angle with enough digits to round-trip exactly through the
/// parser.
fn format_param(v: f64) -> String {
    // `{:?}` on f64 produces the shortest representation that round-trips.
    let s = format!("{v:?}");
    // Ensure the token lexes as a real, not an integer.
    if s.contains('.')
        || s.contains('e')
        || s.contains('E')
        || s.contains("inf")
        || s.contains("NaN")
    {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qasm::parse;

    #[test]
    fn roundtrip_simple() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ccx(0, 1, 2).rz(0.1234567890123, 2).barrier_all().measure_all();
        let qasm = to_qasm(&c).unwrap();
        let back = parse(&qasm).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn roundtrip_parameterized() {
        let mut c = Circuit::new(2);
        c.u(0.1, -0.2, 3.0, 0).cp(std::f64::consts::PI, 0, 1).rzz(1e-9, 0, 1);
        let qasm = to_qasm(&c).unwrap();
        let back = parse(&qasm).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn mcx_is_rejected() {
        let mut c = Circuit::new(4);
        c.mcx(&[0, 1, 2], 3);
        let err = to_qasm(&c).unwrap_err();
        assert!(err.to_string().contains("mcx"));
    }

    #[test]
    fn no_creg_without_measure() {
        let mut c = Circuit::new(2);
        c.h(0);
        let qasm = to_qasm(&c).unwrap();
        assert!(!qasm.contains("creg"));
    }

    #[test]
    fn param_formatting_roundtrips_integers() {
        assert_eq!(format_param(2.0), "2.0");
        assert_eq!(format_param(0.5), "0.5");
    }
}
