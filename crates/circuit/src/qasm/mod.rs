//! OpenQASM 2.0 support.
//!
//! Supports the language subset used by real circuit dumps (Qiskit,
//! RevLib-derived benchmarks, ScaffCC output): register declarations,
//! the `qelib1.inc` standard gate library (treated as built in), custom
//! `gate` definitions (expanded at application), broadcast semantics,
//! `measure`, `reset`, and `barrier`. Classical control (`if`) and
//! `opaque` gate applications are rejected with a clear error, since the
//! architecture design flow has no use for them.
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let source = r#"
//!     OPENQASM 2.0;
//!     include "qelib1.inc";
//!     qreg q[3];
//!     creg c[3];
//!     h q[0];
//!     cx q[0], q[1];
//!     ccx q[0], q[1], q[2];
//!     measure q -> c;
//! "#;
//! let circuit = qpd_circuit::qasm::parse(source)?;
//! assert_eq!(circuit.num_qubits(), 3);
//! assert_eq!(circuit.counts_by_name()["measure"], 3);
//! # Ok(())
//! # }
//! ```

mod ast;
mod emit;
mod lexer;
mod parser;

pub use ast::{Expr, Program, RegisterRef, Statement};
pub use emit::to_qasm;
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{elaborate, parse, parse_program};
