//! Hand-written lexer for OpenQASM 2.0.

use crate::error::QasmError;

/// Kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Floating-point literal.
    Real(f64),
    /// Non-negative integer literal.
    Int(u64),
    /// String literal (without quotes).
    Str(String),
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `->`
    Arrow,
    /// `==`
    EqEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `^`
    Caret,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Real(v) => format!("real `{v}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::Semicolon => "`;`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::Arrow => "`->`".into(),
            TokenKind::EqEq => "`==`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Caret => "`^`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// A token with its source position (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Streaming lexer over QASM source text.
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `source`.
    pub fn new(source: &'a str) -> Self {
        Lexer { src: source.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    /// Lexes the entire input into a token vector (ending with
    /// [`TokenKind::Eof`]).
    ///
    /// # Errors
    ///
    /// Returns a [`QasmError`] on malformed numbers, unterminated strings,
    /// or unexpected characters.
    pub fn tokenize(mut self) -> Result<Vec<Token>, QasmError> {
        let mut tokens = Vec::new();
        loop {
            let tok = self.next_token()?;
            let eof = tok.kind == TokenKind::Eof;
            tokens.push(tok);
            if eof {
                return Ok(tokens);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, QasmError> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let make = |kind| Token { kind, line, col };
        let Some(b) = self.peek() else {
            return Ok(make(TokenKind::Eof));
        };
        match b {
            b';' => {
                self.bump();
                Ok(make(TokenKind::Semicolon))
            }
            b',' => {
                self.bump();
                Ok(make(TokenKind::Comma))
            }
            b'(' => {
                self.bump();
                Ok(make(TokenKind::LParen))
            }
            b')' => {
                self.bump();
                Ok(make(TokenKind::RParen))
            }
            b'{' => {
                self.bump();
                Ok(make(TokenKind::LBrace))
            }
            b'}' => {
                self.bump();
                Ok(make(TokenKind::RBrace))
            }
            b'[' => {
                self.bump();
                Ok(make(TokenKind::LBracket))
            }
            b']' => {
                self.bump();
                Ok(make(TokenKind::RBracket))
            }
            b'+' => {
                self.bump();
                Ok(make(TokenKind::Plus))
            }
            b'*' => {
                self.bump();
                Ok(make(TokenKind::Star))
            }
            b'/' => {
                self.bump();
                Ok(make(TokenKind::Slash))
            }
            b'^' => {
                self.bump();
                Ok(make(TokenKind::Caret))
            }
            b'-' => {
                self.bump();
                if self.peek() == Some(b'>') {
                    self.bump();
                    Ok(make(TokenKind::Arrow))
                } else {
                    Ok(make(TokenKind::Minus))
                }
            }
            b'=' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(make(TokenKind::EqEq))
                } else {
                    Err(QasmError::new(line, col, "expected `==`"))
                }
            }
            b'"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(c) => s.push(c as char),
                        None => {
                            return Err(QasmError::new(line, col, "unterminated string literal"))
                        }
                    }
                }
                Ok(make(TokenKind::Str(s)))
            }
            b'0'..=b'9' | b'.' => self.lex_number(line, col),
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let mut s = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        s.push(c as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(make(TokenKind::Ident(s)))
            }
            other => {
                Err(QasmError::new(line, col, format!("unexpected character `{}`", other as char)))
            }
        }
    }

    fn lex_number(&mut self, line: usize, col: usize) -> Result<Token, QasmError> {
        let start = self.pos;
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' if !saw_dot && !saw_exp => {
                    saw_dot = true;
                    self.bump();
                }
                b'e' | b'E' if !saw_exp => {
                    saw_exp = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+' | b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        if saw_dot || saw_exp {
            text.parse::<f64>()
                .map(|v| Token { kind: TokenKind::Real(v), line, col })
                .map_err(|_| QasmError::new(line, col, format!("malformed real `{text}`")))
        } else {
            text.parse::<u64>()
                .map(|v| Token { kind: TokenKind::Int(v), line, col })
                .map_err(|_| QasmError::new(line, col, format!("malformed integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src).tokenize().unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let ks = kinds("qreg q[5];");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("qreg".into()),
                TokenKind::Ident("q".into()),
                TokenKind::LBracket,
                TokenKind::Int(5),
                TokenKind::RBracket,
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("3")[0], TokenKind::Int(3));
        assert_eq!(kinds("3.5")[0], TokenKind::Real(3.5));
        assert_eq!(kinds("1e-3")[0], TokenKind::Real(1e-3));
        assert_eq!(kinds(".5")[0], TokenKind::Real(0.5));
    }

    #[test]
    fn arrow_and_minus() {
        assert_eq!(
            kinds("a -> b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Arrow,
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
        assert_eq!(kinds("-1")[0], TokenKind::Minus);
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("h q; // apply hadamard\ncx q, r;");
        assert!(ks.contains(&TokenKind::Ident("cx".into())));
    }

    #[test]
    fn string_literals() {
        assert_eq!(kinds("include \"qelib1.inc\";")[1], TokenKind::Str("qelib1.inc".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(Lexer::new("include \"oops").tokenize().is_err());
    }

    #[test]
    fn position_tracking() {
        let toks = Lexer::new("h q;\ncx a, b;").tokenize().unwrap();
        let cx = toks.iter().find(|t| t.kind == TokenKind::Ident("cx".into())).unwrap();
        assert_eq!((cx.line, cx.col), (2, 1));
    }

    #[test]
    fn unexpected_character() {
        let err = Lexer::new("h q; @").tokenize().unwrap_err();
        assert!(err.to_string().contains('@'));
    }
}
