//! Abstract syntax tree for OpenQASM 2.0.

use std::fmt;

/// A parsed OpenQASM 2.0 program: the version header plus a statement list.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Declared version (always `2.0` for accepted programs).
    pub version: (u32, u32),
    /// Top-level statements in source order.
    pub statements: Vec<Statement>,
}

/// Reference to a whole register or one element of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterRef {
    /// Register name.
    pub name: String,
    /// `Some(i)` for `name[i]`, `None` for the whole register.
    pub index: Option<usize>,
    /// Source line (for error reporting during elaboration).
    pub line: usize,
    /// Source column.
    pub col: usize,
}

impl fmt::Display for RegisterRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(i) => write!(f, "{}[{}]", self.name, i),
            None => write!(f, "{}", self.name),
        }
    }
}

/// A top-level or gate-body statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `include "file";` — recorded but only `qelib1.inc` has meaning.
    Include {
        /// Included file name.
        file: String,
        /// Source line.
        line: usize,
    },
    /// `qreg name[size];`
    QregDecl {
        /// Register name.
        name: String,
        /// Number of qubits.
        size: usize,
        /// Source line.
        line: usize,
    },
    /// `creg name[size];`
    CregDecl {
        /// Register name.
        name: String,
        /// Number of bits.
        size: usize,
        /// Source line.
        line: usize,
    },
    /// `gate name(params) args { body }`
    GateDef {
        /// Gate name.
        name: String,
        /// Formal parameter names.
        params: Vec<String>,
        /// Formal qubit argument names.
        args: Vec<String>,
        /// Body statements (applications and barriers over formals).
        body: Vec<Statement>,
        /// Source line.
        line: usize,
    },
    /// `opaque name(params) args;`
    OpaqueDecl {
        /// Gate name.
        name: String,
        /// Source line.
        line: usize,
    },
    /// Application of a gate: `name(exprs) operands;`
    Apply {
        /// Gate name as written (`U` and `CX` builtins included).
        name: String,
        /// Actual parameter expressions.
        params: Vec<Expr>,
        /// Qubit operands.
        operands: Vec<RegisterRef>,
        /// Source line.
        line: usize,
        /// Source column.
        col: usize,
    },
    /// `measure src -> dst;`
    Measure {
        /// Measured qubit(s).
        src: RegisterRef,
        /// Classical destination (validated, then discarded).
        dst: RegisterRef,
        /// Source line.
        line: usize,
    },
    /// `reset target;`
    Reset {
        /// Reset qubit(s).
        target: RegisterRef,
        /// Source line.
        line: usize,
    },
    /// `barrier operands;`
    Barrier {
        /// Barrier operands.
        operands: Vec<RegisterRef>,
        /// Source line.
        line: usize,
    },
}

/// A parameter expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(f64),
    /// The constant pi.
    Pi,
    /// A gate-definition formal parameter.
    Ident(String),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Builtin function call (`sin`, `cos`, `tan`, `exp`, `ln`, `sqrt`).
    Call {
        /// Function name.
        func: String,
        /// Argument.
        arg: Box<Expr>,
    },
}

/// Binary operator in a parameter expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Exponentiation (`^`).
    Pow,
}

impl Expr {
    /// Evaluates the expression with the given parameter bindings.
    ///
    /// Returns `None` if an identifier is unbound or a function is unknown.
    pub fn eval(&self, bindings: &[(String, f64)]) -> Option<f64> {
        match self {
            Expr::Number(v) => Some(*v),
            Expr::Pi => Some(std::f64::consts::PI),
            Expr::Ident(name) => bindings.iter().find(|(n, _)| n == name).map(|(_, v)| *v),
            Expr::Neg(inner) => inner.eval(bindings).map(|v| -v),
            Expr::Binary { op, lhs, rhs } => {
                let l = lhs.eval(bindings)?;
                let r = rhs.eval(bindings)?;
                Some(match op {
                    BinOp::Add => l + r,
                    BinOp::Sub => l - r,
                    BinOp::Mul => l * r,
                    BinOp::Div => l / r,
                    BinOp::Pow => l.powf(r),
                })
            }
            Expr::Call { func, arg } => {
                let v = arg.eval(bindings)?;
                Some(match func.as_str() {
                    "sin" => v.sin(),
                    "cos" => v.cos(),
                    "tan" => v.tan(),
                    "exp" => v.exp(),
                    "ln" => v.ln(),
                    "sqrt" => v.sqrt(),
                    _ => return None,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_eval() {
        let e = Expr::Binary {
            op: BinOp::Div,
            lhs: Box::new(Expr::Pi),
            rhs: Box::new(Expr::Number(2.0)),
        };
        assert!((e.eval(&[]).unwrap() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn expr_bindings() {
        let e = Expr::Neg(Box::new(Expr::Ident("theta".into())));
        assert_eq!(e.eval(&[("theta".into(), 0.5)]), Some(-0.5));
        assert_eq!(e.eval(&[]), None);
    }

    #[test]
    fn expr_functions() {
        let e = Expr::Call { func: "cos".into(), arg: Box::new(Expr::Number(0.0)) };
        assert_eq!(e.eval(&[]), Some(1.0));
        let bad = Expr::Call { func: "sinh".into(), arg: Box::new(Expr::Number(0.0)) };
        assert_eq!(bad.eval(&[]), None);
    }

    #[test]
    fn register_ref_display() {
        let r = RegisterRef { name: "q".into(), index: Some(2), line: 1, col: 1 };
        assert_eq!(r.to_string(), "q[2]");
        let r = RegisterRef { name: "q".into(), index: None, line: 1, col: 1 };
        assert_eq!(r.to_string(), "q");
    }

    #[test]
    fn pow_evaluates() {
        let e = Expr::Binary {
            op: BinOp::Pow,
            lhs: Box::new(Expr::Number(2.0)),
            rhs: Box::new(Expr::Number(10.0)),
        };
        assert_eq!(e.eval(&[]), Some(1024.0));
    }
}
