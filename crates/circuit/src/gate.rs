//! The gate set understood by the QPD toolchain.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of qubit operands a [`Gate`] accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arity {
    /// Exactly this many operands.
    Fixed(usize),
    /// At least this many operands (variadic gates such as
    /// [`Gate::Mcx`] and [`Gate::Barrier`]).
    AtLeast(usize),
}

impl Arity {
    /// Whether `count` operands satisfy this arity.
    pub fn accepts(self, count: usize) -> bool {
        match self {
            Arity::Fixed(n) => count == n,
            Arity::AtLeast(n) => count >= n,
        }
    }
}

impl fmt::Display for Arity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arity::Fixed(n) => write!(f, "exactly {n}"),
            Arity::AtLeast(n) => write!(f, "at least {n}"),
        }
    }
}

/// A quantum gate (or non-unitary operation).
///
/// The set covers the OpenQASM 2.0 `qelib1.inc` standard library plus the
/// multi-controlled NOT ([`Gate::Mcx`]) produced by reversible-logic
/// synthesis. Parameterized variants carry their angles in radians.
///
/// Two-qubit controlled gates list the control(s) first and the target
/// last in their operand order; [`Gate::Mcx`] takes `n >= 1` controls
/// followed by one target.
///
/// ```
/// use qpd_circuit::{Arity, Gate};
///
/// assert_eq!(Gate::Cx.arity(), Arity::Fixed(2));
/// assert!(Gate::Mcx.arity().accepts(5));
/// assert!(Gate::Rz(0.5).is_unitary());
/// assert!(!Gate::Measure.is_unitary());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    /// Identity.
    I,
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate `S = sqrt(Z)`.
    S,
    /// Conjugate phase gate.
    Sdg,
    /// `T = sqrt(S)`.
    T,
    /// Conjugate T gate.
    Tdg,
    /// `sqrt(X)`.
    Sx,
    /// Conjugate `sqrt(X)`.
    Sxdg,
    /// Rotation about the X axis.
    Rx(f64),
    /// Rotation about the Y axis.
    Ry(f64),
    /// Rotation about the Z axis.
    Rz(f64),
    /// Phase rotation `diag(1, e^{i * lambda})` (QASM `u1`).
    P(f64),
    /// Generic single-qubit unitary `U(theta, phi, lambda)` (QASM `u3`).
    U(f64, f64, f64),
    /// Controlled-NOT (control, target).
    Cx,
    /// Controlled-Y.
    Cy,
    /// Controlled-Z.
    Cz,
    /// Controlled-Hadamard.
    Ch,
    /// Swap of two qubits.
    Swap,
    /// Controlled phase rotation (QASM `cu1`).
    Cp(f64),
    /// Controlled Z-rotation.
    Crz(f64),
    /// Controlled generic unitary (QASM `cu3`).
    Cu3(f64, f64, f64),
    /// Ising ZZ interaction `exp(-i theta/2 Z x Z)`.
    Rzz(f64),
    /// Toffoli (two controls, one target).
    Ccx,
    /// Controlled swap (Fredkin).
    Cswap,
    /// Multi-controlled NOT: `n >= 1` controls then one target.
    Mcx,
    /// Projective measurement in the computational basis.
    Measure,
    /// Reset to `|0>`.
    Reset,
    /// Scheduling barrier across its operands.
    Barrier,
}

impl Gate {
    /// Canonical lowercase name, matching the OpenQASM spelling where one
    /// exists.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::H => "h",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Sx => "sx",
            Gate::Sxdg => "sxdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::P(_) => "u1",
            Gate::U(..) => "u3",
            Gate::Cx => "cx",
            Gate::Cy => "cy",
            Gate::Cz => "cz",
            Gate::Ch => "ch",
            Gate::Swap => "swap",
            Gate::Cp(_) => "cu1",
            Gate::Crz(_) => "crz",
            Gate::Cu3(..) => "cu3",
            Gate::Rzz(_) => "rzz",
            Gate::Ccx => "ccx",
            Gate::Cswap => "cswap",
            Gate::Mcx => "mcx",
            Gate::Measure => "measure",
            Gate::Reset => "reset",
            Gate::Barrier => "barrier",
        }
    }

    /// How many qubit operands this gate takes.
    pub fn arity(&self) -> Arity {
        match self {
            Gate::I
            | Gate::H
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Sx
            | Gate::Sxdg
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::P(_)
            | Gate::U(..)
            | Gate::Measure
            | Gate::Reset => Arity::Fixed(1),
            Gate::Cx
            | Gate::Cy
            | Gate::Cz
            | Gate::Ch
            | Gate::Swap
            | Gate::Cp(_)
            | Gate::Crz(_)
            | Gate::Cu3(..)
            | Gate::Rzz(_) => Arity::Fixed(2),
            Gate::Ccx | Gate::Cswap => Arity::Fixed(3),
            Gate::Mcx => Arity::AtLeast(2),
            Gate::Barrier => Arity::AtLeast(1),
        }
    }

    /// Whether the gate implements a unitary transformation (as opposed to
    /// measurement, reset, or a barrier directive).
    pub fn is_unitary(&self) -> bool {
        !matches!(self, Gate::Measure | Gate::Reset | Gate::Barrier)
    }

    /// Whether the gate is a unitary acting on exactly two qubits.
    ///
    /// This is the class of gates that the architecture-design profiler
    /// cares about (paper §3): they require a physical qubit connection.
    pub fn is_two_qubit(&self) -> bool {
        self.is_unitary() && self.arity() == Arity::Fixed(2)
    }

    /// Whether the gate is a unitary on a single qubit.
    pub fn is_single_qubit(&self) -> bool {
        self.is_unitary() && self.arity() == Arity::Fixed(1)
    }

    /// The rotation/phase parameters carried by the gate, in radians.
    pub fn params(&self) -> Vec<f64> {
        match *self {
            Gate::Rx(a)
            | Gate::Ry(a)
            | Gate::Rz(a)
            | Gate::P(a)
            | Gate::Cp(a)
            | Gate::Crz(a)
            | Gate::Rzz(a) => vec![a],
            Gate::U(a, b, c) | Gate::Cu3(a, b, c) => vec![a, b, c],
            _ => Vec::new(),
        }
    }

    /// Whether the gate is already in the `{CX, single-qubit}` basis
    /// natively supported by the modeled hardware (paper §2.1).
    pub fn is_native(&self) -> bool {
        match self {
            Gate::Cx => true,
            g => g.is_single_qubit() || matches!(g, Gate::Measure | Gate::Reset | Gate::Barrier),
        }
    }

    /// The inverse (adjoint) gate, for unitary gates.
    ///
    /// Returns `None` for measurement and reset; barriers are their own
    /// inverse (they carry no unitary action).
    pub fn inverse(&self) -> Option<Gate> {
        Some(match *self {
            Gate::I => Gate::I,
            Gate::H => Gate::H,
            Gate::X => Gate::X,
            Gate::Y => Gate::Y,
            Gate::Z => Gate::Z,
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Sx => Gate::Sxdg,
            Gate::Sxdg => Gate::Sx,
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::P(l) => Gate::P(-l),
            // U(t, p, l)^dagger = U(-t, -l, -p).
            Gate::U(t, p, l) => Gate::U(-t, -l, -p),
            Gate::Cx => Gate::Cx,
            Gate::Cy => Gate::Cy,
            Gate::Cz => Gate::Cz,
            Gate::Ch => Gate::Ch,
            Gate::Swap => Gate::Swap,
            Gate::Cp(l) => Gate::Cp(-l),
            Gate::Crz(t) => Gate::Crz(-t),
            Gate::Cu3(t, p, l) => Gate::Cu3(-t, -l, -p),
            Gate::Rzz(t) => Gate::Rzz(-t),
            Gate::Ccx => Gate::Ccx,
            Gate::Cswap => Gate::Cswap,
            Gate::Mcx => Gate::Mcx,
            Gate::Barrier => Gate::Barrier,
            Gate::Measure | Gate::Reset => return None,
        })
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let rendered: Vec<String> = params.iter().map(|p| format!("{p}")).collect();
            write!(f, "{}({})", self.name(), rendered.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_accepts() {
        assert!(Arity::Fixed(2).accepts(2));
        assert!(!Arity::Fixed(2).accepts(3));
        assert!(Arity::AtLeast(2).accepts(2));
        assert!(Arity::AtLeast(2).accepts(9));
        assert!(!Arity::AtLeast(2).accepts(1));
    }

    #[test]
    fn two_qubit_classification() {
        assert!(Gate::Cx.is_two_qubit());
        assert!(Gate::Cz.is_two_qubit());
        assert!(Gate::Rzz(0.1).is_two_qubit());
        assert!(!Gate::Ccx.is_two_qubit());
        assert!(!Gate::H.is_two_qubit());
        assert!(!Gate::Barrier.is_two_qubit());
        assert!(!Gate::Measure.is_two_qubit());
    }

    #[test]
    fn native_basis() {
        assert!(Gate::Cx.is_native());
        assert!(Gate::U(0.1, 0.2, 0.3).is_native());
        assert!(Gate::Measure.is_native());
        assert!(!Gate::Cz.is_native());
        assert!(!Gate::Ccx.is_native());
        assert!(!Gate::Swap.is_native());
    }

    #[test]
    fn params_roundtrip() {
        assert_eq!(Gate::U(1.0, 2.0, 3.0).params(), vec![1.0, 2.0, 3.0]);
        assert_eq!(Gate::Rz(0.25).params(), vec![0.25]);
        assert!(Gate::Cx.params().is_empty());
    }

    #[test]
    fn display_includes_params() {
        assert_eq!(Gate::Cx.to_string(), "cx");
        assert_eq!(Gate::Rz(0.5).to_string(), "rz(0.5)");
    }

    #[test]
    fn inverses_pair_up() {
        assert_eq!(Gate::S.inverse(), Some(Gate::Sdg));
        assert_eq!(Gate::Sdg.inverse(), Some(Gate::S));
        assert_eq!(Gate::Rz(0.5).inverse(), Some(Gate::Rz(-0.5)));
        assert_eq!(Gate::U(1.0, 2.0, 3.0).inverse(), Some(Gate::U(-1.0, -3.0, -2.0)));
        assert_eq!(Gate::Cx.inverse(), Some(Gate::Cx));
        assert_eq!(Gate::Measure.inverse(), None);
        assert_eq!(Gate::Reset.inverse(), None);
    }

    #[test]
    fn names_are_qasm_spellings() {
        assert_eq!(Gate::P(0.1).name(), "u1");
        assert_eq!(Gate::U(0.1, 0.2, 0.3).name(), "u3");
        assert_eq!(Gate::Cp(0.1).name(), "cu1");
    }
}
