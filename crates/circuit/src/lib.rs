//! Quantum circuit intermediate representation and tooling.
//!
//! This crate is the circuit substrate of the QPD workspace. It provides:
//!
//! - a compact, validated circuit IR ([`Circuit`], [`Instruction`], [`Gate`],
//!   [`Qubit`]),
//! - an OpenQASM 2.0 lexer/parser/emitter ([`qasm`]),
//! - gate decomposition passes lowering arbitrary circuits to the
//!   `{CX, single-qubit}` basis used by IBM's superconducting devices
//!   ([`decompose`]),
//! - a gate dependency DAG used by routing algorithms ([`dag::GateDag`]),
//! - small simulators used to verify transformations ([`sim`]),
//! - seeded random circuit generation for tests and benchmarks ([`random`]).
//!
//! # Example
//!
//! ```
//! use qpd_circuit::{Circuit, Gate};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! assert_eq!(bell.two_qubit_gate_count(), 1);
//! let qasm = qpd_circuit::qasm::to_qasm(&bell)?;
//! let parsed = qpd_circuit::qasm::parse(&qasm)?;
//! assert_eq!(parsed.len(), bell.len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod circuit;
pub mod dag;
pub mod decompose;
pub mod error;
pub mod gate;
pub mod optimize;
pub mod qasm;
pub mod qubit;
pub mod random;
pub mod sim;

pub use circuit::{Circuit, Instruction};
pub use dag::GateDag;
pub use error::{CircuitError, QasmError};
pub use gate::{Arity, Gate};
pub use qubit::Qubit;
