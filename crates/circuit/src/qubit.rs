//! Logical qubit handles.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A logical qubit in a [`Circuit`](crate::Circuit), identified by its index.
///
/// `Qubit` is a zero-cost newtype over `u32`; it exists so that qubit
/// indices cannot be confused with gate counts, coordinates or other
/// integers flying around the design flow.
///
/// ```
/// use qpd_circuit::Qubit;
///
/// let q = Qubit::new(3);
/// assert_eq!(q.index(), 3);
/// assert_eq!(Qubit::from(3u32), q);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Qubit(u32);

impl Qubit {
    /// Creates a qubit handle for the given index.
    pub const fn new(index: u32) -> Self {
        Qubit(index)
    }

    /// The index of this qubit, usable to address vectors of per-qubit data.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for Qubit {
    fn from(index: u32) -> Self {
        Qubit(index)
    }
}

impl From<usize> for Qubit {
    /// Converts an index to a qubit handle.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`; circuits that large are not
    /// representable.
    fn from(index: usize) -> Self {
        Qubit(u32::try_from(index).expect("qubit index exceeds u32::MAX"))
    }
}

impl From<i32> for Qubit {
    /// Converts an index to a qubit handle, so that builder calls can use
    /// bare integer literals (`circuit.h(0)`).
    ///
    /// # Panics
    ///
    /// Panics if `index` is negative.
    fn from(index: i32) -> Self {
        Qubit(u32::try_from(index).expect("qubit index must be non-negative"))
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Qubit::new(7), Qubit::from(7u32));
        assert_eq!(Qubit::new(7), Qubit::from(7usize));
        assert_eq!(Qubit::new(7).index(), 7);
        assert_eq!(Qubit::new(7).raw(), 7);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Qubit::new(12).to_string(), "q12");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Qubit::new(1) < Qubit::new(2));
        assert_eq!(Qubit::default(), Qubit::new(0));
    }
}
