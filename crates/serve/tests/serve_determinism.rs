//! End-to-end byte-identity of daemon responses: the same request line
//! gets the same bytes back cold, warm, concurrently with other
//! clients, after a restart that warm-started from the cache sidecar,
//! and for every evaluation thread count — and a `design` response is
//! byte-identical to a direct in-process engine with no daemon at all.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

use qpd_explore::{sidecar, CandidateSpec, Checkpoint, ExploreSpace, Explorer, Json};
use qpd_serve::protocol::{self, Request};
use qpd_serve::{Client, Exchange, Server, ServerConfig};

const DESIGN: &str = r#"{"id":"d1","op":"design","benchmark":"cm152a_212"}"#;
const EXPLORE: &str = r#"{"id":"e1","op":"explore","benchmark":"cm152a_212","label":"det","config":{"walks":2,"rounds":2,"steps":1,"alloc_trials":40,"yield_trials":200},"stream":true}"#;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(
    out_dir: &Path,
    warm_start: Option<PathBuf>,
    eval_threads: Option<usize>,
    queue_cap: usize,
) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_cap,
        out_dir: out_dir.to_path_buf(),
        warm_start,
        eval_threads,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

fn shut_down(addr: SocketAddr, handle: JoinHandle<std::io::Result<()>>) {
    let mut client = Client::connect(addr).unwrap();
    client.request_raw(r#"{"id":"stop","op":"shutdown"}"#).unwrap();
    handle.join().unwrap().unwrap();
}

/// What the daemon should say for [`DESIGN`], computed with a fresh
/// cold in-process engine — no server, no shared caches.
fn direct_design_line() -> String {
    let req = protocol::parse_request(DESIGN).unwrap();
    let Request::Design { source, settings, .. } = req.body else { unreachable!() };
    let protocol::Source::Benchmark(name) = source else { unreachable!() };
    let circuit = qpd_benchmarks::build(&name).unwrap();
    let config = settings.to_config();
    let explorer = Explorer::new(ExploreSpace::new(circuit, config.max_aux), config).unwrap();
    let spec = CandidateSpec::eff_full(explorer.space().full_weighted_len());
    let line = protocol::ok_line(&req.id, explorer.evaluate(&spec).unwrap().to_json());
    line.trim_end().to_string()
}

#[test]
fn responses_are_byte_identical_cold_warm_concurrent_restart_and_threads() {
    let expected_design = direct_design_line();
    let mut per_thread_count: Vec<(Exchange, Exchange)> = Vec::new();
    for threads in [1usize, 2, 8] {
        let dir = tmp_dir(&format!("det_t{threads}"));
        let (addr, handle) = start(&dir, None, Some(threads), 8);
        let mut client = Client::connect(addr).unwrap();

        let design_cold = client.request_raw(DESIGN).unwrap();
        assert_eq!(design_cold.response, expected_design, "cold daemon vs direct engine");
        let explore_cold = client.request_raw(EXPLORE).unwrap();
        assert!(!explore_cold.events.is_empty(), "streamed explore emitted no round events");

        let design_warm = client.request_raw(DESIGN).unwrap();
        let explore_warm = client.request_raw(EXPLORE).unwrap();
        assert_eq!(design_warm, design_cold, "warm repeat changed design bytes");
        assert_eq!(explore_warm, explore_cold, "warm repeat changed explore bytes/events");

        // Four clients hammering the same two requests concurrently.
        let racers: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let line = if i % 2 == 0 { DESIGN } else { EXPLORE };
                    Client::connect(addr).unwrap().request_raw(line).unwrap()
                })
            })
            .collect();
        for (i, racer) in racers.into_iter().enumerate() {
            let got = racer.join().unwrap();
            let want = if i % 2 == 0 { &design_cold } else { &explore_cold };
            assert_eq!(&got, want, "concurrent client {i} observed different bytes");
        }

        shut_down(addr, handle);
        let sidecar_path = dir.join(sidecar::file_name("serve"));
        assert!(sidecar_path.exists(), "shutdown did not persist the cache sidecar");

        // Restart warm-started from the sidecar: same bytes again.
        let dir2 = tmp_dir(&format!("det_t{threads}_restart"));
        let (addr2, handle2) = start(&dir2, Some(sidecar_path), Some(threads), 8);
        let mut client2 = Client::connect(addr2).unwrap();
        assert_eq!(
            client2.request_raw(DESIGN).unwrap(),
            design_cold,
            "restarted daemon (warm sidecar) changed design bytes"
        );
        assert_eq!(
            client2.request_raw(EXPLORE).unwrap(),
            explore_cold,
            "restarted daemon (warm sidecar) changed explore bytes"
        );
        shut_down(addr2, handle2);

        per_thread_count.push((design_cold, explore_cold));
    }
    let (d1, e1) = &per_thread_count[0];
    for (i, (d, e)) in per_thread_count.iter().enumerate().skip(1) {
        assert_eq!(d, d1, "design bytes differ between thread counts (index {i})");
        assert_eq!(e, e1, "explore bytes differ between thread counts (index {i})");
    }
}

#[test]
fn shutdown_checkpoints_in_flight_explores() {
    let dir = tmp_dir("det_cut");
    let (addr, handle) = start(&dir, None, Some(2), 8);
    // Rounds no machine clears in 200 ms: the shutdown must land
    // mid-run. No explicit label, so the checkpoint keeps the
    // benchmark-named default and stays `explore_run --resume`-able.
    let long = r#"{"id":"cut","op":"explore","benchmark":"cm152a_212","config":{"walks":2,"rounds":200000,"steps":1,"alloc_trials":40,"yield_trials":200}}"#;
    let racer =
        std::thread::spawn(move || Client::connect(addr).unwrap().request_raw(long).unwrap());
    std::thread::sleep(std::time::Duration::from_millis(200));
    shut_down(addr, handle);
    let exchange = racer.join().unwrap();
    let response = Json::parse(&exchange.response).unwrap();
    let result = response.get("result").expect("in-flight explore still got a response");
    assert_eq!(result.get("truncated").and_then(Json::as_bool), Some(true));
    assert_eq!(result.get("reason").and_then(Json::as_str), Some("shutdown"));
    let path = result.get("checkpoint").and_then(Json::as_str).expect("checkpoint path");
    let checkpoint = Checkpoint::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
    assert_eq!(checkpoint.run, "cm152a_212", "default label keeps the checkpoint resumable");
    assert!(checkpoint.state.rounds_done < 200_000, "the run was not actually cut");
    assert!(!checkpoint.state.archive.is_empty(), "cut state lost its archive");
}

#[test]
fn admission_control_rejects_deterministically_and_control_ops_bypass() {
    // queue_cap 0: every design/explore is rejected with the exact
    // documented bytes; stats and shutdown still work.
    let dir = tmp_dir("det_admission");
    let (addr, handle) = start(&dir, None, Some(1), 0);
    let mut client = Client::connect(addr).unwrap();
    let reject =
        client.request_raw(r#"{"id":"b","op":"design","benchmark":"cm152a_212"}"#).unwrap();
    assert_eq!(format!("{}\n", reject.response), protocol::overloaded_line("b"));
    let stats = client.request_raw(r#"{"id":"s","op":"stats"}"#).unwrap();
    let doc = Json::parse(&stats.response).unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "stats blocked by full queue");
    let stages = doc.get("result").and_then(|r| r.get("stages")).expect("stage counters");
    assert!(matches!(stages, Json::Arr(v) if v.len() == 5), "expected all five stages");
    shut_down(addr, handle);
}

#[test]
fn wire_errors_are_final_and_the_connection_stays_usable() {
    let dir = tmp_dir("det_errors");
    let (addr, handle) = start(&dir, None, Some(1), 8);
    let mut client = Client::connect(addr).unwrap();
    for (line, code) in [
        (r#"{"id":"u","op":"design","benchmark":"no_such_bench"}"#, "unknown_benchmark"),
        (r#"{"id":"q","op":"design","qasm":"OPENQASM 9.9;"}"#, "bad_qasm"),
        (r#"{"id":"m","op":"warp"}"#, "bad_request"),
    ] {
        let exchange = client.request_raw(line).unwrap();
        let doc = Json::parse(&exchange.response).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false), "{line}");
        let got = doc.get("error").and_then(|e| e.get("code")).and_then(Json::as_str);
        assert_eq!(got, Some(code), "{line}");
    }
    // Malformed JSON: id is unrecoverable, echoed as null.
    let exchange = client.request_raw("{nope}").unwrap();
    assert_eq!(Json::parse(&exchange.response).unwrap().get("id"), Some(&Json::Null));
    // The same connection still serves real work afterwards.
    let ok = client.request_raw(DESIGN).unwrap();
    assert_eq!(Json::parse(&ok.response).unwrap().get("ok"), Some(&Json::Bool(true)));
    shut_down(addr, handle);
}

#[test]
fn budgets_truncate_at_round_barriers() {
    let dir = tmp_dir("det_budget");
    let (addr, handle) = start(&dir, None, Some(2), 8);
    let mut client = Client::connect(addr).unwrap();
    // max_rounds clamps before the run: deterministic, not truncation.
    let clamped = client
        .request_raw(
            r#"{"id":"mr","op":"explore","benchmark":"cm152a_212","label":"mr","config":{"walks":2,"rounds":9,"steps":1,"alloc_trials":40,"yield_trials":200},"budget":{"max_rounds":1}}"#,
        )
        .unwrap();
    let result = Json::parse(&clamped.response).unwrap();
    let result = result.get("result").expect("explore result");
    assert_eq!(result.get("rounds_done").and_then(Json::as_u64), Some(1));
    assert_eq!(result.get("truncated").and_then(Json::as_bool), Some(false));
    // max_candidates stops at a round barrier and says why. The initial
    // walk evaluations already archive >= 1 candidate, so the barrier
    // check trips before round one.
    let cut = client
        .request_raw(
            r#"{"id":"mc","op":"explore","benchmark":"cm152a_212","label":"mc","config":{"walks":2,"rounds":9,"steps":1,"alloc_trials":40,"yield_trials":200},"budget":{"max_candidates":1}}"#,
        )
        .unwrap();
    let result = Json::parse(&cut.response).unwrap();
    let result = result.get("result").expect("explore result");
    assert_eq!(result.get("truncated").and_then(Json::as_bool), Some(true));
    assert_eq!(result.get("reason").and_then(Json::as_str), Some("max_candidates"));
    assert_eq!(result.get("rounds_done").and_then(Json::as_u64), Some(0));
    shut_down(addr, handle);
}

#[test]
fn merge_op_adopts_shards_into_the_whole_run_checkpoint() {
    use qpd_explore::{ExploreConfig, ShardSpec};
    let dir = tmp_dir("merge_op");
    // Produce a 2-way sharded run in-process (the shardable config
    // shape: scalarized, no recombination, no cap) plus the whole-run
    // reference, and persist each shard with its cache sidecar exactly
    // as `explore_run --shard` does.
    let config = ExploreConfig {
        walks: 2,
        rounds: 2,
        steps_per_round: 1,
        alloc_trials: 40,
        yield_trials: 200,
        ..ExploreConfig::quick()
    }
    .v1_compat();
    let build = || {
        let circuit = qpd_benchmarks::build("cm152a_212").unwrap();
        Explorer::new(ExploreSpace::new(circuit, config.max_aux), config).unwrap()
    };
    let reference = Checkpoint {
        run: "cm152a_212".into(),
        config,
        state: build().run().unwrap(),
        stage_hit_rates: Vec::new(),
        shard: None,
    }
    .render();
    let mut shard_paths = Vec::new();
    for index in 0..2 {
        let engine = build();
        let shard = engine.run_shard(ShardSpec { index, of: 2 }).unwrap();
        let cp = Checkpoint::from_shard("cm152a_212", config, &shard, Vec::new());
        let path = cp.write(&dir).unwrap();
        let label = format!("cm152a_212_shard{index}of2");
        std::fs::write(dir.join(sidecar::file_name(&label)), sidecar::render(engine.caches()))
            .unwrap();
        shard_paths.push(path);
    }

    let out = tmp_dir("merge_op_out");
    let (addr, handle) = start(&out, None, Some(1), 16);
    let mut client = Client::connect(addr).unwrap();
    let line = format!(
        r#"{{"id":"m1","op":"merge","checkpoints":["{}","{}"]}}"#,
        shard_paths[0].display(),
        shard_paths[1].display()
    );
    let exchange = client.request_raw(&line).unwrap();
    let doc = Json::parse(&exchange.response).unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "{}", exchange.response);
    let result = doc.get("result").expect("merge result");
    assert_eq!(result.get("run").and_then(Json::as_str), Some("cm152a_212"));
    assert_eq!(result.get("shards").and_then(Json::as_u64), Some(2));
    assert!(
        result.get("warmed_routes").and_then(Json::as_u64).unwrap() > 0,
        "shard sidecars were not adopted: {}",
        exchange.response
    );
    let merged_path = result.get("checkpoint").and_then(Json::as_str).unwrap();
    assert_eq!(
        std::fs::read_to_string(merged_path).unwrap(),
        reference,
        "daemon merge diverged from the single-process run"
    );

    // An incomplete shard set is a bad_request, and the connection
    // stays usable.
    let partial =
        format!(r#"{{"id":"m2","op":"merge","checkpoints":["{}"]}}"#, shard_paths[0].display());
    let err = client.request_raw(&partial).unwrap();
    let doc = Json::parse(&err.response).unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        doc.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some("bad_request")
    );
    shut_down(addr, handle);
}
