//! The daemon: accept loop, bounded request queue, worker pool, and
//! the shared warm stage graph every request evaluates through.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use qpd_core::StagePlan;
use qpd_explore::{
    circuit_key, merge_checkpoints, sidecar, CandidateSpec, Checkpoint, ExploreConfig,
    ExploreSpace, ExploreState, Explorer, Json, StageCaches, DEFAULT_MEMO_CAP,
};

use crate::protocol::{
    self, err_line, ok_line, overloaded_line, round_event_line, Budget, EngineSettings, Request,
    Source, MAX_LINE_BYTES,
};

/// How the daemon is wired up.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Request workers — the bound on in-flight `design`/`explore`
    /// requests (each worker fans its evaluation out on the shared
    /// `qpd-par` pool, so this bounds admission, not parallelism).
    pub workers: usize,
    /// Queued-request bound; a request arriving with the queue full is
    /// rejected with the deterministic `overloaded` response.
    pub queue_cap: usize,
    /// Where shutdown checkpoints and the cache sidecar are written.
    pub out_dir: PathBuf,
    /// A `qpd_explore::sidecar` file to warm the shared caches from at
    /// boot (missing/malformed files degrade to a cold start).
    pub warm_start: Option<PathBuf>,
    /// Per-table entry bound of the shared stage caches.
    pub memo_cap: Option<usize>,
    /// Evaluation thread count pinned per request worker
    /// ([`qpd_par::with_threads`]); `None` follows `QPD_THREADS`. The
    /// determinism tests sweep this to prove responses don't depend on
    /// it.
    pub eval_threads: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 16,
            out_dir: PathBuf::from("."),
            warm_start: None,
            memo_cap: Some(DEFAULT_MEMO_CAP),
            eval_threads: None,
        }
    }
}

/// The label under which the daemon persists its own cache sidecar
/// (`EXPLORE_serve_caches.json`) on graceful shutdown.
pub const SIDECAR_LABEL: &str = "serve";

/// One queued unit of work.
struct Job {
    id: String,
    body: Request,
    out: Arc<Mutex<TcpStream>>,
}

/// State shared by the accept loop, readers, and workers.
struct Shared {
    config: ServerConfig,
    addr: SocketAddr,
    /// The upstream placement/bus/frequency/assembly caches every
    /// request's `DesignFlow` evaluates through.
    plan: Arc<StagePlan>,
    /// The downstream routing/yield caches.
    caches: Arc<StageCaches>,
    /// Engines reused across `design` requests, keyed by circuit +
    /// engine settings. Engines are pure given their key, so reuse
    /// changes construction cost only, never results.
    engines: Mutex<HashMap<u64, Arc<Explorer>>>,
    queue: Mutex<Vec<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Checkpoints written for shutdown-truncated explores.
    checkpointed: Mutex<Vec<PathBuf>>,
}

/// The daemon. [`Server::bind`] then [`Server::run`]; `run` returns
/// after a graceful `shutdown` request.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and builds the shared stage graph (cold; see
    /// [`ServerConfig::warm_start`]).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let memo_cap = config.memo_cap;
        let shared = Arc::new(Shared {
            config,
            addr,
            plan: Arc::new(StagePlan::with_cap(memo_cap)),
            caches: Arc::new(StageCaches::with_cap(memo_cap)),
            engines: Mutex::new(HashMap::new()),
            queue: Mutex::new(Vec::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            checkpointed: Mutex::new(Vec::new()),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (read the ephemeral port here).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serves until a `shutdown` request completes: accepts
    /// connections, spawns one reader per connection, and processes
    /// queued requests on the worker pool. On shutdown the queue is
    /// drained (in-flight explores are cut and checkpointed at their
    /// next round barrier) and the shared caches are persisted as
    /// `EXPLORE_serve_caches.json` under the output directory.
    ///
    /// # Errors
    ///
    /// Propagates socket and sidecar-write errors.
    pub fn run(self) -> std::io::Result<()> {
        let shared = &self.shared;
        if let Some(path) = &shared.config.warm_start {
            match sidecar::load(path, &shared.caches) {
                sidecar::SidecarLoad::Missing => {
                    eprintln!("qpd_serve: no warm-start sidecar at {}", path.display());
                }
                sidecar::SidecarLoad::Ignored(why) => {
                    eprintln!("qpd_serve: ignoring sidecar {} ({why})", path.display());
                }
                sidecar::SidecarLoad::Loaded { routes, yields } => {
                    eprintln!(
                        "qpd_serve: warm start — {routes} routing + {yields} yield entries \
                         from {}",
                        path.display()
                    );
                }
            }
        }
        let workers: Vec<_> = (0..shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        for conn in self.listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(conn) = conn else { continue };
            let shared = Arc::clone(shared);
            std::thread::spawn(move || read_connection(&shared, conn));
        }
        for w in workers {
            let _ = w.join();
        }
        std::fs::create_dir_all(&shared.config.out_dir)?;
        let sidecar_path = shared.config.out_dir.join(sidecar::file_name(SIDECAR_LABEL));
        std::fs::write(&sidecar_path, sidecar::render(&shared.caches))?;
        let checkpoints = shared.checkpointed.lock().expect("checkpoint list");
        eprintln!(
            "qpd_serve: shut down — caches persisted to {}, {} explore checkpoint(s) written",
            sidecar_path.display(),
            checkpoints.len()
        );
        Ok(())
    }
}

/// Reads newline-delimited requests off one connection until EOF, an
/// over-long line, or shutdown.
fn read_connection(shared: &Arc<Shared>, conn: TcpStream) {
    // Whole-line writes, nothing to coalesce: Nagle + delayed ACK
    // would add ~40 ms per request/response turn.
    let _ = conn.set_nodelay(true);
    let Ok(write_half) = conn.try_clone() else { return };
    let out = Arc::new(Mutex::new(write_half));
    let mut reader = BufReader::new(conn);
    loop {
        let mut line = String::new();
        // Bound the line before buffering it all: a peer streaming an
        // endless line must not grow memory past the protocol cap.
        let n = match (&mut reader).take(MAX_LINE_BYTES as u64 + 1).read_line(&mut line) {
            Ok(n) => n,
            Err(_) => return,
        };
        if n == 0 {
            return; // EOF
        }
        if n > MAX_LINE_BYTES {
            let reject =
                err_line(None, "bad_request", "request line exceeds the protocol size limit");
            let _ = out.lock().expect("writer").write_all(reject.as_bytes());
            return; // the rest of the stream is mid-line garbage
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            continue;
        }
        match protocol::parse_request(line) {
            Err(e) => {
                let reject = err_line(e.id.as_deref(), e.code, &e.message);
                let _ = out.lock().expect("writer").write_all(reject.as_bytes());
            }
            Ok(req) => dispatch(shared, req.id, req.body, &out),
        }
    }
}

/// Routes one parsed request: cheap control ops run inline on the
/// reader thread (the daemon stays observable and stoppable under
/// load); design/explore go through admission control onto the queue.
fn dispatch(shared: &Arc<Shared>, id: String, body: Request, out: &Arc<Mutex<TcpStream>>) {
    match body {
        Request::Stats => {
            let line = ok_line(&id, stats_result(shared));
            let _ = out.lock().expect("writer").write_all(line.as_bytes());
        }
        Request::Merge { checkpoints } => {
            let line = handle_merge(shared, &id, &checkpoints);
            let _ = out.lock().expect("writer").write_all(line.as_bytes());
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.available.notify_all();
            let line = ok_line(&id, Json::obj([("stopping", Json::Bool(true))]));
            let _ = out.lock().expect("writer").write_all(line.as_bytes());
            // Wake the blocking accept loop so it can observe the flag.
            let _ = TcpStream::connect(shared.addr);
        }
        body @ (Request::Design { .. } | Request::Explore { .. }) => {
            if shared.shutdown.load(Ordering::SeqCst) {
                let line = err_line(Some(&id), "shutting_down", "daemon is shutting down");
                let _ = out.lock().expect("writer").write_all(line.as_bytes());
                return;
            }
            let reject = {
                let mut queue = shared.queue.lock().expect("queue");
                if queue.len() >= shared.config.queue_cap {
                    true
                } else {
                    queue.push(Job { id: id.clone(), body, out: Arc::clone(out) });
                    false
                }
            };
            if reject {
                let line = overloaded_line(&id);
                let _ = out.lock().expect("writer").write_all(line.as_bytes());
            } else {
                shared.available.notify_one();
            }
        }
    }
}

/// One request worker: drains the queue; exits once shutdown is set
/// and the queue is empty (so queued work is answered, not dropped).
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue");
            loop {
                if let Some(job) = (!queue.is_empty()).then(|| queue.remove(0)) {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.available.wait(queue).expect("queue");
            }
        };
        let Some(job) = job else { return };
        let Job { id, body, out } = job;
        let handle = || match body {
            Request::Design { source, spec, settings } => {
                handle_design(shared, &id, &source, spec.as_ref(), settings, &out)
            }
            Request::Explore { source, label, config, budget, stream } => {
                handle_explore(shared, &id, &source, &label, config, budget, stream, &out)
            }
            Request::Merge { .. } | Request::Stats | Request::Shutdown => {
                unreachable!("handled inline")
            }
        };
        // A panicking evaluation (pathological QASM, degenerate spec)
        // must cost one error response, not one worker.
        let outcome = catch_unwind(AssertUnwindSafe(|| match shared.config.eval_threads {
            Some(n) => qpd_par::with_threads(n, handle),
            None => handle(),
        }));
        let line = match outcome {
            Ok(line) => line,
            Err(_) => err_line(Some(&id), "internal", "request handler panicked"),
        };
        let _ = out.lock().expect("writer").write_all(line.as_bytes());
    }
}

/// The inline `merge` control op: merges a complete set of shard
/// checkpoint files into the whole-run checkpoint in the daemon's
/// output directory, and adopts any shard cache sidecars sitting next
/// to the inputs into the shared warm caches (content-keyed, so
/// adoption can only turn future misses into hits, never change
/// results). Runs on the reader thread like `stats`: it is file IO
/// plus an archive re-insertion, never a design evaluation.
fn handle_merge(shared: &Shared, id: &str, files: &[String]) -> String {
    let mut inputs = Vec::with_capacity(files.len());
    for file in files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                return err_line(Some(id), "bad_request", &format!("cannot read {file}: {e}"))
            }
        };
        match Checkpoint::parse(&text) {
            Ok(cp) => inputs.push((PathBuf::from(file), cp)),
            Err(e) => return err_line(Some(id), "bad_request", &format!("{file}: {e}")),
        }
    }
    let checkpoints: Vec<Checkpoint> = inputs.iter().map(|(_, cp)| cp.clone()).collect();
    let merged = match merge_checkpoints(&checkpoints) {
        Ok(m) => m,
        Err(e) => return err_line(Some(id), "bad_request", &e.to_string()),
    };
    // Warm adoption: each shard process persisted its route/yield
    // caches as a sidecar next to its checkpoint; load whatever is
    // there into the daemon's shared tables.
    let (mut routes, mut yields) = (0u64, 0u64);
    for (path, cp) in &inputs {
        let Some(meta) = &cp.shard else { continue };
        let label = format!("{}_shard{}of{}", cp.run, meta.spec.index, meta.spec.of);
        let side = path
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .unwrap_or_else(|| std::path::Path::new("."))
            .join(sidecar::file_name(&label));
        if let sidecar::SidecarLoad::Loaded { routes: r, yields: y } =
            sidecar::load(&side, &shared.caches)
        {
            routes += r as u64;
            yields += y as u64;
        }
    }
    if let Err(e) = std::fs::create_dir_all(&shared.config.out_dir) {
        return err_line(Some(id), "internal", &format!("cannot create output directory: {e}"));
    }
    let path = match merged.write(&shared.config.out_dir) {
        Ok(p) => p,
        Err(e) => {
            return err_line(Some(id), "internal", &format!("cannot write merged checkpoint: {e}"))
        }
    };
    ok_line(
        id,
        Json::obj([
            ("run", Json::str(&merged.run)),
            ("shards", Json::int(files.len() as u64)),
            ("rounds_done", Json::int(merged.state.rounds_done as u64)),
            ("archive_len", Json::int(merged.state.archive.len() as u64)),
            ("front_len", Json::int(merged.state.front_indices().len() as u64)),
            ("warmed_routes", Json::int(routes)),
            ("warmed_yields", Json::int(yields)),
            ("checkpoint", Json::str(path.display().to_string())),
        ]),
    )
}

fn stats_result(shared: &Shared) -> Json {
    let mut stats = shared.plan.stats();
    stats.extend(shared.caches.stats());
    Json::obj([
        (
            "stages",
            Json::Arr(
                stats
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("stage", Json::str(s.kind.name())),
                            ("hits", Json::int(s.hits)),
                            ("misses", Json::int(s.misses)),
                            ("unique_misses", Json::int(s.unique_misses)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("engines", Json::int(shared.engines.lock().expect("engines").len() as u64)),
        ("queued", Json::int(shared.queue.lock().expect("queue").len() as u64)),
    ])
}

/// Builds the request's circuit, or the error line to send instead.
fn build_circuit(id: &str, source: &Source) -> Result<qpd_circuit::Circuit, String> {
    match source {
        Source::Benchmark(name) => qpd_benchmarks::build(name)
            .map_err(|e| err_line(Some(id), "unknown_benchmark", &e.to_string())),
        Source::Qasm(text) => qpd_circuit::qasm::parse(text)
            .map_err(|e| err_line(Some(id), "bad_qasm", &e.to_string())),
    }
}

/// An engine-identity key: every input that changes what a one-shot
/// evaluation computes (circuit content + engine settings).
fn engine_key(circuit: &qpd_circuit::Circuit, s: EngineSettings) -> u64 {
    let mut h = qpd_explore::cache::Fnv64::new();
    h.push(circuit_key(circuit));
    h.push(s.alloc_trials as u64);
    h.push(s.yield_trials);
    h.push(s.sigma_ghz.to_bits());
    h.push(s.seed);
    h.push(s.max_aux as u64);
    h.finish()
}

/// An engine sharing the server-wide stage graph, reused across design
/// requests with the same circuit and settings.
fn design_engine(
    shared: &Shared,
    circuit: qpd_circuit::Circuit,
    settings: EngineSettings,
) -> Result<Arc<Explorer>, qpd_explore::ExploreError> {
    let key = engine_key(&circuit, settings);
    if let Some(engine) = shared.engines.lock().expect("engines").get(&key) {
        return Ok(Arc::clone(engine));
    }
    // Built outside the lock (construction routes a baseline); if two
    // workers race, both build identical engines and the first insert
    // wins, so every request still observes one value per key.
    let config = settings.to_config();
    let space = ExploreSpace::new(circuit, config.max_aux);
    let engine = Arc::new(Explorer::with_shared(
        space,
        config,
        Arc::clone(&shared.plan),
        Arc::clone(&shared.caches),
    )?);
    let mut engines = shared.engines.lock().expect("engines");
    Ok(Arc::clone(engines.entry(key).or_insert(engine)))
}

fn handle_design(
    shared: &Shared,
    id: &str,
    source: &Source,
    spec: Option<&Json>,
    settings: EngineSettings,
    _out: &Arc<Mutex<TcpStream>>,
) -> String {
    let circuit = match build_circuit(id, source) {
        Ok(c) => c,
        Err(line) => return line,
    };
    let engine = match design_engine(shared, circuit, settings) {
        Ok(e) => e,
        Err(e) => return err_line(Some(id), "internal", &e.to_string()),
    };
    let spec = match spec {
        None => CandidateSpec::eff_full(engine.space().full_weighted_len()),
        Some(json) => match CandidateSpec::from_json(json) {
            Some(spec) => spec,
            None => return err_line(Some(id), "bad_request", "malformed `spec`"),
        },
    };
    match engine.evaluate(&spec) {
        Ok(evaluated) => ok_line(id, evaluated.to_json()),
        Err(e) => err_line(Some(id), "internal", &e.to_string()),
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_explore(
    shared: &Shared,
    id: &str,
    source: &Source,
    label: &str,
    mut config: ExploreConfig,
    budget: Budget,
    stream: bool,
    out: &Arc<Mutex<TcpStream>>,
) -> String {
    let start = Instant::now();
    let circuit = match build_circuit(id, source) {
        Ok(c) => c,
        Err(line) => return line,
    };
    if let Some(max_rounds) = budget.max_rounds {
        config.rounds = config.rounds.min(max_rounds);
    }
    let space = ExploreSpace::new(circuit, config.max_aux);
    let run = || -> Result<(ExploreState, Option<&'static str>), qpd_explore::ExploreError> {
        let explorer = Explorer::with_shared(
            space,
            config,
            Arc::clone(&shared.plan),
            Arc::clone(&shared.caches),
        )?;
        let mut state = explorer.initial_state()?;
        let mut reason = None;
        while state.rounds_done < config.rounds {
            if shared.shutdown.load(Ordering::SeqCst) {
                reason = Some("shutdown");
                break;
            }
            if budget.max_candidates.is_some_and(|cap| state.archive.len() >= cap) {
                reason = Some("max_candidates");
                break;
            }
            if budget.deadline_ms.is_some_and(|ms| start.elapsed().as_millis() as u64 > ms) {
                reason = Some("deadline");
                break;
            }
            explorer.advance_round(&mut state)?;
            if stream {
                let event = round_event_line(
                    id,
                    state.rounds_done,
                    state.archive.len(),
                    state.front_indices().len(),
                );
                let _ = out.lock().expect("writer").write_all(event.as_bytes());
            }
        }
        Ok((state, reason))
    };
    let (state, reason) = match run() {
        Ok(v) => v,
        Err(e) => return err_line(Some(id), "internal", &e.to_string()),
    };
    // A shutdown cut is checkpointed exactly like an interrupted
    // `explore_run`: resumable via `explore_run --resume`.
    let mut checkpoint_path = None;
    if reason == Some("shutdown") {
        let cp = Checkpoint {
            run: label.to_string(),
            config,
            state: state.clone(),
            stage_hit_rates: Vec::new(),
            shard: None,
        };
        if std::fs::create_dir_all(&shared.config.out_dir).is_ok() {
            if let Ok(path) = cp.write(&shared.config.out_dir) {
                shared.checkpointed.lock().expect("checkpoint list").push(path.clone());
                checkpoint_path = Some(path);
            }
        }
    }
    let mut result = vec![
        ("rounds_done", Json::int(state.rounds_done as u64)),
        ("truncated", Json::Bool(reason.is_some())),
    ];
    if let Some(reason) = reason {
        result.push(("reason", Json::str(reason)));
    }
    result.push(("archive_len", Json::int(state.archive.len() as u64)));
    result.push(("front", Json::Arr(state.front().iter().map(|e| e.to_json()).collect())));
    if let Some(path) = checkpoint_path {
        result.push(("checkpoint", Json::str(path.display().to_string())));
    }
    ok_line(id, Json::obj(result))
}
