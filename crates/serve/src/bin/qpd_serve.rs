//! The resident design-service daemon.
//!
//! ```text
//! qpd_serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!           [--out-dir DIR] [--warm-start PATH] [--memo-cap N]
//! ```
//!
//! Binds the address (default `127.0.0.1:7878`; port `0` picks an
//! ephemeral one, printed at boot), optionally warm-starts the shared
//! route/yield caches from an `EXPLORE_*_caches.json` sidecar, and
//! serves the newline-delimited JSON protocol documented on
//! [`qpd_serve`] until a `shutdown` request. Evaluation fans out on
//! the `qpd-par` pool (`QPD_THREADS` to override); `--workers` bounds
//! concurrent *requests*, not threads.

use std::path::PathBuf;
use std::process::ExitCode;

use qpd_serve::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: qpd_serve [--addr HOST:PORT] [--workers N] [--queue-cap N] \
         [--out-dir DIR] [--warm-start PATH] [--memo-cap N]"
    );
    std::process::exit(2)
}

fn parse_args() -> ServerConfig {
    let mut config = ServerConfig { addr: "127.0.0.1:7878".into(), ..ServerConfig::default() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| usage_missing(flag));
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => {
                config.workers = parse_num(&value("--workers"), "--workers").max(1);
            }
            "--queue-cap" => config.queue_cap = parse_num(&value("--queue-cap"), "--queue-cap"),
            "--out-dir" => config.out_dir = PathBuf::from(value("--out-dir")),
            "--warm-start" => config.warm_start = Some(PathBuf::from(value("--warm-start"))),
            "--memo-cap" => {
                let cap: usize = parse_num(&value("--memo-cap"), "--memo-cap");
                config.memo_cap = (cap != 0).then_some(cap);
            }
            _ => usage(),
        }
    }
    config
}

fn usage_missing(flag: &str) -> ! {
    eprintln!("qpd_serve: {flag} needs a value");
    usage()
}

fn parse_num(text: &str, flag: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("qpd_serve: {flag} expects a number, got {text:?}");
        usage()
    })
}

fn main() -> ExitCode {
    let config = parse_args();
    let workers = config.workers;
    let queue_cap = config.queue_cap;
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("qpd_serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "qpd_serve: listening on {} — {workers} request worker(s), queue cap {queue_cap}, \
         {} evaluation thread(s)",
        server.local_addr(),
        qpd_par::threads(),
    );
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("qpd_serve: {e}");
            ExitCode::FAILURE
        }
    }
}
