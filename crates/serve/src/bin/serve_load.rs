//! Deterministic load generator for `qpd_serve`.
//!
//! ```text
//! serve_load --addr HOST:PORT [--seed N] [--requests N] [--check]
//! serve_load --addr HOST:PORT --shutdown-test DIR
//! serve_load --addr HOST:PORT --shutdown
//! ```
//!
//! The default mode drives a seeded mix of requests drawn from a fixed
//! menu — cold designs, warm repeats, duplicate ids, small explores
//! (streamed and not) — and asserts that every repeat of a request
//! line gets back byte-identical lines. With `--check` it additionally
//! recomputes each design response in-process (a fresh cold engine, no
//! daemon) and asserts the daemon's bytes match: the shared warm caches
//! changed how fast the answer came, not what it was.
//!
//! `--shutdown-test DIR` starts a long explore, shuts the daemon down
//! mid-run, and asserts the cut run reports `"reason":"shutdown"` with
//! a checkpoint under `DIR` that the v3 checkpoint parser accepts.
//! `--shutdown` just asks the daemon to stop.

use std::process::ExitCode;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use qpd_explore::{CandidateSpec, Checkpoint, ExploreSpace, Explorer, Json};
use qpd_serve::protocol::{self, Request};
use qpd_serve::{Client, Exchange};

struct Args {
    addr: String,
    seed: u64,
    requests: usize,
    check: bool,
    shutdown: bool,
    shutdown_test: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_load --addr HOST:PORT [--seed N] [--requests N] [--check] \
         [--shutdown | --shutdown-test DIR]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: String::new(),
        seed: 7,
        requests: 12,
        check: false,
        shutdown: false,
        shutdown_test: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => out.addr = value(),
            "--seed" => out.seed = value().parse().unwrap_or_else(|_| usage()),
            "--requests" => out.requests = value().parse().unwrap_or_else(|_| usage()),
            "--check" => out.check = true,
            "--shutdown" => out.shutdown = true,
            "--shutdown-test" => out.shutdown_test = Some(value()),
            _ => usage(),
        }
    }
    if out.addr.is_empty() {
        usage()
    }
    out
}

/// The fixed request menu. Ids are menu positions, so a repeated draw
/// reproduces the request line byte for byte — which is exactly what
/// lets the generator assert response byte-identity.
fn menu() -> Vec<String> {
    let small_config = Json::obj([
        ("walks", Json::int(2)),
        ("rounds", Json::int(1)),
        ("steps", Json::int(1)),
        ("alloc_trials", Json::int(40)),
        ("yield_trials", Json::int(200)),
    ]);
    let entries = vec![
        Json::obj([("op", Json::str("design")), ("benchmark", Json::str("cm152a_212"))]),
        Json::obj([("op", Json::str("design")), ("benchmark", Json::str("sym6_145"))]),
        Json::obj([("op", Json::str("design")), ("benchmark", Json::str("z4_268"))]),
        Json::obj([
            ("op", Json::str("design")),
            ("benchmark", Json::str("cm152a_212")),
            ("settings", Json::obj([("seed", Json::int(11))])),
        ]),
        Json::obj([
            ("op", Json::str("explore")),
            ("benchmark", Json::str("cm152a_212")),
            ("label", Json::str("load-a")),
            ("config", small_config.clone()),
        ]),
        Json::obj([
            ("op", Json::str("explore")),
            ("benchmark", Json::str("sym6_145")),
            ("label", Json::str("load-b")),
            ("config", small_config),
            ("stream", Json::Bool(true)),
        ]),
    ];
    entries
        .into_iter()
        .enumerate()
        .map(|(i, body)| {
            let mut pairs = vec![("id".to_string(), Json::str(format!("m{i}")))];
            let Json::Obj(rest) = body else { unreachable!() };
            pairs.extend(rest);
            Json::Obj(pairs).render_compact()
        })
        .collect()
}

/// Recomputes a design response with a fresh in-process engine — no
/// daemon, no shared caches — for the `--check` cross-validation.
fn expected_design_line(line: &str) -> String {
    let req = protocol::parse_request(line).expect("menu line parses");
    let Request::Design { source, spec, settings } = req.body else {
        panic!("expected a design line, got {line}");
    };
    let protocol::Source::Benchmark(name) = source else {
        panic!("menu designs are benchmark-sourced");
    };
    assert_eq!(spec, None, "menu designs use the default spec");
    let circuit = qpd_benchmarks::build(&name).expect("menu benchmark exists");
    let config = settings.to_config();
    let explorer =
        Explorer::new(ExploreSpace::new(circuit, config.max_aux), config).expect("engine builds");
    let spec = CandidateSpec::eff_full(explorer.space().full_weighted_len());
    let evaluated = explorer.evaluate(&spec).expect("design evaluates");
    let with_newline = protocol::ok_line(&req.id, evaluated.to_json());
    with_newline.trim_end().to_string()
}

fn run_mix(args: &Args) -> std::io::Result<()> {
    let menu = menu();
    let mut client = Client::connect(&args.addr)?;
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let mut first: Vec<Option<Exchange>> = vec![None; menu.len()];
    let mut repeats = 0usize;
    for n in 0..args.requests {
        let idx = rng.gen_range(0..menu.len());
        let exchange = client.request(&Json::parse(&menu[idx]).expect("menu renders valid"))?;
        let response = Json::parse(&exchange.response).expect("response parses");
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {n} (menu {idx}) failed: {}",
            exchange.response
        );
        match &first[idx] {
            None => first[idx] = Some(exchange),
            Some(seen) => {
                repeats += 1;
                assert_eq!(
                    seen, &exchange,
                    "menu {idx}: repeat served different bytes than the first serving"
                );
            }
        }
    }
    if args.check {
        for (idx, exchange) in first.iter().enumerate() {
            let Some(exchange) = exchange else { continue };
            if !menu[idx].contains("\"design\"") {
                continue;
            }
            assert_eq!(
                exchange.response,
                expected_design_line(&menu[idx]),
                "menu {idx}: daemon bytes differ from a cold in-process engine"
            );
        }
    }
    let stats = client.request_raw(r#"{"id":"load-stats","op":"stats"}"#)?;
    println!(
        "serve_load: {} requests ({repeats} byte-identical repeats{}) — stats: {}",
        args.requests,
        if args.check { ", designs cross-checked in-process" } else { "" },
        stats.response
    );
    Ok(())
}

/// Cuts a long explore with a shutdown and verifies the daemon left a
/// parseable, resumable checkpoint behind.
fn run_shutdown_test(addr: &str, out_dir: &str) -> std::io::Result<()> {
    // A round budget no machine clears before the shutdown lands (the
    // run must still be in flight so the cut truncates it mid-run), and
    // no explicit label so the checkpoint keeps the benchmark-named
    // default — the form `explore_run --resume` can pick back up.
    let line = r#"{"id":"cut","op":"explore","benchmark":"cm152a_212","config":{"walks":2,"rounds":200000,"steps":1,"alloc_trials":40,"yield_trials":200}}"#;
    let addr_owned = addr.to_string();
    let explorer = std::thread::spawn(move || -> std::io::Result<Exchange> {
        Client::connect(&addr_owned)?.request_raw(line)
    });
    std::thread::sleep(std::time::Duration::from_millis(300));
    let shutdown = Client::connect(addr)?.request_raw(r#"{"id":"stop","op":"shutdown"}"#)?;
    println!("serve_load: shutdown acknowledged: {}", shutdown.response);
    let exchange = explorer.join().expect("explore thread")?;
    let response = Json::parse(&exchange.response).expect("explore response parses");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true), "{}", exchange.response);
    let result = response.get("result").expect("result");
    assert_eq!(result.get("truncated").and_then(Json::as_bool), Some(true), "not truncated");
    assert_eq!(
        result.get("reason").and_then(Json::as_str),
        Some("shutdown"),
        "wrong truncation reason: {}",
        exchange.response
    );
    let path = result.get("checkpoint").and_then(Json::as_str).expect("checkpoint path");
    let text = std::fs::read_to_string(path)?;
    let checkpoint = Checkpoint::parse(&text).expect("checkpoint parses");
    assert_eq!(checkpoint.run, "cm152a_212", "default label keeps the checkpoint resumable");
    assert!(checkpoint.state.rounds_done < 200_000, "run was not actually cut");
    let sidecar = std::path::Path::new(out_dir).join(qpd_explore::sidecar::file_name("serve"));
    println!(
        "serve_load: shutdown checkpoint OK ({path}, {} rounds, {} archived); sidecar at {}",
        checkpoint.state.rounds_done,
        checkpoint.state.archive.len(),
        sidecar.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    let outcome = if let Some(dir) = &args.shutdown_test {
        run_shutdown_test(&args.addr, dir)
    } else if args.shutdown {
        Client::connect(&args.addr)
            .and_then(|mut c| c.request_raw(r#"{"id":"stop","op":"shutdown"}"#))
            .map(|ex| println!("serve_load: {}", ex.response))
    } else {
        run_mix(&args)
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve_load: {e}");
            ExitCode::FAILURE
        }
    }
}
