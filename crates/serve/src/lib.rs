//! `qpd-serve`: the resident design-service daemon.
//!
//! The paper's flow is a batch pipeline, but the stage graph underneath
//! it (`qpd-core`'s [`qpd_core::StagePlan`] plus `qpd-explore`'s
//! downstream [`qpd_explore::StageCaches`]) is content-keyed and
//! `Arc`-shared — exactly the shape of a long-running server. This
//! crate wraps it in one: a std-only TCP daemon that multiplexes every
//! request onto **one** shared stage plan and the `qpd-par` worker
//! pool, so the second request for any placement, bus order, frequency
//! plan, routing, or yield estimate is a cache hit no matter which
//! client — or which circuit — paid for it first (BENCH_5 measured
//! that cold→warm gap at 128 ms → 8.7 µs per evaluation).
//!
//! Results are pure functions of request content: the same request
//! yields byte-identical responses whether served cold, warm,
//! concurrently with other clients, or after a daemon restart that
//! warm-started from a cache sidecar. Shared caches change *when* work
//! happens, never what any request observes.
//!
//! # Wire protocol
//!
//! Newline-delimited JSON over TCP, one document per line (at most
//! [`protocol::MAX_LINE_BYTES`] bytes; [`qpd_explore::Json`] compact
//! rendering — parsing is depth-bounded, NaN/Inf-free, and
//! adversarial-input tested, since these bytes come off a socket).
//! Every request carries a client-chosen `id`, echoed on every line
//! the server emits for it. Responses for concurrent requests may
//! interleave on a shared connection; lines for one request never do.
//!
//! ## Requests
//!
//! ```text
//! {"id":ID, "op":"design",  SOURCE, "spec":SPEC?, "settings":SETTINGS?}
//! {"id":ID, "op":"explore", SOURCE, "label":NAME?, "config":CONFIG?,
//!                           "budget":BUDGET?, "stream":BOOL?}
//! {"id":ID, "op":"merge",   "checkpoints":[PATH, ...]}
//! {"id":ID, "op":"stats"}
//! {"id":ID, "op":"shutdown"}
//! ```
//!
//! `SOURCE` is either `"benchmark":"sym6_145"` (a name
//! [`qpd_benchmarks::build`] knows) or `"qasm":"OPENQASM 2.0; ..."`
//! (inline program text). The five design knobs ride in `SPEC` —
//! `bus`, `frequency`, `aux`, `placement`, `hardware` — in exactly the
//! checkpoint encoding of [`qpd_explore::CandidateSpec`]; omitting
//! `spec` designs the paper's `eff-full` configuration. `SETTINGS`
//! tunes the engine (`alloc_trials`, `yield_trials`, `sigma_ghz`,
//! `seed`, `max_aux`), defaulting to the explorer defaults. `CONFIG`
//! takes the same keys as a checkpoint config (`walks`, `rounds`,
//! `steps`, `acceptance`, `hardware`, `fine_recombine`, …) over
//! [`qpd_explore::ExploreConfig::quick`] defaults.
//!
//! `merge` adopts shard results produced by `explore_run --shard`
//! (see [`qpd_explore::merge`]): the named shard checkpoint files are
//! merged into the whole-run checkpoint — byte-identical to a
//! single-process run — written to the daemon's output directory, and
//! any shard cache sidecars sitting next to the inputs are loaded into
//! the shared warm caches (content-keyed, so adoption can only turn
//! future misses into hits). The result reports `{"run", "shards",
//! "rounds_done", "archive_len", "front_len", "warmed_routes",
//! "warmed_yields", "checkpoint"}`. Like `stats`/`shutdown` it runs
//! inline, bypassing the work queue, so adopting finished shard work
//! stays possible under full evaluation load.
//!
//! ## Budgets
//!
//! `BUDGET` bounds one explore request:
//! `{"max_rounds":N?, "max_candidates":N?, "deadline_ms":N?}`.
//! `max_rounds` clamps the configured round budget before the run
//! starts (deterministic). `max_candidates` and `deadline_ms` are
//! honored **at round barriers**: the run stops early once the archive
//! holds that many evaluated candidates or the wall clock passes the
//! deadline, finishing the round in flight first. A truncated response
//! carries `"truncated":true` plus a `"reason"` — deadline truncation
//! depends on wall-clock timing, so only untruncated responses are
//! byte-reproducible, and the response says honestly which one it is.
//!
//! ## Responses and events
//!
//! ```text
//! {"id":ID, "ok":true,  "result":RESULT}
//! {"id":ID, "ok":false, "error":{"code":CODE, "message":TEXT}}
//! {"id":ID, "event":"round", "round":N, "archive":N, "front":N}
//! ```
//!
//! A request produces zero or more `event` lines (explore with
//! `"stream":true` emits one per completed round) followed by exactly
//! one response line. Design results are the evaluated candidate in
//! checkpoint encoding ([`qpd_explore::Evaluated`]); explore results
//! are `{"rounds_done", "truncated", "reason"?, "archive_len",
//! "front":[Evaluated…], "checkpoint"?}` (no raw evaluation counter —
//! shared-cache traffic is scheduling-dependent, and every response
//! field must be byte-reproducible); stats results
//! expose the per-stage cache counters (`hits`/`misses`/
//! `unique_misses` per stage, pipeline order) for multi-tenant
//! cache-pressure visibility.
//!
//! Error codes: `bad_request` (malformed JSON or fields),
//! `unknown_benchmark`, `bad_qasm`, `overloaded` (admission control —
//! see below), `shutting_down` (work arriving after a `shutdown`), and
//! `internal` (an evaluation failed). All are final; the connection
//! stays usable.
//!
//! ## Admission control
//!
//! The daemon runs a fixed pool of request workers (bounded in-flight
//! work) over a bounded queue. A `design`/`explore` request arriving
//! with the queue full is rejected *immediately* with the
//! deterministic `overloaded` error — it never blocks the connection
//! and never evicts queued work. `stats` and `shutdown` bypass the
//! queue so the daemon stays observable and stoppable under load.
//!
//! ## Shutdown, checkpointing, warm start
//!
//! `shutdown` stops the accept loop and drains the queue. In-flight
//! explore runs observe the shutdown at their next round barrier and
//! are cut exactly as `explore_run` cuts a round: the partial state is
//! written through the v3 checkpoint writer to
//! `EXPLORE_<label>.json` in the daemon's output directory — resumable
//! with `explore_run --resume` when the label names a benchmark, which
//! the default label (the benchmark name) always does — and the
//! response reports
//! `"truncated":true, "reason":"shutdown"` plus the checkpoint path.
//! Before exiting, the daemon persists its shared route/yield caches
//! to the [`qpd_explore::sidecar`] format (`EXPLORE_serve_caches.json`);
//! booting with `--warm-start <path>` loads such a sidecar so a
//! restarted daemon serves its first requests at warm-cache latency.

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, Exchange};
pub use protocol::{Budget, EngineSettings, ParsedRequest, Request, Source, MAX_LINE_BYTES};
pub use server::{Server, ServerConfig};
