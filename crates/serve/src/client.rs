//! A minimal blocking client for the daemon's line protocol, used by
//! the load generator, the benches, and the integration tests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use qpd_explore::Json;

use crate::protocol::MAX_LINE_BYTES;

/// Everything the server emitted for one request: zero or more
/// streamed event lines, then the final response line. All lines keep
/// their exact wire bytes minus the trailing newline, so callers can
/// assert byte-identity directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exchange {
    /// `"event"` lines, arrival order.
    pub events: Vec<String>,
    /// The single `"ok"` response line.
    pub response: String,
}

/// One blocking connection to a daemon.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // One-line request/response traffic stalls ~40 ms per turn
        // under Nagle + delayed ACK; this protocol always writes whole
        // lines, so there is nothing for Nagle to coalesce.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { writer, reader: BufReader::new(stream) })
    }

    /// Sends one already-rendered request line (the trailing newline is
    /// added here) without waiting for the response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<()> {
        debug_assert!(!line.contains('\n'), "protocol lines must be single-line");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Reads the next protocol line (without its newline), or `None`
    /// at EOF.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; an over-long line from the server is
    /// reported as [`std::io::ErrorKind::InvalidData`].
    pub fn read_line(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        let n = (&mut self.reader).take(MAX_LINE_BYTES as u64 + 1).read_line(&mut line)?;
        if n == 0 {
            return Ok(None);
        }
        if n > MAX_LINE_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "server line exceeds the protocol size limit",
            ));
        }
        while line.ends_with(['\r', '\n']) {
            line.pop();
        }
        Ok(Some(line))
    }

    /// Sends one request and collects its event lines until the final
    /// response arrives. Suitable for the one-request-at-a-time clients
    /// in this workspace; interleaving multiple ids on one connection
    /// needs a demultiplexing reader instead.
    ///
    /// # Errors
    ///
    /// Socket errors, an unparsable server line, or EOF before the
    /// response all surface as [`std::io::Error`].
    pub fn request_raw(&mut self, line: &str) -> std::io::Result<Exchange> {
        self.send_raw(line)?;
        let mut events = Vec::new();
        loop {
            let Some(line) = self.read_line()? else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before the response line",
                ));
            };
            let doc = Json::parse(&line).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unparsable server line: {e}"),
                )
            })?;
            if doc.get("ok").is_some() {
                return Ok(Exchange { events, response: line });
            }
            events.push(line);
        }
    }

    /// Renders `doc` compactly and performs [`Client::request_raw`].
    ///
    /// # Errors
    ///
    /// See [`Client::request_raw`].
    pub fn request(&mut self, doc: &Json) -> std::io::Result<Exchange> {
        self.request_raw(&doc.render_compact())
    }
}
