//! Request/response grammar: parsing untrusted request lines into typed
//! requests, and rendering the deterministic response/event lines.
//!
//! See the crate docs for the full wire grammar. Everything here is
//! pure — no sockets — so the grammar is unit-testable and the server
//! and the load generator share one implementation.

use qpd_explore::{AcceptanceMode, ExploreConfig, HardwareSweep, Json};

/// Upper bound on one request line, in bytes. A line longer than this
/// is rejected (`bad_request`) and the connection closed: the parser
/// behind it is depth-bounded but a multi-gigabyte single line would
/// still have to be buffered before parsing.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Where the circuit of a request comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// A named benchmark (`qpd_benchmarks::build`).
    Benchmark(String),
    /// Inline OpenQASM 2.0 program text.
    Qasm(String),
}

/// Engine knobs of a `design` request (the explore-config subset that
/// affects a single evaluation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineSettings {
    /// Monte Carlo trials inside frequency allocation.
    pub alloc_trials: usize,
    /// Monte Carlo trials per yield estimate.
    pub yield_trials: u64,
    /// Fabrication precision in GHz.
    pub sigma_ghz: f64,
    /// Allocation and yield simulation seed.
    pub seed: u64,
    /// Largest auxiliary-qubit count in scope.
    pub max_aux: usize,
}

impl Default for EngineSettings {
    fn default() -> Self {
        let c = ExploreConfig::default();
        EngineSettings {
            alloc_trials: c.alloc_trials,
            yield_trials: c.yield_trials,
            sigma_ghz: c.sigma_ghz,
            seed: c.seed,
            max_aux: c.max_aux,
        }
    }
}

impl EngineSettings {
    /// The explore config a one-shot design evaluation runs under.
    pub fn to_config(self) -> ExploreConfig {
        ExploreConfig {
            alloc_trials: self.alloc_trials,
            yield_trials: self.yield_trials,
            sigma_ghz: self.sigma_ghz,
            seed: self.seed,
            max_aux: self.max_aux,
            ..ExploreConfig::default()
        }
    }
}

/// Per-request bounds of an `explore` request, all optional.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Clamp on the configured round budget (applied before the run).
    pub max_rounds: Option<usize>,
    /// Stop at the next round barrier once the archive holds this many
    /// evaluated candidates.
    pub max_candidates: Option<usize>,
    /// Wall-clock deadline, honored at round barriers.
    pub deadline_ms: Option<u64>,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRequest {
    /// Client-chosen correlation id, echoed on every emitted line.
    pub id: String,
    /// What the client asked for.
    pub body: Request,
}

/// The operations the daemon serves.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Evaluate one candidate spec end to end.
    Design {
        /// The circuit to design for.
        source: Source,
        /// The candidate's five knobs, checkpoint encoding; `None`
        /// designs the paper's eff-full configuration.
        spec: Option<Json>,
        /// Engine knobs.
        settings: EngineSettings,
    },
    /// Run a (budgeted) exploration.
    Explore {
        /// The circuit to explore for.
        source: Source,
        /// Checkpoint label (`EXPLORE_<label>.json` on shutdown).
        label: String,
        /// Full engine configuration.
        config: ExploreConfig,
        /// Request bounds.
        budget: Budget,
        /// Emit one `round` event line per completed round.
        stream: bool,
    },
    /// Adopt shard results: merge a complete set of shard-tagged
    /// checkpoint files into the whole-run checkpoint (written to the
    /// daemon's output directory) and warm the shared caches from any
    /// shard sidecars sitting next to the inputs.
    Merge {
        /// Paths of the shard checkpoint files, as the operator's
        /// filesystem sees them (the daemon is a localhost tool).
        checkpoints: Vec<String>,
    },
    /// Per-stage cache counters.
    Stats,
    /// Graceful shutdown: checkpoint in-flight explores, persist the
    /// cache sidecar, exit.
    Shutdown,
}

/// A request that failed to parse: the error body to send back, plus
/// the request id when one was recoverable from the line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// The id to echo (`None` renders as JSON `null`).
    pub id: Option<String>,
    /// Machine-readable code (`bad_request` here).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

fn bad(id: Option<String>, message: impl Into<String>) -> RequestError {
    RequestError { id, code: "bad_request", message: message.into() }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns the deterministic error body to send back when the line is
/// not a valid request.
pub fn parse_request(line: &str) -> Result<ParsedRequest, RequestError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(bad(None, format!("request line exceeds {MAX_LINE_BYTES} bytes")));
    }
    let doc = Json::parse(line).map_err(|e| bad(None, format!("malformed JSON: {e}")))?;
    let id = doc.get("id").and_then(Json::as_str).map(str::to_string);
    let Some(id) = id else {
        return Err(bad(None, "missing string `id`"));
    };
    let with_id = |message: String| bad(Some(id.clone()), message);
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| with_id("missing string `op`".into()))?;
    let body = match op {
        "design" => Request::Design {
            source: parse_source(&doc).map_err(&with_id)?,
            spec: doc.get("spec").cloned(),
            settings: parse_settings(doc.get("settings")).map_err(&with_id)?,
        },
        "explore" => {
            let source = parse_source(&doc).map_err(&with_id)?;
            let label = match doc.get("label") {
                None => default_label(&source),
                Some(v) => {
                    let l = v.as_str().ok_or_else(|| with_id("`label` must be a string".into()))?;
                    if l.is_empty()
                        || !l.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
                    {
                        return Err(with_id(
                            "`label` must be non-empty [A-Za-z0-9_-] (it names a file)".into(),
                        ));
                    }
                    l.to_string()
                }
            };
            Request::Explore {
                source,
                label,
                config: parse_config(doc.get("config")).map_err(&with_id)?,
                budget: parse_budget(doc.get("budget")).map_err(&with_id)?,
                stream: match doc.get("stream") {
                    None => false,
                    Some(v) => {
                        v.as_bool().ok_or_else(|| with_id("`stream` must be a boolean".into()))?
                    }
                },
            }
        }
        "merge" => {
            let arr = doc
                .get("checkpoints")
                .and_then(Json::as_arr)
                .ok_or_else(|| with_id("`checkpoints` must be an array of file paths".into()))?;
            if arr.is_empty() {
                return Err(with_id("`checkpoints` must name at least one shard file".into()));
            }
            let mut checkpoints = Vec::with_capacity(arr.len());
            for v in arr {
                let path = v
                    .as_str()
                    .ok_or_else(|| with_id("`checkpoints` entries must be strings".into()))?;
                checkpoints.push(path.to_string());
            }
            Request::Merge { checkpoints }
        }
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        other => return Err(with_id(format!("unknown op `{other}`"))),
    };
    Ok(ParsedRequest { id, body })
}

/// The checkpoint label an unlabeled explore gets: the benchmark name
/// when the source is a named benchmark, `"qasm"` otherwise (both are
/// filesystem-safe by construction).
fn default_label(source: &Source) -> String {
    match source {
        Source::Benchmark(name) => name.clone(),
        Source::Qasm(_) => "qasm".to_string(),
    }
}

fn parse_source(doc: &Json) -> Result<Source, String> {
    match (doc.get("benchmark"), doc.get("qasm")) {
        (Some(name), None) => {
            Ok(Source::Benchmark(name.as_str().ok_or("`benchmark` must be a string")?.to_string()))
        }
        (None, Some(text)) => {
            Ok(Source::Qasm(text.as_str().ok_or("`qasm` must be a string")?.to_string()))
        }
        (Some(_), Some(_)) => Err("give `benchmark` or `qasm`, not both".into()),
        (None, None) => Err("missing circuit source: `benchmark` or `qasm`".into()),
    }
}

fn get_usize(doc: &Json, key: &str, into: &mut usize) -> Result<(), String> {
    if let Some(v) = doc.get(key) {
        *into =
            v.as_u64().ok_or_else(|| format!("`{key}` must be a non-negative integer"))? as usize;
    }
    Ok(())
}

fn get_u64(doc: &Json, key: &str, into: &mut u64) -> Result<(), String> {
    if let Some(v) = doc.get(key) {
        *into = v.as_u64().ok_or_else(|| format!("`{key}` must be a non-negative integer"))?;
    }
    Ok(())
}

fn get_f64(doc: &Json, key: &str, into: &mut f64) -> Result<(), String> {
    if let Some(v) = doc.get(key) {
        *into = v.as_f64().ok_or_else(|| format!("`{key}` must be a number"))?;
    }
    Ok(())
}

fn get_bool(doc: &Json, key: &str, into: &mut bool) -> Result<(), String> {
    if let Some(v) = doc.get(key) {
        *into = v.as_bool().ok_or_else(|| format!("`{key}` must be a boolean"))?;
    }
    Ok(())
}

fn parse_settings(json: Option<&Json>) -> Result<EngineSettings, String> {
    let mut s = EngineSettings::default();
    let Some(doc) = json else {
        return Ok(s);
    };
    get_usize(doc, "alloc_trials", &mut s.alloc_trials)?;
    get_u64(doc, "yield_trials", &mut s.yield_trials)?;
    get_f64(doc, "sigma_ghz", &mut s.sigma_ghz)?;
    get_u64(doc, "seed", &mut s.seed)?;
    get_usize(doc, "max_aux", &mut s.max_aux)?;
    if s.alloc_trials == 0 || s.yield_trials == 0 {
        return Err("`alloc_trials` and `yield_trials` must be positive".into());
    }
    Ok(s)
}

/// Parses an explore config over [`ExploreConfig::quick`] defaults
/// (small budgets suit a shared daemon; every field can be raised
/// explicitly). Keys match the checkpoint config encoding, plus
/// `steps` as an alias for `steps_per_round`.
fn parse_config(json: Option<&Json>) -> Result<ExploreConfig, String> {
    let mut c = ExploreConfig::quick();
    let Some(doc) = json else {
        return Ok(c);
    };
    get_usize(doc, "walks", &mut c.walks)?;
    get_usize(doc, "rounds", &mut c.rounds)?;
    get_usize(doc, "steps", &mut c.steps_per_round)?;
    get_usize(doc, "steps_per_round", &mut c.steps_per_round)?;
    get_u64(doc, "seed", &mut c.seed)?;
    get_usize(doc, "max_aux", &mut c.max_aux)?;
    get_usize(doc, "alloc_trials", &mut c.alloc_trials)?;
    get_u64(doc, "yield_trials", &mut c.yield_trials)?;
    get_f64(doc, "sigma_ghz", &mut c.sigma_ghz)?;
    get_f64(doc, "initial_temperature", &mut c.initial_temperature)?;
    get_f64(doc, "cooling", &mut c.cooling)?;
    get_bool(doc, "recombine", &mut c.recombine)?;
    get_bool(doc, "fine_recombine", &mut c.fine_recombine)?;
    get_u64(doc, "screen_divisor", &mut c.screen_divisor)?;
    get_f64(doc, "epsilon", &mut c.epsilon)?;
    if let Some(tag) = doc.get("acceptance") {
        let tag = tag.as_str().ok_or("`acceptance` must be a string")?;
        c.acceptance = AcceptanceMode::from_str_tag(tag)
            .ok_or_else(|| format!("unknown acceptance mode `{tag}`"))?;
    }
    if let Some(tag) = doc.get("hardware") {
        let tag = tag.as_str().ok_or("`hardware` must be a string")?;
        c.hardware =
            HardwareSweep::parse(tag).ok_or_else(|| format!("unknown hardware family `{tag}`"))?;
    }
    if let Some(v) = doc.get("archive_cap") {
        let cap = v.as_u64().ok_or("`archive_cap` must be a non-negative integer")? as usize;
        c.archive_cap = (cap > 0).then_some(cap);
    }
    if c.walks == 0 || c.alloc_trials == 0 || c.yield_trials == 0 || c.screen_divisor == 0 {
        return Err(
            "`walks`, `alloc_trials`, `yield_trials`, `screen_divisor` must be positive".into()
        );
    }
    Ok(c)
}

fn parse_budget(json: Option<&Json>) -> Result<Budget, String> {
    let mut b = Budget::default();
    let Some(doc) = json else {
        return Ok(b);
    };
    for (key, slot) in
        [("max_rounds", &mut b.max_rounds), ("max_candidates", &mut b.max_candidates)]
    {
        if let Some(v) = doc.get(key) {
            *slot =
                Some(v.as_u64().ok_or_else(|| format!("`{key}` must be a non-negative integer"))?
                    as usize);
        }
    }
    if let Some(v) = doc.get("deadline_ms") {
        b.deadline_ms = Some(v.as_u64().ok_or("`deadline_ms` must be a non-negative integer")?);
    }
    Ok(b)
}

// ---- emission ----

/// Renders a success response line (newline included).
pub fn ok_line(id: &str, result: Json) -> String {
    let mut line = Json::obj([("id", Json::str(id)), ("ok", Json::Bool(true)), ("result", result)])
        .render_compact();
    line.push('\n');
    line
}

/// Renders an error response line (newline included). `id` of `None`
/// renders as JSON `null` (the line that failed to parse far enough to
/// recover one).
pub fn err_line(id: Option<&str>, code: &str, message: &str) -> String {
    let id_value = match id {
        Some(id) => Json::str(id),
        None => Json::Null,
    };
    let mut line = Json::obj([
        ("id", id_value),
        ("ok", Json::Bool(false)),
        ("error", Json::obj([("code", Json::str(code)), ("message", Json::str(message))])),
    ])
    .render_compact();
    line.push('\n');
    line
}

/// The deterministic admission-control reject line for request `id`.
pub fn overloaded_line(id: &str) -> String {
    err_line(Some(id), "overloaded", "request queue full; retry later")
}

/// Renders a per-round progress event line (newline included).
pub fn round_event_line(id: &str, round: usize, archive: usize, front: usize) -> String {
    let mut line = Json::obj([
        ("id", Json::str(id)),
        ("event", Json::str("round")),
        ("round", Json::int(round as u64)),
        ("archive", Json::int(archive as u64)),
        ("front", Json::int(front as u64)),
    ])
    .render_compact();
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_request_parses_with_defaults() {
        let line = r#"{"id":"r1","op":"design","benchmark":"sym6_145"}"#;
        let req = parse_request(line).unwrap();
        assert_eq!(req.id, "r1");
        match req.body {
            Request::Design { source, spec, settings } => {
                assert_eq!(source, Source::Benchmark("sym6_145".into()));
                assert!(spec.is_none());
                assert_eq!(settings, EngineSettings::default());
            }
            other => panic!("wrong body: {other:?}"),
        }
    }

    #[test]
    fn explore_request_parses_config_and_budget() {
        let line = r#"{"id":"e1","op":"explore","benchmark":"sym6_145","label":"smoke",
            "config":{"rounds":5,"seed":9,"hardware":"all","fine_recombine":true},
            "budget":{"max_rounds":2,"deadline_ms":1000},"stream":true}"#;
        let req = parse_request(line).unwrap();
        match req.body {
            Request::Explore { label, config, budget, stream, .. } => {
                assert_eq!(label, "smoke");
                assert_eq!(config.rounds, 5);
                assert_eq!(config.seed, 9);
                assert_eq!(config.hardware, HardwareSweep::All);
                assert!(config.fine_recombine);
                assert_eq!(config.walks, ExploreConfig::quick().walks, "quick defaults");
                assert_eq!(budget.max_rounds, Some(2));
                assert_eq!(budget.deadline_ms, Some(1000));
                assert!(stream);
            }
            other => panic!("wrong body: {other:?}"),
        }
    }

    #[test]
    fn explore_label_defaults_to_the_benchmark_and_rejects_path_chars() {
        let req = parse_request(r#"{"id":"e","op":"explore","benchmark":"sym6_145"}"#).unwrap();
        match req.body {
            Request::Explore { label, .. } => assert_eq!(label, "sym6_145"),
            other => panic!("wrong body: {other:?}"),
        }
        let err = parse_request(r#"{"id":"e","op":"explore","benchmark":"x","label":"../x"}"#)
            .unwrap_err();
        assert_eq!(err.code, "bad_request");
        assert_eq!(err.id.as_deref(), Some("e"));
    }

    #[test]
    fn merge_request_parses_paths_and_rejects_junk() {
        let req =
            parse_request(r#"{"id":"m","op":"merge","checkpoints":["a.json","b.json"]}"#).unwrap();
        assert_eq!(
            req.body,
            Request::Merge { checkpoints: vec!["a.json".into(), "b.json".into()] }
        );
        for (line, needle) in [
            (r#"{"id":"m","op":"merge"}"#, "array"),
            (r#"{"id":"m","op":"merge","checkpoints":[]}"#, "at least one"),
            (r#"{"id":"m","op":"merge","checkpoints":[7]}"#, "strings"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.id.as_deref(), Some("m"), "{line}");
            assert!(err.message.contains(needle), "{line}: {}", err.message);
        }
    }

    #[test]
    fn bad_lines_produce_deterministic_rejects() {
        // Unparseable: no id recoverable.
        let err = parse_request("{nope").unwrap_err();
        assert_eq!(err.id, None);
        // Parseable but wrong: id echoed.
        for (line, needle) in [
            (r#"{"id":"x"}"#, "op"),
            (r#"{"id":"x","op":"launch"}"#, "unknown op"),
            (r#"{"id":"x","op":"design"}"#, "missing circuit source"),
            (r#"{"id":"x","op":"design","benchmark":"a","qasm":"b"}"#, "not both"),
            (
                r#"{"id":"x","op":"design","benchmark":"a","settings":{"alloc_trials":0}}"#,
                "positive",
            ),
            (r#"{"id":"x","op":"explore","benchmark":"a","config":{"walks":0}}"#, "positive"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.id.as_deref(), Some("x"), "{line}");
            assert!(err.message.contains(needle), "{line}: {}", err.message);
        }
        // Missing id entirely.
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap_err().id, None);
    }

    #[test]
    fn emitted_lines_are_single_line_and_parse_back() {
        for line in [
            ok_line("a", Json::obj([("n", Json::int(1))])),
            err_line(Some("a"), "bad_request", "broken\nnewline"),
            err_line(None, "bad_request", "no id"),
            overloaded_line("b"),
            round_event_line("c", 2, 10, 3),
        ] {
            assert!(line.ends_with('\n'));
            let body = &line[..line.len() - 1];
            assert!(!body.contains('\n'), "embedded newline in {body:?}");
            Json::parse(body).unwrap();
        }
        assert_eq!(
            overloaded_line("b"),
            "{\"id\":\"b\",\"ok\":false,\"error\":{\"code\":\"overloaded\",\"message\":\"request queue full; retry later\"}}\n"
        );
    }

    #[test]
    fn oversized_lines_rejected_before_parsing() {
        let huge = format!("{{\"id\":\"x\",\"pad\":\"{}\"}}", "a".repeat(MAX_LINE_BYTES));
        let err = parse_request(&huge).unwrap_err();
        assert!(err.message.contains("exceeds"));
    }
}
