//! The quantum Fourier transform workload.

use std::f64::consts::PI;

use qpd_circuit::Circuit;

/// An `n`-qubit QFT: a Hadamard on each qubit followed by controlled
/// phase rotations between every qubit pair (the final qubit-reversal
/// SWAP network is omitted, matching the evaluation benchmark: the paper
/// notes "the number of two-qubit gates between arbitrary two logical
/// qubits is always two in qft" — one `cu1` = two CNOTs, §5.4.2).
///
/// The circuit is returned at the `cu1` level; callers lower it with
/// [`qpd_circuit::decompose::decompose_to_native`].
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for i in 0..n {
        c.h(i as u32);
        for j in (i + 1)..n {
            let angle = PI / (1u64 << (j - i)) as f64;
            c.cp(angle, j as u32, i as u32);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpd_circuit::decompose::decompose_to_native;
    use qpd_circuit::sim::StateVector;
    use qpd_profile::CouplingProfile;

    #[test]
    fn pair_coupling_is_uniform_two() {
        let native = decompose_to_native(&qft(6)).unwrap();
        let profile = CouplingProfile::of(&native);
        for a in 0..6 {
            for b in (a + 1)..6 {
                assert_eq!(profile.strength(a, b), 2, "pair ({a}, {b})");
            }
        }
    }

    #[test]
    fn gate_counts() {
        let c = qft(16);
        // 16 H + C(16,2) controlled phases.
        assert_eq!(c.len(), 16 + 120);
        let native = decompose_to_native(&c).unwrap();
        assert_eq!(native.two_qubit_gate_count(), 240);
    }

    #[test]
    fn qft_of_zero_state_is_uniform() {
        let native = decompose_to_native(&qft(4)).unwrap();
        let sv = StateVector::from_circuit(&native).unwrap();
        let expected = 1.0 / 16.0;
        for idx in 0..16 {
            assert!((sv.probability(idx) - expected).abs() < 1e-9, "idx {idx}");
        }
    }

    #[test]
    fn qft_of_basis_state_has_correct_phases() {
        // QFT|1> amplitudes: (1/sqrt(N)) * exp(2 pi i k / N) in the
        // bit-reversed output order (we omit the swap network, so compare
        // against the swapless definition).
        let n = 3;
        let mut c = Circuit::new(n);
        c.x(0);
        c.compose(&qft(n)).unwrap();
        let native = decompose_to_native(&c).unwrap();
        let sv = StateVector::from_circuit(&native).unwrap();
        for idx in 0..8 {
            assert!((sv.probability(idx) - 1.0 / 8.0).abs() < 1e-9);
        }
    }
}
