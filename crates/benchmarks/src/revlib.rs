//! RevLib-style reversible-logic benchmarks.
//!
//! The paper's evaluation uses nine reversible circuits from RevLib
//! (via the SABRE benchmark set). The original gate-level dumps are not
//! redistributable here, so each benchmark is rebuilt *from its
//! function*: the same computation, the same line count, synthesized
//! with the standard techniques (PPRM/ESOP cube lists, ripple-carry
//! adders, controlled increments) those benchmarks were produced with.
//! See DESIGN.md §3 for the substitution rationale. Every functional
//! generator in this module is verified against a classical reference
//! in its tests.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qpd_circuit::Circuit;

use crate::arith::{cuccaro_adder, mux8, popcount_counter, vbe_adder};
use crate::esop::{Cube, EsopFunction};
use crate::pprm;

/// `sym6_145` (7 lines): the symmetric 6-input predicate
/// `popcount(x) in {2, 4}` xored onto the output line, synthesized via
/// PPRM. The weight set is chosen so no monomial needs all six inputs
/// (an ancilla-free 6-control Toffoli would not decompose on 7 lines).
pub fn sym6() -> Circuit {
    let truth: Vec<bool> = (0..64u32).map(|x| matches!(x.count_ones(), 2 | 4)).collect();
    pprm::synthesize(6, &[truth], 0)
}

/// `rd84_142` (15 lines): the 4-bit binary weight (popcount) of 8
/// inputs, computed by controlled increments into a counter register.
pub fn rd84() -> Circuit {
    popcount_counter(8, 4, 3)
}

/// `adr4_197` (13 lines): 4-bit VBE ripple-carry adder, `b <- a + b`.
pub fn adr4() -> Circuit {
    vbe_adder(4)
}

/// `radd_250` (13 lines): 5-bit Cuccaro ripple-carry adder (a different
/// synthesis of addition than [`adr4`], as in RevLib).
pub fn radd() -> Circuit {
    cuccaro_adder(5, 1)
}

/// `cm152a_212` (12 lines): an 8-to-1 multiplexer, `out ^= data[sel]`.
pub fn cm152a() -> Circuit {
    mux8()
}

/// `z4_268` (11 lines): 3-bit addition with carry-in — inputs
/// `a[3], b[3], cin`, outputs the 4 sum bits — synthesized via PPRM
/// (RevLib's `z4` is this adder as a PLA).
pub fn z4() -> Circuit {
    let n = 7;
    let eval = |x: u32| -> u32 {
        let a = x & 0b111;
        let b = (x >> 3) & 0b111;
        let cin = (x >> 6) & 1;
        a + b + cin
    };
    let outputs: Vec<Vec<bool>> =
        (0..4).map(|bit| (0..1u32 << n).map(|x| eval(x) >> bit & 1 == 1).collect()).collect();
    pprm::synthesize(n, &outputs, 0)
}

/// `dc1_220` (11 lines): a 4-bit to 7-segment display decoder (hex
/// digits), synthesized via PPRM.
pub fn dc1() -> Circuit {
    const SEGMENTS: [u32; 16] = [
        0x3f, 0x06, 0x5b, 0x4f, 0x66, 0x6d, 0x7d, 0x07, 0x7f, 0x6f, 0x77, 0x7c, 0x39, 0x5e, 0x79,
        0x71,
    ];
    let outputs: Vec<Vec<bool>> = (0..7)
        .map(|seg| (0..16u32).map(|x| SEGMENTS[x as usize] >> seg & 1 == 1).collect())
        .collect();
    pprm::synthesize(4, &outputs, 0)
}

/// `square_root_7` (15 lines): the 3-bit integer square root of a 6-bit
/// radicand, `out = floor(sqrt(x))`, synthesized via PPRM with six spare
/// lines (as the RevLib original carries).
pub fn square_root() -> Circuit {
    let n = 6;
    let isqrt = |x: u32| -> u32 { (x as f64).sqrt().floor() as u32 };
    let outputs: Vec<Vec<bool>> =
        (0..3).map(|bit| (0..1u32 << n).map(|x| isqrt(x) >> bit & 1 == 1).collect()).collect();
    pprm::synthesize(n, &outputs, 6)
}

/// The surrogate `misex1_241` PLA: 8 inputs, 7 outputs, a deterministic
/// seeded ESOP cube list with the size/shape statistics of the espresso
/// `misex1` benchmark family (tens of cubes, 2–5 literals each, mixed
/// polarity).
pub fn misex1_function() -> EsopFunction {
    let mut rng = ChaCha8Rng::seed_from_u64(0x6d69_7365_7831); // "misex1"
    let mut cubes = Vec::new();
    for _ in 0..56 {
        let literals = rng.gen_range(2..=5usize);
        let mut positive = 0u32;
        let mut negative = 0u32;
        let mut chosen = 0usize;
        while chosen < literals {
            let var = rng.gen_range(0..8u32);
            let mask = 1 << var;
            if (positive | negative) & mask != 0 {
                continue;
            }
            if rng.gen_bool(0.7) {
                positive |= mask;
            } else {
                negative |= mask;
            }
            chosen += 1;
        }
        // Each product feeds one or two of the seven outputs.
        let out_a = rng.gen_range(0..7u32);
        let mut outputs = 1 << out_a;
        if rng.gen_bool(0.3) {
            outputs |= 1 << rng.gen_range(0..7u32);
        }
        cubes.push(Cube { positive, negative, outputs });
    }
    EsopFunction { num_inputs: 8, num_outputs: 7, cubes }
}

/// `misex1_241` (15 lines): the synthesized surrogate PLA (see
/// [`misex1_function`]).
pub fn misex1() -> Circuit {
    misex1_function().synthesize(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpd_circuit::decompose::lower_mcx;
    use qpd_circuit::sim::apply_reversible;

    #[test]
    fn sym6_predicate_exhaustive() {
        let lowered = lower_mcx(&sym6()).unwrap();
        for x in 0..64u128 {
            let out = apply_reversible(&lowered, x).unwrap();
            let expected = matches!((x as u32).count_ones(), 2 | 4);
            assert_eq!(out >> 6 & 1 == 1, expected, "x={x:#b}");
            assert_eq!(out & 0x3f, x, "inputs preserved");
        }
    }

    #[test]
    fn sym6_has_seven_lines() {
        assert_eq!(sym6().num_qubits(), 7);
    }

    #[test]
    fn z4_adds_exhaustively() {
        let lowered = lower_mcx(&z4()).unwrap();
        assert_eq!(lowered.num_qubits(), 11);
        for x in 0..128u128 {
            let out = apply_reversible(&lowered, x).unwrap();
            let a = x & 7;
            let b = x >> 3 & 7;
            let cin = x >> 6 & 1;
            assert_eq!(out >> 7 & 0xf, a + b + cin, "{a}+{b}+{cin}");
            assert_eq!(out & 0x7f, x, "inputs preserved");
        }
    }

    #[test]
    fn dc1_decodes_exhaustively() {
        const SEGMENTS: [u128; 16] = [
            0x3f, 0x06, 0x5b, 0x4f, 0x66, 0x6d, 0x7d, 0x07, 0x7f, 0x6f, 0x77, 0x7c, 0x39, 0x5e,
            0x79, 0x71,
        ];
        let lowered = lower_mcx(&dc1()).unwrap();
        assert_eq!(lowered.num_qubits(), 11);
        for x in 0..16u128 {
            let out = apply_reversible(&lowered, x).unwrap();
            assert_eq!(out >> 4, SEGMENTS[x as usize], "digit {x}");
        }
    }

    #[test]
    fn square_root_exhaustive() {
        let lowered = lower_mcx(&square_root()).unwrap();
        assert_eq!(lowered.num_qubits(), 15);
        for x in 0..64u128 {
            let out = apply_reversible(&lowered, x).unwrap();
            let expected = (x as f64).sqrt().floor() as u128;
            assert_eq!(out >> 6 & 0x7, expected, "sqrt({x})");
            assert_eq!(out & 0x3f, x, "radicand preserved");
            assert_eq!(out >> 9, 0, "spare lines untouched");
        }
    }

    #[test]
    fn misex1_matches_its_cube_list() {
        let f = misex1_function();
        let lowered = lower_mcx(&misex1()).unwrap();
        assert_eq!(lowered.num_qubits(), 15);
        // Sampled inputs (exhaustive would be 256 * large circuit; a
        // spread of 32 inputs is plenty to catch synthesis bugs).
        for x in (0..256u32).step_by(8) {
            let out = apply_reversible(&lowered, x as u128).unwrap();
            for k in 0..7 {
                assert_eq!(out >> (8 + k) & 1 == 1, f.eval(k, x), "x={x} out{k}");
            }
            assert_eq!(out & 0xff, x as u128, "inputs preserved");
        }
    }

    #[test]
    fn misex1_is_deterministic() {
        assert_eq!(misex1_function(), misex1_function());
    }

    #[test]
    fn line_counts_match_the_paper() {
        assert_eq!(sym6().num_qubits(), 7);
        assert_eq!(rd84().num_qubits(), 15);
        assert_eq!(adr4().num_qubits(), 13);
        assert_eq!(radd().num_qubits(), 13);
        assert_eq!(cm152a().num_qubits(), 12);
        assert_eq!(z4().num_qubits(), 11);
        assert_eq!(dc1().num_qubits(), 11);
        assert_eq!(square_root().num_qubits(), 15);
        assert_eq!(misex1().num_qubits(), 15);
    }
}
