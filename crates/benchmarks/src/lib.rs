//! The quantum program workloads of the paper's evaluation (§5.1).
//!
//! Twelve benchmarks spanning simulation (UCCSD VQE ansatz, Ising
//! model), transforms (QFT), and reversible arithmetic/logic (RevLib
//! family), with the qubit counts of paper Figure 10. [`build`] returns
//! each circuit lowered to the native `{CX, single-qubit}` basis the
//! rest of the toolchain consumes.
//!
//! ```
//! let circuit = qpd_benchmarks::build("qft_16").unwrap();
//! assert_eq!(circuit.num_qubits(), 16);
//! assert!(circuit.iter().all(|inst| inst.gate().is_native()));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arith;
pub mod esop;
pub mod extra;
pub mod ising;
pub mod pprm;
pub mod qft;
pub mod revlib;
pub mod uccsd;

use std::error::Error;
use std::fmt;

use qpd_circuit::decompose::decompose_to_native;
use qpd_circuit::Circuit;

/// Application domain of a benchmark (paper Table of benchmarks spans
/// "several important domains, e.g., simulation, arithmetic").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Quantum simulation (VQE, Ising dynamics).
    Simulation,
    /// Reversible arithmetic (adders, counters, square root).
    Arithmetic,
    /// Combinational logic (PLAs, multiplexers, symmetric functions).
    Logic,
    /// Signal transforms (QFT).
    Transform,
}

/// Static description of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkSpec {
    /// Benchmark name as the paper spells it.
    pub name: &'static str,
    /// Logical qubit count.
    pub qubits: usize,
    /// Application domain.
    pub domain: Domain,
    /// One-line description.
    pub description: &'static str,
}

/// The twelve benchmarks of paper Figure 10, in the figure's order.
pub const ALL: [BenchmarkSpec; 12] = [
    BenchmarkSpec {
        name: "adr4_197",
        qubits: 13,
        domain: Domain::Arithmetic,
        description: "4-bit VBE ripple-carry adder (RevLib adr4)",
    },
    BenchmarkSpec {
        name: "rd84_142",
        qubits: 15,
        domain: Domain::Arithmetic,
        description: "8-input binary weight function (RevLib rd84)",
    },
    BenchmarkSpec {
        name: "misex1_241",
        qubits: 15,
        domain: Domain::Logic,
        description: "8-input 7-output PLA (RevLib misex1 surrogate)",
    },
    BenchmarkSpec {
        name: "square_root_7",
        qubits: 15,
        domain: Domain::Arithmetic,
        description: "6-bit integer square root (RevLib square_root)",
    },
    BenchmarkSpec {
        name: "radd_250",
        qubits: 13,
        domain: Domain::Arithmetic,
        description: "5-bit Cuccaro ripple-carry adder (RevLib radd)",
    },
    BenchmarkSpec {
        name: "cm152a_212",
        qubits: 12,
        domain: Domain::Logic,
        description: "8-to-1 multiplexer (RevLib cm152a)",
    },
    BenchmarkSpec {
        name: "dc1_220",
        qubits: 11,
        domain: Domain::Logic,
        description: "hex 7-segment display decoder (RevLib dc1)",
    },
    BenchmarkSpec {
        name: "z4_268",
        qubits: 11,
        domain: Domain::Arithmetic,
        description: "3-bit adder with carry-in as a PLA (RevLib z4)",
    },
    BenchmarkSpec {
        name: "sym6_145",
        qubits: 7,
        domain: Domain::Logic,
        description: "symmetric 6-input predicate (RevLib sym6)",
    },
    BenchmarkSpec {
        name: "UCCSD_ansatz_8",
        qubits: 8,
        domain: Domain::Simulation,
        description: "8-spin-orbital UCCSD VQE ansatz",
    },
    BenchmarkSpec {
        name: "ising_model_16",
        qubits: 16,
        domain: Domain::Simulation,
        description: "16-site Trotterized transverse-field Ising chain",
    },
    BenchmarkSpec {
        name: "qft_16",
        qubits: 16,
        domain: Domain::Transform,
        description: "16-qubit quantum Fourier transform",
    },
];

/// Error from the benchmark registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBenchmark {
    name: String,
}

impl UnknownBenchmark {
    /// The unrecognized name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for UnknownBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown benchmark `{}`; see qpd_benchmarks::ALL for choices", self.name)
    }
}

impl Error for UnknownBenchmark {}

/// Builds a benchmark by name, lowered to the native basis.
///
/// # Errors
///
/// Returns [`UnknownBenchmark`] for names outside [`ALL`].
pub fn build(name: &str) -> Result<Circuit, UnknownBenchmark> {
    let raw = build_raw(name)?;
    Ok(decompose_to_native(&raw).expect("benchmark generators leave spare ancilla lines"))
}

/// Builds a benchmark at its natural gate level (MCTs, controlled
/// phases, ZZ interactions) before decomposition — what the functional
/// tests simulate.
///
/// # Errors
///
/// Returns [`UnknownBenchmark`] for names outside [`ALL`].
pub fn build_raw(name: &str) -> Result<Circuit, UnknownBenchmark> {
    let mut circuit = match name {
        "adr4_197" => revlib::adr4(),
        "rd84_142" => revlib::rd84(),
        "misex1_241" => revlib::misex1(),
        "square_root_7" => revlib::square_root(),
        "radd_250" => revlib::radd(),
        "cm152a_212" => revlib::cm152a(),
        "dc1_220" => revlib::dc1(),
        "z4_268" => revlib::z4(),
        "sym6_145" => revlib::sym6(),
        "UCCSD_ansatz_8" => uccsd::uccsd_ansatz(8, 4),
        "ising_model_16" => return Ok(ising::ising_model(16, 13)),
        "qft_16" => return Ok(qft::qft(16)),
        other => return Err(UnknownBenchmark { name: other.to_string() }),
    };
    // Reversible benchmarks measure their registers at the end, as the
    // RevLib-derived QASM dumps do.
    circuit.measure_all();
    Ok(circuit)
}

/// The spec for a benchmark name.
pub fn spec(name: &str) -> Option<&'static BenchmarkSpec> {
    ALL.iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_builds_native() {
        for spec in &ALL {
            let circuit = build(spec.name).unwrap();
            assert_eq!(circuit.num_qubits(), spec.qubits, "{}", spec.name);
            assert!(
                circuit.iter().all(|i| i.gate().is_native()),
                "{} not fully lowered",
                spec.name
            );
            assert!(circuit.two_qubit_gate_count() > 0, "{} trivial", spec.name);
        }
    }

    #[test]
    fn unknown_name_errors() {
        let err = build("shor_2048").unwrap_err();
        assert_eq!(err.name(), "shor_2048");
        assert!(err.to_string().contains("shor_2048"));
    }

    #[test]
    fn spec_lookup() {
        assert_eq!(spec("qft_16").unwrap().qubits, 16);
        assert!(spec("nope").is_none());
    }

    #[test]
    fn gate_counts_are_in_plausible_ranges() {
        // Published sizes (SABRE benchmark set) give the expected order of
        // magnitude; our regenerated circuits should land within a small
        // factor. Wide bounds: catching pathological blowups/shrinkage.
        let expectations: &[(&str, usize, usize)] = &[
            ("qft_16", 200, 2_000),
            ("ising_model_16", 400, 2_000),
            ("UCCSD_ansatz_8", 1_000, 20_000),
            ("sym6_145", 800, 20_000),
            ("rd84_142", 200, 6_000),
            ("adr4_197", 50, 4_000),
            ("radd_250", 50, 4_000),
            ("cm152a_212", 300, 6_000),
            ("misex1_241", 1_000, 30_000),
            ("z4_268", 500, 30_000),
            ("dc1_220", 200, 20_000),
            ("square_root_7", 500, 30_000),
        ];
        for &(name, lo, hi) in expectations {
            let count = build(name).unwrap().gate_count();
            assert!((lo..=hi).contains(&count), "{name}: {count} gates outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn builds_are_deterministic() {
        for spec in &ALL {
            assert_eq!(build(spec.name).unwrap(), build(spec.name).unwrap(), "{}", spec.name);
        }
    }
}
