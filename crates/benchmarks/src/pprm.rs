//! Positive-polarity Reed–Muller (PPRM) synthesis of Boolean functions
//! into multi-controlled-Toffoli networks.
//!
//! Any Boolean function `f : {0,1}^n -> {0,1}` has a unique expansion
//! `f(x) = XOR over subsets S of a_S * AND_{i in S} x_i` with
//! coefficients given by the Möbius transform `a_S = XOR_{T subset of S}
//! f(T)`. Each monomial with `a_S = 1` becomes one MCT with controls `S`
//! targeting the output line — the classic ESOP/PPRM reversible
//! synthesis that RevLib's arithmetic benchmarks are built from.

use qpd_circuit::{Circuit, Gate, Qubit};

/// The PPRM (algebraic normal form) coefficients of a single-output
/// function given as a truth table over `n` inputs (`truth[x]` is `f(x)`
/// with input bit `i` of `x` = variable `i`).
///
/// Returns one `u32` mask per monomial with coefficient 1.
///
/// # Panics
///
/// Panics unless `truth.len() == 1 << n` with `n <= 20`.
pub fn pprm_monomials(n: usize, truth: &[bool]) -> Vec<u32> {
    assert!(n <= 20, "PPRM synthesis capped at 20 inputs");
    assert_eq!(truth.len(), 1usize << n, "truth table size mismatch");
    // In-place Möbius transform over the subset lattice.
    let mut a: Vec<bool> = truth.to_vec();
    for i in 0..n {
        let bit = 1usize << i;
        for x in 0..a.len() {
            if x & bit != 0 {
                a[x] ^= a[x ^ bit];
            }
        }
    }
    (0..a.len()).filter(|&s| a[s]).map(|s| s as u32).collect()
}

/// Evaluates a PPRM monomial list on input `x`.
pub fn eval_pprm(monomials: &[u32], x: u32) -> bool {
    monomials.iter().filter(|&&s| x & s == s).count() % 2 == 1
}

/// Synthesizes a multi-output function into an MCT network.
///
/// Lines `0..num_inputs` hold the inputs; line `num_inputs + k` receives
/// output `k` (xored onto it). `extra_lines` idle lines are appended —
/// RevLib circuits carry them, and the MCT decomposition borrows them as
/// dirty ancillas.
///
/// `outputs[k]` is the truth table of output `k`.
///
/// # Panics
///
/// Panics on truth-table size mismatches (see [`pprm_monomials`]).
pub fn synthesize(num_inputs: usize, outputs: &[Vec<bool>], extra_lines: usize) -> Circuit {
    let num_qubits = num_inputs + outputs.len() + extra_lines;
    let mut circuit = Circuit::new(num_qubits);
    for (k, truth) in outputs.iter().enumerate() {
        let target = Qubit::from(num_inputs + k);
        for mask in pprm_monomials(num_inputs, truth) {
            if mask == 0 {
                // Constant-1 coefficient: plain X on the output.
                circuit.push(Gate::X, &[target]).expect("valid");
                continue;
            }
            let mut operands: Vec<Qubit> =
                (0..num_inputs).filter(|i| mask >> i & 1 == 1).map(Qubit::from).collect();
            operands.push(target);
            let gate = match operands.len() {
                2 => Gate::Cx,
                3 => Gate::Ccx,
                _ => Gate::Mcx,
            };
            circuit.push(gate, &operands).expect("valid MCT");
        }
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpd_circuit::sim::apply_reversible;

    #[test]
    fn xor_function_is_linear() {
        // f = x0 xor x1: monomials {x0}, {x1}.
        let truth: Vec<bool> = (0..4u32).map(|x| (x.count_ones() % 2) == 1).collect();
        let mut monos = pprm_monomials(2, &truth);
        monos.sort_unstable();
        assert_eq!(monos, vec![0b01, 0b10]);
    }

    #[test]
    fn and_function_is_single_monomial() {
        let truth: Vec<bool> = (0..4u32).map(|x| x == 0b11).collect();
        assert_eq!(pprm_monomials(2, &truth), vec![0b11]);
    }

    #[test]
    fn or_has_three_monomials() {
        // x or y = x xor y xor xy.
        let truth: Vec<bool> = (0..4u32).map(|x| x != 0).collect();
        let mut monos = pprm_monomials(2, &truth);
        monos.sort_unstable();
        assert_eq!(monos, vec![0b01, 0b10, 0b11]);
    }

    #[test]
    fn constant_one() {
        let truth = vec![true, true];
        assert_eq!(pprm_monomials(1, &truth), vec![0]);
    }

    #[test]
    fn eval_matches_transform() {
        // Random-ish 4-input function; PPRM evaluation must reproduce it.
        let truth: Vec<bool> = (0..16u32).map(|x| (x * 7 + 3) % 5 < 2).collect();
        let monos = pprm_monomials(4, &truth);
        for x in 0..16u32 {
            assert_eq!(eval_pprm(&monos, x), truth[x as usize], "x={x}");
        }
    }

    #[test]
    fn synthesized_circuit_computes_function() {
        // Two outputs over 3 inputs: majority and parity.
        let majority: Vec<bool> = (0..8u32).map(|x| x.count_ones() >= 2).collect();
        let parity: Vec<bool> = (0..8u32).map(|x| x.count_ones() % 2 == 1).collect();
        let circuit = synthesize(3, &[majority.clone(), parity.clone()], 1);
        assert_eq!(circuit.num_qubits(), 6);
        for x in 0..8u128 {
            let out = apply_reversible(&circuit, x).unwrap();
            let maj_bit = out >> 3 & 1;
            let par_bit = out >> 4 & 1;
            assert_eq!(maj_bit == 1, majority[x as usize], "majority({x})");
            assert_eq!(par_bit == 1, parity[x as usize], "parity({x})");
            // Inputs preserved, spare line untouched.
            assert_eq!(out & 0b111, x);
            assert_eq!(out >> 5 & 1, 0);
        }
    }
}
