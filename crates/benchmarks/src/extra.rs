//! Extra workload generators beyond the paper's evaluation set, used by
//! examples and tests: GHZ state preparation, Bernstein–Vazirani, and a
//! QAOA MaxCut ansatz. Each has a distinctive coupling pattern (star,
//! hub, and problem-graph respectively) that exercises the design flow
//! differently from the twelve paper benchmarks.

use std::f64::consts::FRAC_PI_2;

use qpd_circuit::Circuit;

/// GHZ state preparation over `n` qubits: `H` then a CNOT chain.
/// Coupling pattern: a chain with unit weights.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ghz(n: usize) -> Circuit {
    assert!(n > 0, "need at least one qubit");
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q as u32, (q + 1) as u32);
    }
    c.measure_all();
    c
}

/// Bernstein–Vazirani for an `n`-bit hidden string (bit `i` of
/// `secret`): every set bit contributes one CNOT into the oracle qubit.
/// Coupling pattern: a star centered on the last qubit.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 64`.
pub fn bernstein_vazirani(n: usize, secret: u64) -> Circuit {
    assert!(n > 0 && n <= 64, "1..=64 data qubits");
    let mut c = Circuit::new(n + 1);
    let oracle = n as u32;
    // |-> on the oracle qubit, |+> on the data qubits.
    c.x(oracle).h(oracle);
    for q in 0..n as u32 {
        c.h(q);
    }
    for q in 0..n {
        if secret >> q & 1 == 1 {
            c.cx(q as u32, oracle);
        }
    }
    for q in 0..n as u32 {
        c.h(q);
    }
    for q in 0..n as u32 {
        c.measure(q);
    }
    c
}

/// A `p`-layer QAOA MaxCut ansatz over the given undirected edges.
/// Coupling pattern: exactly the problem graph, weighted by `2p` CNOTs
/// per edge after decomposition.
///
/// # Panics
///
/// Panics if an edge endpoint is `>= n`, an edge is a self-loop, or
/// `p == 0`.
pub fn qaoa_maxcut(n: usize, edges: &[(usize, usize)], p: usize) -> Circuit {
    assert!(p > 0, "need at least one layer");
    let mut c = Circuit::new(n);
    for q in 0..n as u32 {
        c.h(q);
    }
    for layer in 0..p {
        let gamma = 0.4 + 0.1 * layer as f64;
        let beta = FRAC_PI_2 * (layer as f64 + 1.0) / (p as f64 + 1.0);
        for &(a, b) in edges {
            assert!(a < n && b < n && a != b, "invalid edge ({a}, {b})");
            c.rzz(gamma, a as u32, b as u32);
        }
        for q in 0..n as u32 {
            c.rx(2.0 * beta, q);
        }
    }
    c.measure_all();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpd_circuit::decompose::decompose_to_native;
    use qpd_circuit::sim::StateVector;
    use qpd_profile::{patterns, CouplingProfile, PatternShape};

    #[test]
    fn ghz_prepares_the_ghz_state() {
        let mut c = ghz(4);
        // Strip measurements for simulation.
        let unitary: Circuit = {
            let mut u = Circuit::new(4);
            for inst in c.iter().filter(|i| i.gate().is_unitary()) {
                u.push_instruction(inst.clone()).unwrap();
            }
            u
        };
        let sv = StateVector::from_circuit(&unitary).unwrap();
        assert!((sv.probability(0b0000) - 0.5).abs() < 1e-9);
        assert!((sv.probability(0b1111) - 0.5).abs() < 1e-9);
        // And its coupling pattern is a chain.
        c.measure_all();
        let profile = CouplingProfile::of(&c);
        assert!(matches!(patterns::detect_shape(&profile), PatternShape::Chain(_)));
    }

    #[test]
    fn bv_measures_the_secret() {
        let secret = 0b1011u64;
        let c = bernstein_vazirani(4, secret);
        let unitary: Circuit = {
            let mut u = Circuit::new(5);
            for inst in c.iter().filter(|i| i.gate().is_unitary()) {
                u.push_instruction(inst.clone()).unwrap();
            }
            u
        };
        let sv = StateVector::from_circuit(&unitary).unwrap();
        // The data register collapses deterministically to the secret;
        // oracle qubit remains in |->: probability mass sits on
        // secret + oracle in {0, 1}.
        let p = sv.probability(secret as usize) + sv.probability(secret as usize | 1 << 4);
        assert!((p - 1.0).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn bv_coupling_is_a_star_on_the_oracle() {
        let c = bernstein_vazirani(6, 0b111111);
        let profile = CouplingProfile::of(&c);
        for q in 0..6 {
            assert_eq!(profile.strength(q, 6), 1);
        }
        assert_eq!(profile.degree(6), 6);
        assert!(!patterns::hubs(&profile).is_empty());
    }

    #[test]
    fn qaoa_couples_exactly_the_problem_graph() {
        let edges = [(0, 1), (1, 2), (2, 0), (2, 3)];
        let c = decompose_to_native(&qaoa_maxcut(4, &edges, 3)).unwrap();
        let profile = CouplingProfile::of(&c);
        for &(a, b) in &edges {
            assert_eq!(profile.strength(a, b), 6, "2 CNOTs x 3 layers per edge");
        }
        assert_eq!(profile.strength(0, 3), 0);
    }

    #[test]
    fn generators_validate_input() {
        assert!(std::panic::catch_unwind(|| ghz(0)).is_err());
        assert!(std::panic::catch_unwind(|| qaoa_maxcut(2, &[(0, 0)], 1)).is_err());
        assert!(std::panic::catch_unwind(|| qaoa_maxcut(2, &[(0, 1)], 0)).is_err());
        assert!(std::panic::catch_unwind(|| bernstein_vazirani(0, 0)).is_err());
    }
}
