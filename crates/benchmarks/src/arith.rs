//! Reversible arithmetic building blocks: ripple-carry adders, a
//! population counter, and a multiplexer — the circuit families behind
//! the RevLib arithmetic benchmarks.

use qpd_circuit::{Circuit, Gate, Qubit};

/// The VBE ripple-carry adder (Vedral–Barenco–Ekert 1996) on `n`-bit
/// operands: computes `b <- a + b` with `b` widened by one high bit.
///
/// Line layout: `a[0..n]`, then `b[0..n+1]` (little-endian, `b[n]`
/// receives the carry-out), then carry scratch `c[0..n]` restored to 0.
/// Total `3n + 1` lines — 13 for `n = 4`, matching RevLib's `adr4`.
pub fn vbe_adder(n: usize) -> Circuit {
    assert!(n >= 1, "adder needs at least 1 bit");
    let mut c = Circuit::new(3 * n + 1);
    let a = |i: usize| Qubit::from(i);
    let b = |i: usize| Qubit::from(n + i); // b[0..=n]
    let carry = |i: usize| Qubit::from(2 * n + 1 + i); // c[0..n]

    let maj_carry = |circ: &mut Circuit, ci: Qubit, ai: Qubit, bi: Qubit, co: Qubit| {
        circ.push(Gate::Ccx, &[ai, bi, co]).expect("valid");
        circ.push(Gate::Cx, &[ai, bi]).expect("valid");
        circ.push(Gate::Ccx, &[ci, bi, co]).expect("valid");
    };
    let maj_carry_inv = |circ: &mut Circuit, ci: Qubit, ai: Qubit, bi: Qubit, co: Qubit| {
        circ.push(Gate::Ccx, &[ci, bi, co]).expect("valid");
        circ.push(Gate::Cx, &[ai, bi]).expect("valid");
        circ.push(Gate::Ccx, &[ai, bi, co]).expect("valid");
    };
    let sum = |circ: &mut Circuit, ci: Qubit, ai: Qubit, bi: Qubit| {
        circ.push(Gate::Cx, &[ai, bi]).expect("valid");
        circ.push(Gate::Cx, &[ci, bi]).expect("valid");
    };

    for i in 0..n - 1 {
        maj_carry(&mut c, carry(i), a(i), b(i), carry(i + 1));
    }
    maj_carry(&mut c, carry(n - 1), a(n - 1), b(n - 1), b(n));
    c.cx(a(n - 1), b(n - 1));
    sum(&mut c, carry(n - 1), a(n - 1), b(n - 1));
    for i in (0..n - 1).rev() {
        maj_carry_inv(&mut c, carry(i), a(i), b(i), carry(i + 1));
        sum(&mut c, carry(i), a(i), b(i));
    }
    c
}

/// The Cuccaro ripple-carry adder (CDKM 2004) on `n`-bit operands:
/// computes `b <- a + b` in place.
///
/// Line layout: `cin`, then `b[0..n]`, then `a[0..n]`, then `cout`, then
/// `spare_lines` idle lines. Total `2n + 2 + spare_lines`.
pub fn cuccaro_adder(n: usize, spare_lines: usize) -> Circuit {
    assert!(n >= 1, "adder needs at least 1 bit");
    let mut c = Circuit::new(2 * n + 2 + spare_lines);
    let cin = Qubit::from(0usize);
    let b = |i: usize| Qubit::from(1 + i);
    let a = |i: usize| Qubit::from(1 + n + i);
    let cout = Qubit::from(1 + 2 * n);

    let maj = |circ: &mut Circuit, x: Qubit, y: Qubit, z: Qubit| {
        circ.push(Gate::Cx, &[z, y]).expect("valid");
        circ.push(Gate::Cx, &[z, x]).expect("valid");
        circ.push(Gate::Ccx, &[x, y, z]).expect("valid");
    };
    let uma = |circ: &mut Circuit, x: Qubit, y: Qubit, z: Qubit| {
        circ.push(Gate::Ccx, &[x, y, z]).expect("valid");
        circ.push(Gate::Cx, &[z, x]).expect("valid");
        circ.push(Gate::Cx, &[x, y]).expect("valid");
    };

    maj(&mut c, cin, b(0), a(0));
    for i in 1..n {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.cx(a(n - 1), cout);
    for i in (1..n).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, cin, b(0), a(0));
    c
}

/// A population counter: adds the popcount of `num_inputs` input bits
/// into a `counter_bits`-wide accumulator via controlled increments.
///
/// Line layout: inputs `0..num_inputs`, counter
/// `num_inputs..num_inputs+counter_bits` (little-endian), then
/// `spare_lines` idle lines. RevLib's `rd84` (8 inputs, 4-bit count, 15
/// lines) is `popcount_counter(8, 4, 3)`.
///
/// # Panics
///
/// Panics if the counter is too narrow to hold `num_inputs`.
pub fn popcount_counter(num_inputs: usize, counter_bits: usize, spare_lines: usize) -> Circuit {
    assert!((1usize << counter_bits) > num_inputs, "counter too narrow for the input count");
    let mut c = Circuit::new(num_inputs + counter_bits + spare_lines);
    let input = |i: usize| Qubit::from(i);
    let counter = |k: usize| Qubit::from(num_inputs + k);
    for i in 0..num_inputs {
        // Controlled increment: ripple from the top so carries are
        // consumed before the bits they depend on flip.
        for k in (1..counter_bits).rev() {
            let mut operands = vec![input(i)];
            operands.extend((0..k).map(counter));
            operands.push(counter(k));
            let gate = match operands.len() {
                2 => Gate::Cx,
                3 => Gate::Ccx,
                _ => Gate::Mcx,
            };
            c.push(gate, &operands).expect("valid");
        }
        c.cx(input(i), counter(0));
    }
    c
}

/// An 8-to-1 multiplexer: `out ^= data[sel]`.
///
/// Line layout: selects `0..3`, data `3..11`, output `11`. 12 lines,
/// matching RevLib's `cm152a`.
pub fn mux8() -> Circuit {
    let mut c = Circuit::new(12);
    let sel = |k: usize| Qubit::from(k);
    let data = |i: usize| Qubit::from(3 + i);
    let out = Qubit::from(11usize);
    for i in 0..8usize {
        let negatives: Vec<Qubit> = (0..3).filter(|&k| i >> k & 1 == 0).map(sel).collect();
        for &q in &negatives {
            c.push(Gate::X, &[q]).expect("valid");
        }
        c.push(Gate::Mcx, &[sel(0), sel(1), sel(2), data(i), out]).expect("valid");
        for &q in &negatives {
            c.push(Gate::X, &[q]).expect("valid");
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpd_circuit::decompose::lower_mcx;
    use qpd_circuit::sim::apply_reversible;

    #[test]
    fn vbe_adder_is_correct_exhaustively() {
        let n = 4;
        let circuit = vbe_adder(n);
        assert_eq!(circuit.num_qubits(), 13);
        for a in 0..16u128 {
            for b in 0..16u128 {
                let input = a | (b << 4);
                let out = apply_reversible(&circuit, input).unwrap();
                let a_out = out & 0xf;
                let b_out = out >> 4 & 0x1f;
                let carries = out >> 9 & 0xf;
                assert_eq!(a_out, a, "a must be preserved");
                assert_eq!(b_out, a + b, "sum of {a}+{b}");
                assert_eq!(carries, 0, "carry lines must be restored");
            }
        }
    }

    #[test]
    fn cuccaro_adder_is_correct_exhaustively() {
        let n = 5;
        let circuit = cuccaro_adder(n, 1);
        assert_eq!(circuit.num_qubits(), 13);
        for a in 0..32u128 {
            for b in 0..32u128 {
                for cin in 0..2u128 {
                    let input = cin | (b << 1) | (a << 6);
                    let out = apply_reversible(&circuit, input).unwrap();
                    let b_out = out >> 1 & 0x1f;
                    let a_out = out >> 6 & 0x1f;
                    let cout = out >> 11 & 1;
                    let total = a + b + cin;
                    assert_eq!(b_out, total & 0x1f, "{a}+{b}+{cin}");
                    assert_eq!(cout, total >> 5, "carry of {a}+{b}+{cin}");
                    assert_eq!(a_out, a, "a must be preserved");
                    assert_eq!(out & 1, cin, "cin must be preserved");
                }
            }
        }
    }

    #[test]
    fn popcount_counts_exhaustively() {
        let circuit = popcount_counter(8, 4, 3);
        assert_eq!(circuit.num_qubits(), 15);
        let lowered = lower_mcx(&circuit).unwrap();
        for x in 0..256u128 {
            let out = apply_reversible(&lowered, x).unwrap();
            let count = out >> 8 & 0xf;
            assert_eq!(count, x.count_ones() as u128, "popcount({x:#b})");
            assert_eq!(out & 0xff, x, "inputs preserved");
            assert_eq!(out >> 12, 0, "spares untouched");
        }
    }

    #[test]
    fn mux8_selects_exhaustively() {
        let circuit = mux8();
        let lowered = lower_mcx(&circuit).unwrap();
        for sel in 0..8u128 {
            for data in 0..256u128 {
                let input = sel | (data << 3);
                let out = apply_reversible(&lowered, input).unwrap();
                let expected = data >> sel & 1;
                assert_eq!(out >> 11 & 1, expected, "sel={sel} data={data:#b}");
                assert_eq!(out & 0x7ff, input, "inputs preserved");
            }
        }
    }

    #[test]
    fn adders_reject_zero_width() {
        assert!(std::panic::catch_unwind(|| vbe_adder(0)).is_err());
        assert!(std::panic::catch_unwind(|| cuccaro_adder(0, 0)).is_err());
    }
}
