//! ESOP (exclusive sum-of-products) cube lists with mixed polarity and
//! their synthesis into MCT networks.
//!
//! PLA-style RevLib benchmarks (misex1 and friends) are cube lists: each
//! cube is a product of positive/negative literals feeding one or more
//! outputs via XOR accumulation. Negative literals are realized by
//! conjugating the control with X gates.

use qpd_circuit::{Circuit, Gate, Qubit};

/// One ESOP cube: a product term over the inputs, xored onto a set of
/// outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cube {
    /// Inputs that appear as positive literals.
    pub positive: u32,
    /// Inputs that appear as negative (complemented) literals.
    pub negative: u32,
    /// Output lines (bit `k` = output `k`) receiving this product.
    pub outputs: u32,
}

impl Cube {
    /// Whether the cube's product evaluates to 1 on input `x`.
    pub fn matches(&self, x: u32) -> bool {
        (x & self.positive) == self.positive && (x & self.negative) == 0
    }
}

/// A PLA-style function: input count, output count, cube list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EsopFunction {
    /// Number of input lines.
    pub num_inputs: usize,
    /// Number of output lines.
    pub num_outputs: usize,
    /// The cube list.
    pub cubes: Vec<Cube>,
}

impl EsopFunction {
    /// Evaluates output `k` on input `x`.
    pub fn eval(&self, k: usize, x: u32) -> bool {
        self.cubes.iter().filter(|c| c.outputs >> k & 1 == 1 && c.matches(x)).count() % 2 == 1
    }

    /// Synthesizes the cube list into an MCT network. Inputs occupy lines
    /// `0..num_inputs`, outputs the following `num_outputs` lines, plus
    /// `extra_lines` idle lines for ancilla borrowing.
    ///
    /// # Panics
    ///
    /// Panics if a cube references an input `>= num_inputs`, an output
    /// `>= num_outputs`, or uses a literal both positively and
    /// negatively.
    pub fn synthesize(&self, extra_lines: usize) -> Circuit {
        let n = self.num_inputs;
        let mut circuit = Circuit::new(n + self.num_outputs + extra_lines);
        for cube in &self.cubes {
            assert_eq!(cube.positive & cube.negative, 0, "contradictory literal polarity");
            assert!(
                (cube.positive | cube.negative) >> n == 0,
                "cube references input out of range"
            );
            assert!(cube.outputs >> self.num_outputs == 0, "cube references output out of range");
            let controls: Vec<Qubit> = (0..n)
                .filter(|i| (cube.positive | cube.negative) >> i & 1 == 1)
                .map(Qubit::from)
                .collect();
            let negatives: Vec<Qubit> =
                (0..n).filter(|i| cube.negative >> i & 1 == 1).map(Qubit::from).collect();
            for &q in &negatives {
                circuit.push(Gate::X, &[q]).expect("valid");
            }
            for k in 0..self.num_outputs {
                if cube.outputs >> k & 1 == 0 {
                    continue;
                }
                let target = Qubit::from(n + k);
                if controls.is_empty() {
                    circuit.push(Gate::X, &[target]).expect("valid");
                } else {
                    let mut operands = controls.clone();
                    operands.push(target);
                    let gate = match operands.len() {
                        2 => Gate::Cx,
                        3 => Gate::Ccx,
                        _ => Gate::Mcx,
                    };
                    circuit.push(gate, &operands).expect("valid");
                }
            }
            for &q in &negatives {
                circuit.push(Gate::X, &[q]).expect("valid");
            }
        }
        circuit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpd_circuit::sim::apply_reversible;

    fn demo() -> EsopFunction {
        EsopFunction {
            num_inputs: 3,
            num_outputs: 2,
            cubes: vec![
                // out0 ^= x0 & !x1 ; out1 ^= x0 & x2 ; both ^= !x2
                Cube { positive: 0b001, negative: 0b010, outputs: 0b01 },
                Cube { positive: 0b101, negative: 0, outputs: 0b10 },
                Cube { positive: 0, negative: 0b100, outputs: 0b11 },
            ],
        }
    }

    #[test]
    fn cube_matching() {
        let c = Cube { positive: 0b001, negative: 0b010, outputs: 1 };
        assert!(c.matches(0b001));
        assert!(c.matches(0b101));
        assert!(!c.matches(0b011));
        assert!(!c.matches(0b000));
    }

    #[test]
    fn eval_xors_cubes() {
        let f = demo();
        // x = 0b001: cube0 matches (out0), cube2 matches (both) ->
        // out0 = 1^1 = 0, out1 = 1.
        assert!(!f.eval(0, 0b001));
        assert!(f.eval(1, 0b001));
    }

    #[test]
    fn synthesis_matches_eval_exhaustively() {
        let f = demo();
        let circuit = f.synthesize(1);
        assert_eq!(circuit.num_qubits(), 6);
        for x in 0..8u32 {
            let out = apply_reversible(&circuit, x as u128).unwrap();
            for k in 0..2 {
                let bit = out >> (3 + k) & 1;
                assert_eq!(bit == 1, f.eval(k, x), "x={x} out{k}");
            }
            // Inputs restored (negative-literal X conjugation undone).
            assert_eq!(out & 0b111, x as u128);
        }
    }

    #[test]
    #[should_panic(expected = "polarity")]
    fn contradictory_cube_panics() {
        let f = EsopFunction {
            num_inputs: 2,
            num_outputs: 1,
            cubes: vec![Cube { positive: 0b01, negative: 0b01, outputs: 1 }],
        };
        f.synthesize(0);
    }
}
