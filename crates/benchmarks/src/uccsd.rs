//! A UCCSD (unitary coupled-cluster singles and doubles) VQE ansatz.
//!
//! Jordan–Wigner mapped excitation operators become Pauli strings whose
//! exponentials are CNOT parity ladders around an Rz rotation. Single
//! excitations `i -> a` ladder through every intermediate qubit (the Z
//! string spans `i..a`), producing the heavy nearest-neighbor chain of
//! paper Figure 5 (left). Double excitations `(i, j) -> (a, b)` carry Z
//! strings only inside `i..j` and `a..b`, so the ladder hops directly
//! from `j` to `a` — the light long-range coupling the figure shows off
//! the diagonal.

use std::f64::consts::FRAC_PI_2;

use qpd_circuit::{Circuit, Gate, Qubit};

/// Pauli basis for one ladder terminal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Basis {
    X,
    Y,
}

fn enter_basis(c: &mut Circuit, q: Qubit, basis: Basis) {
    match basis {
        Basis::X => {
            c.push(Gate::H, &[q]).expect("valid");
        }
        Basis::Y => {
            c.push(Gate::Rx(FRAC_PI_2), &[q]).expect("valid");
        }
    }
}

fn exit_basis(c: &mut Circuit, q: Qubit, basis: Basis) {
    match basis {
        Basis::X => {
            c.push(Gate::H, &[q]).expect("valid");
        }
        Basis::Y => {
            c.push(Gate::Rx(-FRAC_PI_2), &[q]).expect("valid");
        }
    }
}

/// CNOT ladder accumulating parity along `path` onto its last qubit,
/// then `Rz(theta)`, then the ladder undone. `path` entries are qubit
/// indices; consecutive entries get one CNOT each (they need not be
/// adjacent integers — double excitations hop `j -> a` directly).
fn parity_rotation(c: &mut Circuit, path: &[usize], theta: f64) {
    for w in path.windows(2) {
        c.cx(w[0] as u32, w[1] as u32);
    }
    c.rz(theta, *path.last().expect("non-empty path") as u32);
    for w in path.windows(2).rev() {
        c.cx(w[0] as u32, w[1] as u32);
    }
}

/// Builds the UCCSD ansatz on `n` spin orbitals with the first
/// `n_occupied` occupied. `UCCSD_ansatz_8` in the paper's benchmark set
/// is `uccsd_ansatz(8, 4)` (half filling).
///
/// Deterministic pseudo-amplitudes parameterize the rotations; the
/// coupling structure (which is all the design flow sees) does not
/// depend on them.
///
/// # Panics
///
/// Panics unless `0 < n_occupied < n`.
pub fn uccsd_ansatz(n: usize, n_occupied: usize) -> Circuit {
    assert!(n_occupied > 0 && n_occupied < n, "need both occupied and virtual orbitals");
    let mut c = Circuit::new(n);
    // Reference state: occupied orbitals set to |1>.
    for i in 0..n_occupied {
        c.x(i as u32);
    }

    let mut theta_seed = 0u64;
    let mut next_theta = move || {
        theta_seed = theta_seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        0.05 + (theta_seed >> 40) as f64 * 1e-8
    };

    // Single excitations i -> a: two Pauli terms (X_i Y_a, Y_i X_a),
    // ladder through every qubit in between (Jordan-Wigner Z string).
    for i in 0..n_occupied {
        for a in n_occupied..n {
            let path: Vec<usize> = (i..=a).collect();
            let theta = next_theta();
            for (bi, ba) in [(Basis::X, Basis::Y), (Basis::Y, Basis::X)] {
                enter_basis(&mut c, Qubit::from(i), bi);
                enter_basis(&mut c, Qubit::from(a), ba);
                parity_rotation(&mut c, &path, theta);
                exit_basis(&mut c, Qubit::from(i), bi);
                exit_basis(&mut c, Qubit::from(a), ba);
            }
        }
    }

    // Double excitations (i < j) -> (a < b): eight Pauli terms; the Z
    // strings cover i..j and a..b, so the ladder is
    // i -> ... -> j -> a -> ... -> b with a direct j -> a hop.
    let bases = [
        [Basis::X, Basis::X, Basis::X, Basis::Y],
        [Basis::X, Basis::X, Basis::Y, Basis::X],
        [Basis::X, Basis::Y, Basis::X, Basis::X],
        [Basis::Y, Basis::X, Basis::X, Basis::X],
        [Basis::X, Basis::Y, Basis::Y, Basis::Y],
        [Basis::Y, Basis::X, Basis::Y, Basis::Y],
        [Basis::Y, Basis::Y, Basis::X, Basis::Y],
        [Basis::Y, Basis::Y, Basis::Y, Basis::X],
    ];
    for i in 0..n_occupied {
        for j in (i + 1)..n_occupied {
            for a in n_occupied..n {
                for b in (a + 1)..n {
                    let mut path: Vec<usize> = (i..=j).collect();
                    path.extend(a..=b);
                    let theta = next_theta();
                    for term in &bases {
                        let qs = [i, j, a, b];
                        for (q, &basis) in qs.iter().zip(term.iter()) {
                            enter_basis(&mut c, Qubit::from(*q), basis);
                        }
                        parity_rotation(&mut c, &path, theta);
                        for (q, &basis) in qs.iter().zip(term.iter()) {
                            exit_basis(&mut c, Qubit::from(*q), basis);
                        }
                    }
                }
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpd_profile::CouplingProfile;

    #[test]
    fn chain_dominates_like_figure5() {
        let c = uccsd_ansatz(8, 4);
        let profile = CouplingProfile::of(&c);
        // Adjacent pairs carry far more weight than any long-range pair.
        let min_adjacent =
            (0..7).map(|q| profile.strength(q, q + 1)).min().expect("adjacent pairs");
        let max_long_range = (0..8)
            .flat_map(|a| ((a + 2)..8).map(move |b| (a, b)))
            .map(|(a, b)| profile.strength(a, b))
            .max()
            .expect("long-range pairs");
        assert!(
            min_adjacent > 2 * max_long_range,
            "chain {min_adjacent} vs long-range {max_long_range}"
        );
        assert!(max_long_range > 0, "doubles must produce long-range hops");
        // On average the chain dominates strongly (paper: "only about 10%"
        // of the chain weight sits off the diagonal band).
        let mean_adjacent = (0..7).map(|q| profile.strength(q, q + 1) as f64).sum::<f64>() / 7.0;
        let long_range: Vec<f64> = (0..8)
            .flat_map(|a| ((a + 2)..8).map(move |b| (a, b)))
            .map(|(a, b)| profile.strength(a, b) as f64)
            .filter(|&w| w > 0.0)
            .collect();
        let mean_long = long_range.iter().sum::<f64>() / long_range.len() as f64;
        assert!(
            mean_adjacent > 4.0 * mean_long,
            "mean chain {mean_adjacent} vs mean long-range {mean_long}"
        );
    }

    #[test]
    fn long_range_comes_from_occupied_virtual_hops() {
        let c = uccsd_ansatz(8, 4);
        let profile = CouplingProfile::of(&c);
        // The direct hop j -> a joins an occupied (0..4) to a virtual
        // (4..8) orbital; (j, a) = (1, 4) occurs in doubles with i < 1,
        // b > 4: 1 * 3 doubles * 8 terms * 2 ladders = 48... but (1, 4)
        // is not adjacent so all of its weight comes from hops.
        assert!(profile.strength(1, 4) > 0);
        // Pure occupied-occupied non-adjacent pairs never couple.
        assert_eq!(profile.strength(0, 2), 0);
        assert_eq!(profile.strength(1, 3), 0);
    }

    #[test]
    fn qubit_count_and_determinism() {
        let a = uccsd_ansatz(8, 4);
        let b = uccsd_ansatz(8, 4);
        assert_eq!(a.num_qubits(), 8);
        assert_eq!(a, b);
    }

    #[test]
    fn all_gates_are_native_or_two_qubit() {
        let c = uccsd_ansatz(6, 3);
        assert!(c.iter().all(|i| i.qubits().len() <= 2));
    }

    #[test]
    #[should_panic(expected = "occupied and virtual")]
    fn rejects_full_occupation() {
        uccsd_ansatz(4, 4);
    }
}
