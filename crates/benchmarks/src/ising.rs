//! Trotterized 1D transverse-field Ising model simulation.

use qpd_circuit::Circuit;

/// An `n`-qubit, `steps`-step Trotterized Ising evolution: each step
/// applies a ZZ interaction on every nearest-neighbor chain pair plus a
/// transverse X rotation per site. The logical coupling graph is a pure
/// chain — the paper's special case (§5.3.1) where the design flow emits
/// a single architecture and the mapper finds a perfect initial mapping.
///
/// Returned at the `rzz` level; lower with
/// [`qpd_circuit::decompose::decompose_to_native`].
pub fn ising_model(n: usize, steps: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q as u32);
    }
    for step in 0..steps {
        let theta = 0.3 + 0.01 * step as f64; // evolving coupling angle
        for q in 0..n.saturating_sub(1) {
            c.rzz(theta, q as u32, (q + 1) as u32);
        }
        for q in 0..n {
            c.rx(0.17, q as u32);
        }
    }
    c.measure_all();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpd_circuit::decompose::decompose_to_native;
    use qpd_profile::patterns as shape;
    use qpd_profile::{CouplingProfile, PatternShape};

    #[test]
    fn coupling_is_a_chain() {
        let native = decompose_to_native(&ising_model(8, 3)).unwrap();
        let profile = CouplingProfile::of(&native);
        match shape::detect_shape(&profile) {
            PatternShape::Chain(order) => {
                assert!(
                    order == (0..8).collect::<Vec<_>>()
                        || order == (0..8).rev().collect::<Vec<_>>()
                );
            }
            other => panic!("expected chain, got {other:?}"),
        }
    }

    #[test]
    fn chain_weights_are_uniform() {
        let steps = 5;
        let native = decompose_to_native(&ising_model(6, steps)).unwrap();
        let profile = CouplingProfile::of(&native);
        for q in 0..5 {
            assert_eq!(profile.strength(q, q + 1), 2 * steps as u32);
        }
    }

    #[test]
    fn gate_count_structure() {
        let c = ising_model(16, 13);
        // Per step: 15 rzz + 16 rx; plus 16 h and 16 measures.
        assert_eq!(c.len(), 16 + 13 * (15 + 16) + 16);
    }

    #[test]
    fn single_qubit_chain_degenerates() {
        let c = ising_model(1, 2);
        assert_eq!(CouplingProfile::of(&c).total_two_qubit_gates(), 0);
    }
}
