//! CLI contract of `explore_run`: every usage error is a one-line
//! `error: ...` on stderr with exit code 2, reported **before** any
//! run output or filesystem side effect — a bad invocation never
//! prints "resuming", never warm-starts, and never leaves partial
//! artifacts. Plus the shard/merge verbs end-to-end as real processes.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn explore_run() -> Command {
    Command::new(env!("CARGO_BIN_EXE_explore_run"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> Output {
    explore_run().args(args).output().expect("spawn explore_run")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Asserts a usage error: exit 2, a single `error:` line, and no trace
/// of the run having started (no resume/warm-start notices — the
/// validation-order guarantee).
fn assert_usage_error(out: &Output, needle: &str) {
    let err = stderr(out);
    assert_eq!(out.status.code(), Some(2), "stderr: {err}");
    assert!(err.starts_with("error: "), "stderr: {err}");
    assert!(err.contains(needle), "stderr missing {needle:?}: {err}");
    for started in ["resuming", "warm start", "exploring", "migrating"] {
        assert!(!err.contains(started), "error printed after run output: {err}");
    }
    assert!(out.stdout.is_empty(), "usage errors must not print run output");
}

/// A quick run to produce a checkpoint for the resume cases. Walks are
/// kept at the quick default so the checkpoint is shard-compatible.
fn quick_checkpoint(dir: &Path) -> PathBuf {
    let out = explore_run()
        .args(["--quick", "--rounds", "1", "--out-dir"])
        .arg(dir)
        .arg("sym6_145")
        .output()
        .expect("spawn explore_run");
    assert!(out.status.success(), "seed run failed: {}", stderr(&out));
    dir.join("EXPLORE_sym6_145.json")
}

#[test]
fn conflicting_resume_flags_error_before_any_side_effect() {
    let dir = tmp_dir("cli_resume_conflicts");
    let checkpoint = quick_checkpoint(&dir);
    let cp = checkpoint.to_str().unwrap();
    // Flag conflicts are rejected without touching the checkpoint, the
    // output directory, or the cache sidecar.
    for conflict in [
        vec!["--resume", cp, "--archive-cap", "5"],
        vec!["--resume", cp, "--seed", "9"],
        vec!["--resume", cp, "--walks", "3"],
        vec!["--resume", cp, "--quick"],
        vec!["--resume", cp, "--shard", "0/2"],
    ] {
        let out = run(&conflict);
        assert_usage_error(&out, "--resume");
    }
    // Benchmark names cannot ride along either.
    assert_usage_error(&run(&["--resume", cp, "sym6_145"]), "benchmark names");
    // An unreadable checkpoint is an error before any notice.
    assert_usage_error(&run(&["--resume", "/nonexistent/EXPLORE_x.json"]), "cannot read");
}

#[test]
fn unknown_inputs_error_cleanly_before_running_anything() {
    let dir = tmp_dir("cli_unknown");
    let out = explore_run()
        .args(["--quick", "--out-dir"])
        .arg(&dir)
        .args(["sym6_145", "not_a_benchmark"])
        .output()
        .expect("spawn explore_run");
    // The bad name is rejected before the *first* (valid) benchmark
    // runs: no partial artifacts.
    assert_usage_error(&out, "unknown benchmark");
    assert!(
        std::fs::read_dir(&dir).unwrap().next().is_none(),
        "a usage error must not leave partial artifacts"
    );
    assert_usage_error(&run(&["--frobnicate"]), "unknown argument");
    assert_usage_error(&run(&["--shard", "2/2", "--quick"]), "shard");
    assert_usage_error(&run(&["--shard", "0/2", "--acceptance", "dominance", "--quick"]), "shard");
    assert_usage_error(&run(&["--merge"]), "at least one");
    assert_usage_error(&run(&["--merge", "--seed", "4", "a.json"]), "--merge");
}

#[test]
fn shard_then_merge_matches_the_single_process_run_byte_for_byte() {
    let single = tmp_dir("cli_single");
    let sharded = tmp_dir("cli_shards");
    let merged = tmp_dir("cli_merged");
    // Reference: one process, the shardable config shape spelled out.
    let out = explore_run()
        .args(["--quick", "--acceptance", "scalarized", "--no-recombine", "--out-dir"])
        .arg(&single)
        .arg("sym6_145")
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    // The same run as two shard processes at different thread counts
    // (`--shard` defaults the shardable shape).
    for (index, threads) in [(0, "1"), (1, "8")] {
        let out = explore_run()
            .args(["--quick", "--shard", &format!("{index}/2"), "--out-dir"])
            .arg(&sharded)
            .arg("sym6_145")
            .env("QPD_THREADS", threads)
            .output()
            .unwrap();
        assert!(out.status.success(), "shard {index}: {}", stderr(&out));
    }
    // Merge in reversed input order; order must not matter.
    let out = explore_run()
        .args(["--merge", "--check", "--out-dir"])
        .arg(&merged)
        .arg(sharded.join("EXPLORE_sym6_145_shard1of2.json"))
        .arg(sharded.join("EXPLORE_sym6_145_shard0of2.json"))
        .output()
        .unwrap();
    assert!(out.status.success(), "merge: {}", stderr(&out));
    let reference = std::fs::read(single.join("EXPLORE_sym6_145.json")).unwrap();
    let rebuilt = std::fs::read(merged.join("EXPLORE_sym6_145.json")).unwrap();
    assert_eq!(reference, rebuilt, "shard(2) + merge diverged from the single-process bytes");
}

#[test]
fn a_shard_checkpoint_resumes_as_that_shard() {
    let dir = tmp_dir("cli_shard_resume");
    let full = tmp_dir("cli_shard_resume_full");
    // Shard 0/2 cut after one round, then resumed to the full budget.
    for rounds in ["1", "2"] {
        let mut cmd = explore_run();
        if rounds == "1" {
            cmd.args(["--quick", "--rounds", "1", "--shard", "0/2", "--out-dir"])
                .arg(&dir)
                .arg("sym6_145");
        } else {
            // Only --rounds may combine with --resume; the checkpoint's
            // config carries the quick budgets.
            cmd.args(["--rounds", "2", "--resume"])
                .arg(dir.join("EXPLORE_sym6_145_shard0of2.json"))
                .args(["--out-dir"])
                .arg(&dir);
        }
        let out = cmd.output().unwrap();
        assert!(out.status.success(), "rounds={rounds}: {}", stderr(&out));
        if rounds == "2" {
            assert!(stderr(&out).contains("[0/2]"), "resume did not detect the shard tag");
        }
    }
    // Byte-identical to the uninterrupted shard run.
    let out = explore_run()
        .args(["--quick", "--rounds", "2", "--shard", "0/2", "--out-dir"])
        .arg(&full)
        .arg("sym6_145")
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(
        std::fs::read(dir.join("EXPLORE_sym6_145_shard0of2.json")).unwrap(),
        std::fs::read(full.join("EXPLORE_sym6_145_shard0of2.json")).unwrap(),
        "kill/resume of a shard diverged from the uninterrupted shard"
    );
}
