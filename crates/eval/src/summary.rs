//! Quantitative claims of §5.3 and §5.4, computed from experiment runs.

use std::fmt::Write as _;

use qpd_core::pareto::dominates;

use crate::configs::ConfigKind;
use crate::runner::BenchmarkRun;

/// The paper's headline comparisons for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSummary {
    /// Benchmark name.
    pub benchmark: String,
    /// Normalized performance of the most simplified design (eff-full,
    /// no 4-qubit buses). Paper: ~1.077 on average (7.7% better than
    /// baseline (1)).
    pub simplest_perf: f64,
    /// Yield ratio of the most simplified design over baseline (1).
    /// Paper: ~4x.
    pub simplest_yield_gain_vs_b1: f64,
    /// Yield ratio of the max-bus eff-full design over baseline (2)
    /// (16Q, four 4-qubit buses). Paper: >= 100x.
    pub max_yield_gain_vs_b2: f64,
    /// Performance loss of the max-bus design vs baseline (2), as a
    /// fraction. Paper: < 1%.
    pub max_perf_loss_vs_b2: f64,
    /// Yield ratio of the max-bus design over baseline (4) (20Q, six
    /// 4-qubit buses). Paper: > 1000x on average.
    pub max_yield_gain_vs_b4: f64,
    /// Performance loss of the max-bus design vs baseline (4). Paper:
    /// ~3.5%.
    pub max_perf_loss_vs_b4: f64,
    /// Yield ratio of eff-layout-only (2-qubit buses) over baseline (2).
    /// Paper §5.4.1: ~35x average with comparable or better performance.
    pub layout_yield_gain_vs_b2: f64,
    /// Performance of eff-layout-only (2-qubit buses) relative to
    /// baseline (2) (>= 1 means better).
    pub layout_perf_vs_b2: f64,
    /// Geometric-mean yield ratio of eff-full over eff-5-freq at equal
    /// bus counts. Paper §5.4.3: ~10x average.
    pub freq_alloc_yield_gain: f64,
    /// Whether every IBM baseline point is Pareto-dominated by some
    /// eff-full point.
    pub dominates_all_baselines: bool,
    /// How many of the four IBM baselines are strictly dominated by some
    /// eff-full design (the paper's "better Pareto-optimal results":
    /// baseline points fall off the combined frontier).
    pub baselines_dominated: usize,
}

/// Clamp a yield away from zero so ratios against empty Monte Carlo
/// counts stay finite; `floor` should be about half of one count
/// (`0.5 / trials`).
fn floored(y: f64, floor: f64) -> f64 {
    y.max(floor)
}

fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v.is_finite() && v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Summarizes one benchmark run. `yield_floor` guards ratios against
/// zero-success estimates (use `0.5 / yield_trials`).
///
/// # Panics
///
/// Panics if the run lacks the IBM baselines or the eff-full series
/// (i.e. it was not produced by [`crate::runner::run_benchmark`]).
pub fn summarize(run: &BenchmarkRun, yield_floor: f64) -> BenchmarkSummary {
    let b1 = run.ibm_baseline(1).expect("baseline (1)");
    let b2 = run.ibm_baseline(2).expect("baseline (2)");
    let b4 = run.ibm_baseline(4).expect("baseline (4)");
    let full = run.of_config(ConfigKind::EffFull);
    let simplest = full.first().expect("eff-full series");
    let max_bus = full.last().expect("eff-full series");
    let five = run.of_config(ConfigKind::Eff5Freq);
    let layout = run.of_config(ConfigKind::EffLayoutOnly);
    let layout_plain = layout.first().expect("eff-layout-only");

    let freq_alloc_yield_gain = geomean(full.iter().filter_map(|p| {
        five.iter()
            .find(|q| q.four_qubit_buses == p.four_qubit_buses)
            .map(|q| floored(p.yield_rate, yield_floor) / floored(q.yield_rate, yield_floor))
    }));

    let baselines_dominated = run
        .of_config(ConfigKind::Ibm)
        .iter()
        .filter(|b| {
            full.iter().any(|p| {
                dominates((p.normalized_perf, p.yield_rate), (b.normalized_perf, b.yield_rate))
            })
        })
        .count();
    let dominates_all_baselines = baselines_dominated == run.of_config(ConfigKind::Ibm).len();

    BenchmarkSummary {
        benchmark: run.benchmark.clone(),
        simplest_perf: simplest.normalized_perf,
        simplest_yield_gain_vs_b1: floored(simplest.yield_rate, yield_floor)
            / floored(b1.yield_rate, yield_floor),
        max_yield_gain_vs_b2: floored(max_bus.yield_rate, yield_floor)
            / floored(b2.yield_rate, yield_floor),
        max_perf_loss_vs_b2: 1.0 - max_bus.normalized_perf / b2.normalized_perf,
        max_yield_gain_vs_b4: floored(max_bus.yield_rate, yield_floor)
            / floored(b4.yield_rate, yield_floor),
        max_perf_loss_vs_b4: 1.0 - max_bus.normalized_perf / b4.normalized_perf,
        layout_yield_gain_vs_b2: floored(layout_plain.yield_rate, yield_floor)
            / floored(b2.yield_rate, yield_floor),
        layout_perf_vs_b2: layout_plain.normalized_perf / b2.normalized_perf,
        freq_alloc_yield_gain,
        dominates_all_baselines,
        baselines_dominated,
    }
}

/// Aggregate (geometric-mean) view over all benchmarks, mirroring the
/// paper's "on average" claims.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateSummary {
    /// Geomean of per-benchmark simplest-design performance. Paper:
    /// ~1.077.
    pub simplest_perf: f64,
    /// Geomean yield gain of the simplest design over baseline (1).
    /// Paper: ~4x.
    pub simplest_yield_gain_vs_b1: f64,
    /// Geomean yield gain of max-bus designs over baseline (2). Paper:
    /// >= 100x.
    pub max_yield_gain_vs_b2: f64,
    /// Geomean yield gain of max-bus designs over baseline (4). Paper:
    /// > 1000x.
    pub max_yield_gain_vs_b4: f64,
    /// Geomean yield gain of eff-layout-only over baseline (2). Paper:
    /// ~35x.
    pub layout_yield_gain_vs_b2: f64,
    /// Geomean frequency-allocation yield gain. Paper: ~10x.
    pub freq_alloc_yield_gain: f64,
    /// How many benchmarks had every baseline Pareto-dominated.
    pub dominated_count: usize,
    /// Total baselines dominated across benchmarks (out of 4 per
    /// benchmark).
    pub baselines_dominated: usize,
    /// Benchmarks summarized.
    pub total: usize,
}

/// Aggregates per-benchmark summaries.
pub fn aggregate(summaries: &[BenchmarkSummary]) -> AggregateSummary {
    AggregateSummary {
        simplest_perf: geomean(summaries.iter().map(|s| s.simplest_perf)),
        simplest_yield_gain_vs_b1: geomean(summaries.iter().map(|s| s.simplest_yield_gain_vs_b1)),
        max_yield_gain_vs_b2: geomean(summaries.iter().map(|s| s.max_yield_gain_vs_b2)),
        max_yield_gain_vs_b4: geomean(summaries.iter().map(|s| s.max_yield_gain_vs_b4)),
        layout_yield_gain_vs_b2: geomean(summaries.iter().map(|s| s.layout_yield_gain_vs_b2)),
        freq_alloc_yield_gain: geomean(summaries.iter().map(|s| s.freq_alloc_yield_gain)),
        dominated_count: summaries.iter().filter(|s| s.dominates_all_baselines).count(),
        baselines_dominated: summaries.iter().map(|s| s.baselines_dominated).sum(),
        total: summaries.len(),
    }
}

/// Renders the §5.3/§5.4 comparison table with the paper's expectations
/// alongside the measured values.
pub fn summary_table(summaries: &[BenchmarkSummary]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>9} {:>9} {:>10} {:>10} {:>9} {:>9} {:>8}",
        "benchmark", "perf(K=0)", "yld/b1", "yld/b2", "yld/b4", "yld-lay", "yld-freq", "pareto"
    );
    for s in summaries {
        let _ = writeln!(
            out,
            "{:<16} {:>9.4} {:>9.2} {:>10.2} {:>10.2} {:>9.2} {:>9.2} {:>8}",
            s.benchmark,
            s.simplest_perf,
            s.simplest_yield_gain_vs_b1,
            s.max_yield_gain_vs_b2,
            s.max_yield_gain_vs_b4,
            s.layout_yield_gain_vs_b2,
            s.freq_alloc_yield_gain,
            format!("{}/4", s.baselines_dominated),
        );
    }
    let agg = aggregate(summaries);
    let _ = writeln!(
        out,
        "{:<16} {:>9.4} {:>9.2} {:>10.2} {:>10.2} {:>9.2} {:>9.2} {:>5}/{}",
        "GEOMEAN",
        agg.simplest_perf,
        agg.simplest_yield_gain_vs_b1,
        agg.max_yield_gain_vs_b2,
        agg.max_yield_gain_vs_b4,
        agg.layout_yield_gain_vs_b2,
        agg.freq_alloc_yield_gain,
        agg.baselines_dominated,
        4 * agg.total,
    );
    let _ = writeln!(
        out,
        "{:<16} {:>9} {:>9} {:>10} {:>10} {:>9} {:>9} {:>8}",
        "paper(§5.3/5.4)", "~1.077", "~4x", ">=100x", ">1000x", "~35x", "~10x", "all"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_benchmark, EvalSettings};

    #[test]
    fn summary_of_quick_run() {
        let run = run_benchmark("sym6_145", &EvalSettings::quick()).unwrap();
        let s = summarize(&run, 0.5 / 2_000.0);
        assert_eq!(s.benchmark, "sym6_145");
        assert!(s.simplest_perf > 0.0);
        assert!(s.simplest_yield_gain_vs_b1.is_finite());
        assert!(s.freq_alloc_yield_gain.is_finite());
        let table = summary_table(std::slice::from_ref(&s));
        assert!(table.contains("sym6_145"));
        assert!(table.contains("GEOMEAN"));
        let agg = aggregate(&[s]);
        assert_eq!(agg.total, 1);
    }

    #[test]
    fn geomean_behaviour() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(geomean([0.0, -1.0]).is_nan());
        assert!((geomean([5.0, f64::NAN]) - 5.0).abs() < 1e-12);
    }
}
