//! Regenerates paper Figure 4 (the profiling walkthrough) and the
//! Figure 6 placement example built on it.
//!
//! Usage: `cargo run --release -p qpd-eval --bin fig04`

use qpd_circuit::Circuit;
use qpd_core::place_qubits;
use qpd_profile::{render, CouplingProfile};

fn main() {
    // The example circuit of Figure 4 (a): five logical qubits, six
    // two-qubit gates, single-qubit gates and measurements ignored by
    // the profiler.
    let mut circuit = Circuit::new(5);
    circuit.h(0).h(1);
    circuit.cx(0, 4).cx(1, 4).cx(0, 1).cx(2, 4).cx(0, 4).cx(3, 4);
    circuit.measure_all();

    println!("== Figure 4 (a): example circuit ==");
    print!("{circuit}");

    let profile = CouplingProfile::of(&circuit);
    println!("\n== Figure 4 (b)/(c): coupling strength matrix ==");
    print!("{}", render::matrix_table(&profile));

    println!("\n== Figure 4 (d): coupling degree list ==");
    print!("{}", render::degree_table(&profile));

    println!("\n== Figure 6: Algorithm 1 placement on the 2D lattice ==");
    let coords = place_qubits(&profile);
    for (q, c) in coords.iter().enumerate() {
        println!("q{q} -> {c}");
    }

    // Render as a small map.
    let min_r = coords.iter().map(|c| c.row).min().unwrap();
    let max_r = coords.iter().map(|c| c.row).max().unwrap();
    let min_c = coords.iter().map(|c| c.col).min().unwrap();
    let max_c = coords.iter().map(|c| c.col).max().unwrap();
    println!();
    for r in min_r..=max_r {
        let mut line = String::new();
        for c in min_c..=max_c {
            match coords.iter().position(|&k| k == qpd_topology::Coord::new(r, c)) {
                Some(q) => line.push_str(&format!("[q{q}]")),
                None => line.push_str(" .  "),
            }
        }
        println!("{line}");
    }
}
