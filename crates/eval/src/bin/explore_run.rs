//! Design-space exploration over the paper's benchmark profiles.
//!
//! For each selected benchmark the run builds an [`ExploreSpace`], runs
//! the seeded annealing search (bit-identical for every `QPD_THREADS`),
//! writes an `EXPLORE_<benchmark>.json` checkpoint after every round,
//! and prints a summary table: archive size, Pareto-front size, cache
//! hit counts, and where the paper's `eff-full` configuration landed —
//! on the front, or dominated by which front point.
//!
//! Usage:
//!   explore_run [--quick] [--check] [--seed N] [--rounds N] [--walks N]
//!               [--steps N] [--out-dir DIR] [--resume FILE] [names...]
//!
//! `--quick` shrinks every budget for smoke runs; `--check` additionally
//! asserts the smoke invariants (non-empty front, round-tripping
//! checkpoint, eff-full evaluated) and exits non-zero on violation.
//! `--resume FILE` loads a checkpoint and continues that single run to
//! its configured round budget; only `--rounds` may be combined with it
//! (to extend a finished run), since the checkpoint's config governs
//! the deterministic walk streams.

use std::path::PathBuf;

use qpd_core::dominates_nd;
use qpd_explore::{Checkpoint, ExploreConfig, ExploreSpace, ExploreState, Explorer};

struct Args {
    quick: bool,
    check: bool,
    seed: Option<u64>,
    rounds: Option<usize>,
    walks: Option<usize>,
    steps: Option<usize>,
    out_dir: PathBuf,
    resume: Option<PathBuf>,
    names: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        check: false,
        seed: None,
        rounds: None,
        walks: None,
        steps: None,
        out_dir: PathBuf::from("."),
        resume: None,
        names: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--check" => args.check = true,
            "--seed" => args.seed = Some(value("--seed").parse().expect("numeric seed")),
            "--rounds" => args.rounds = Some(value("--rounds").parse().expect("numeric rounds")),
            "--walks" => args.walks = Some(value("--walks").parse().expect("numeric walks")),
            "--steps" => args.steps = Some(value("--steps").parse().expect("numeric steps")),
            "--out-dir" => args.out_dir = PathBuf::from(value("--out-dir")),
            "--resume" => args.resume = Some(PathBuf::from(value("--resume"))),
            other if !other.starts_with("--") => args.names.push(other.to_string()),
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

fn config_from(args: &Args) -> ExploreConfig {
    let mut config = if args.quick { ExploreConfig::quick() } else { ExploreConfig::default() };
    if let Some(seed) = args.seed {
        config.seed = seed;
    }
    if let Some(rounds) = args.rounds {
        config.rounds = rounds;
    }
    if let Some(walks) = args.walks {
        config.walks = walks;
    }
    if let Some(steps) = args.steps {
        config.steps_per_round = steps;
    }
    config
}

/// Where `eff-full` landed: `Ok(true)` on the front, `Ok(false)` absent
/// from the archive, `Err(name)` dominated by front point `name`.
fn eff_full_status(space: &ExploreSpace, state: &ExploreState) -> Result<bool, String> {
    let eff_full = qpd_explore::CandidateSpec::eff_full(space.full_weighted_len());
    let Some(position) = state.archive.iter().position(|e| e.spec == eff_full) else {
        return Ok(false);
    };
    let front = state.front_indices();
    if front.contains(&position) {
        return Ok(true);
    }
    let point = state.archive[position].objectives.as_maximization();
    let dominator = front
        .iter()
        .find(|&&i| dominates_nd(&state.archive[i].objectives.as_maximization(), &point))
        .map(|&i| state.archive[i].arch_name.clone())
        .unwrap_or_else(|| "front".into());
    Err(dominator)
}

struct RunReport {
    benchmark: String,
    evaluations: u64,
    archive: usize,
    front: usize,
    yield_hits: u64,
    eff_full: Result<bool, String>,
    checkpoint: PathBuf,
}

fn run_one(
    name: &str,
    config: ExploreConfig,
    out_dir: &PathBuf,
    resume_state: Option<ExploreState>,
) -> RunReport {
    std::fs::create_dir_all(out_dir).expect("create output directory");
    let circuit = qpd_benchmarks::build(name).expect("known benchmark");
    let space = ExploreSpace::new(circuit, config.max_aux);
    let explorer = Explorer::new(space, config).expect("baseline design");
    let mut state = match resume_state {
        Some(state) => state,
        None => explorer.initial_state().expect("initial evaluations"),
    };
    while state.rounds_done < config.rounds {
        explorer.advance_round(&mut state).expect("round");
        // Checkpoint after every round: a killed run resumes from here.
        let checkpoint = Checkpoint { run: name.to_string(), config, state: state.clone() };
        checkpoint.write(out_dir).expect("write checkpoint");
    }
    // Always (re)write the final state: never report a stale file that
    // happened to be sitting in the output directory.
    let checkpoint = Checkpoint { run: name.to_string(), config, state: state.clone() };
    let checkpoint_path = checkpoint.write(out_dir).expect("write checkpoint");
    let cache = explorer.cache();
    RunReport {
        benchmark: name.to_string(),
        evaluations: cache.yields.hits() + cache.yields.misses(),
        archive: state.archive.len(),
        front: state.front_indices().len(),
        yield_hits: cache.yields.hits(),
        eff_full: eff_full_status(explorer.space(), &state),
        checkpoint: checkpoint_path,
    }
}

fn main() {
    let args = parse_args();
    let config = config_from(&args);

    // Resume mode: continue one checkpointed run. The checkpoint's
    // config governs the walk streams, so only the round budget may be
    // overridden (extending a finished run is fine — later rounds get
    // fresh `(seed, walk, round)` streams); every other override would
    // silently change what the original run was, so reject it loudly.
    if let Some(path) = &args.resume {
        if args.walks.is_some() || args.steps.is_some() || args.seed.is_some() || args.quick {
            panic!("--resume uses the checkpoint's config; only --rounds may be combined with it");
        }
        let text = std::fs::read_to_string(path).expect("readable checkpoint");
        let mut checkpoint = Checkpoint::parse(&text).expect("valid checkpoint");
        if let Some(rounds) = args.rounds {
            checkpoint.config.rounds = rounds;
        }
        eprintln!(
            "resuming {} at round {}/{}",
            checkpoint.run, checkpoint.state.rounds_done, checkpoint.config.rounds
        );
        let report = run_one(
            &checkpoint.run.clone(),
            checkpoint.config,
            &args.out_dir,
            Some(checkpoint.state),
        );
        print_table(&[report]);
        return;
    }

    let names: Vec<String> = if args.names.is_empty() {
        if args.quick {
            vec!["sym6_145".to_string()]
        } else {
            // The paper profiles small enough to search end-to-end in
            // one sitting; pass names explicitly for the rest.
            vec!["sym6_145".to_string(), "UCCSD_ansatz_8".to_string(), "z4_268".to_string()]
        }
    } else {
        args.names.clone()
    };

    let mut reports = Vec::new();
    for name in &names {
        eprint!("exploring {name} ... ");
        let start = std::time::Instant::now();
        let report = run_one(name, config, &args.out_dir, None);
        eprintln!("done ({:.1?})", start.elapsed());
        reports.push(report);
    }
    print_table(&reports);

    if args.check {
        check(&reports);
    }
}

fn print_table(reports: &[RunReport]) {
    println!(
        "\n{:<16} {:>6} {:>8} {:>6} {:>10}  {:<26} checkpoint",
        "benchmark", "evals", "archive", "front", "cache-hit", "eff-full"
    );
    for r in reports {
        let eff = match &r.eff_full {
            Ok(true) => "on front".to_string(),
            Ok(false) => "NOT EVALUATED".to_string(),
            Err(by) => format!("dominated by {by}"),
        };
        println!(
            "{:<16} {:>6} {:>8} {:>6} {:>10}  {:<26} {}",
            r.benchmark,
            r.evaluations,
            r.archive,
            r.front,
            r.yield_hits,
            eff,
            r.checkpoint.display()
        );
    }
}

/// Smoke assertions for CI: non-empty front, eff-full evaluated, and a
/// checkpoint that parses back to the exact same bytes.
fn check(reports: &[RunReport]) {
    let mut failures = Vec::new();
    for r in reports {
        if r.front == 0 {
            failures.push(format!("{}: empty Pareto front", r.benchmark));
        }
        if matches!(r.eff_full, Ok(false)) {
            failures.push(format!("{}: eff-full was never evaluated", r.benchmark));
        }
        let text = std::fs::read_to_string(&r.checkpoint).expect("checkpoint readable");
        match Checkpoint::parse(&text) {
            Ok(parsed) => {
                if parsed.render() != text {
                    failures.push(format!("{}: checkpoint not a render fixpoint", r.benchmark));
                }
            }
            Err(e) => failures.push(format!("{}: checkpoint unparseable: {e}", r.benchmark)),
        }
    }
    if failures.is_empty() {
        println!("\ncheck: all smoke invariants hold");
    } else {
        for f in &failures {
            eprintln!("check FAILED: {f}");
        }
        std::process::exit(1);
    }
}
