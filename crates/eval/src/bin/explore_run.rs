//! Design-space exploration over the paper's benchmark profiles.
//!
//! For each selected benchmark the run builds an [`ExploreSpace`], runs
//! the archive-guided Pareto search (bit-identical for every
//! `QPD_THREADS`), writes an `EXPLORE_<benchmark>.json` checkpoint after
//! every round, and prints a summary table: archive size, Pareto-front
//! size, front spread (mean finite crowding distance), yield-cache hit
//! counts, the aggregate stage-cache hit rate (placement, bus,
//! frequency, routing, and yield stages together), and where the
//! paper's `eff-full` configuration landed — on the front, or dominated
//! by which front point.
//!
//! Usage:
//!   explore_run [--quick] [--check] [--seed N] [--rounds N] [--walks N]
//!               [--steps N] [--out-dir DIR] [--resume FILE] [--overlay]
//!               [--adaptive] [--screen N] [--epsilon X]
//!               [--acceptance scalarized|dominance] [--no-recombine]
//!               [--fine-recombine] [--archive-cap N] [--max-seconds S]
//!               [--hardware fixed|tunable|heavyhex|all] [--hit-rates]
//!               [--no-warm-start] [names...]
//!
//! `--hardware` picks the hardware family the candidates design for;
//! `all` makes the family a search knob (walks spread across families
//! and a dedicated move flips it), producing a cross-family front.
//! `--hit-rates` records the per-stage cache hit counters in the
//! checkpoint (display-only; upgrades its schema tag to v3). The
//! counters describe the run's *actual* cache traffic, which depends on
//! scheduling: two workers first-missing one key split a (hit, miss)
//! pair differently than one worker visiting it twice. The search state
//! stays bit-identical for every `QPD_THREADS`; only this block is
//! byte-stable at a fixed thread count — which is why it is
//! display-only and never parsed back into state.
//!
//! Alongside every checkpoint the run writes
//! `EXPLORE_<benchmark>_caches.json`, a sidecar with the routing and
//! yield stage-cache entries (see [`qpd_explore::sidecar`]); `--resume`
//! loads the sidecar sitting next to the checkpoint (when present) so
//! the resumed run starts warm, logging a one-line notice with the
//! entries restored per stage. `--no-warm-start` skips the load (cold
//! resume — useful when bisecting cache-related behavior, and the only
//! effect is recomputation: stages are pure functions of their content
//! keys, so warm caches can never change results).
//!
//! `--fine-recombine` splits the frequency-strategy knob into its own
//! recombination exchange block (an extra RNG draw per exchanging
//! pair). The flag is recorded in the checkpoint — it changes the
//! exchange streams, so it cannot be combined with `--resume`.
//!
//! `--archive-cap N` bounds the Pareto archive: at every round barrier
//! the archive is pruned to `N` points by ε-grid occupancy and crowding
//! distance (front points kept first); `0` keeps every point.
//!
//! `--quick` shrinks every budget for smoke runs; `--check` additionally
//! asserts the smoke invariants (non-empty front, round-tripping
//! checkpoint, eff-full evaluated) and exits non-zero on violation.
//! `--adaptive` turns on 4x screening (`--screen N` picks the divisor
//! explicitly), the budget shape that makes `qft_16` tractable.
//! `--overlay` additionally writes `EXPLORE_<benchmark>_front.svg`, the
//! Figure-10 style overlay of the explored archive and its front.
//! `--max-seconds S` stops scheduling new rounds once the wall clock
//! passes `S` seconds for a run (the state so far is checkpointed and
//! reported; CI uses this to bound the qft_16 smoke job).
//! `--resume FILE` loads a checkpoint — schema v1 files are migrated to
//! v2 in memory, keeping their scalarized-era behavior — and continues
//! that single run to its configured round budget; only `--rounds` and
//! `--overlay`/`--max-seconds` may be combined with it, since the
//! checkpoint's config governs the deterministic walk streams.

use std::path::PathBuf;
use std::time::Instant;

use qpd_core::{crowding_distances, dominates_nd};
use qpd_eval::plot::{svg_front_overlay, OverlayPoint};
use qpd_explore::sidecar::{self, SidecarLoad};
use qpd_explore::{
    AcceptanceMode, Checkpoint, ExploreConfig, ExploreSpace, ExploreState, Explorer, HardwareSweep,
    StageHitRate,
};

struct Args {
    quick: bool,
    check: bool,
    seed: Option<u64>,
    rounds: Option<usize>,
    walks: Option<usize>,
    steps: Option<usize>,
    out_dir: PathBuf,
    resume: Option<PathBuf>,
    overlay: bool,
    screen: Option<u64>,
    epsilon: Option<f64>,
    acceptance: Option<AcceptanceMode>,
    no_recombine: bool,
    fine_recombine: bool,
    archive_cap: Option<usize>,
    max_seconds: Option<f64>,
    hardware: Option<HardwareSweep>,
    hit_rates: bool,
    no_warm_start: bool,
    names: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        check: false,
        seed: None,
        rounds: None,
        walks: None,
        steps: None,
        out_dir: PathBuf::from("."),
        resume: None,
        overlay: false,
        screen: None,
        epsilon: None,
        acceptance: None,
        no_recombine: false,
        fine_recombine: false,
        archive_cap: None,
        max_seconds: None,
        hardware: None,
        hit_rates: false,
        no_warm_start: false,
        names: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--check" => args.check = true,
            "--seed" => args.seed = Some(value("--seed").parse().expect("numeric seed")),
            "--rounds" => args.rounds = Some(value("--rounds").parse().expect("numeric rounds")),
            "--walks" => args.walks = Some(value("--walks").parse().expect("numeric walks")),
            "--steps" => args.steps = Some(value("--steps").parse().expect("numeric steps")),
            "--out-dir" => args.out_dir = PathBuf::from(value("--out-dir")),
            "--resume" => args.resume = Some(PathBuf::from(value("--resume"))),
            "--overlay" => args.overlay = true,
            "--adaptive" => args.screen = args.screen.or(Some(4)),
            "--screen" => args.screen = Some(value("--screen").parse().expect("numeric divisor")),
            "--epsilon" => args.epsilon = Some(value("--epsilon").parse().expect("numeric eps")),
            "--acceptance" => {
                let tag = value("--acceptance");
                args.acceptance = Some(
                    AcceptanceMode::from_str_tag(&tag)
                        .unwrap_or_else(|| panic!("unknown acceptance mode {tag:?}")),
                );
            }
            "--no-recombine" => args.no_recombine = true,
            "--fine-recombine" => args.fine_recombine = true,
            "--no-warm-start" => args.no_warm_start = true,
            "--archive-cap" => {
                args.archive_cap =
                    Some(value("--archive-cap").parse().expect("numeric archive cap"))
            }
            "--max-seconds" => {
                args.max_seconds = Some(value("--max-seconds").parse().expect("numeric seconds"))
            }
            "--hardware" => {
                let tag = value("--hardware");
                args.hardware = Some(
                    HardwareSweep::parse(&tag)
                        .unwrap_or_else(|| panic!("unknown hardware family {tag:?}")),
                );
            }
            "--hit-rates" => args.hit_rates = true,
            other if !other.starts_with("--") => args.names.push(other.to_string()),
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

fn config_from(args: &Args) -> ExploreConfig {
    let mut config = if args.quick { ExploreConfig::quick() } else { ExploreConfig::default() };
    if let Some(seed) = args.seed {
        config.seed = seed;
    }
    if let Some(rounds) = args.rounds {
        config.rounds = rounds;
    }
    if let Some(walks) = args.walks {
        config.walks = walks;
    }
    if let Some(steps) = args.steps {
        config.steps_per_round = steps;
    }
    if let Some(screen) = args.screen {
        config.screen_divisor = screen.max(1);
    }
    if let Some(eps) = args.epsilon {
        config.epsilon = eps;
    }
    if let Some(acceptance) = args.acceptance {
        config.acceptance = acceptance;
    }
    if args.no_recombine {
        config.recombine = false;
    }
    if args.fine_recombine {
        config.fine_recombine = true;
    }
    if let Some(cap) = args.archive_cap {
        config.archive_cap = (cap > 0).then_some(cap);
    }
    if let Some(hardware) = args.hardware {
        config.hardware = hardware;
    }
    config
}

/// Where `eff-full` landed: `Ok(true)` on the front, `Ok(false)` absent
/// from the archive, `Err(name)` dominated by front point `name`. In a
/// pinned-family run walk 0 starts at eff-full *on that family*, so the
/// probe follows the sweep.
fn eff_full_status(
    space: &ExploreSpace,
    state: &ExploreState,
    sweep: HardwareSweep,
) -> Result<bool, String> {
    let mut eff_full = qpd_explore::CandidateSpec::eff_full(space.full_weighted_len());
    if let HardwareSweep::Pinned(family) = sweep {
        eff_full.hardware = family;
    }
    let Some(position) = state.archive.iter().position(|e| e.spec == eff_full) else {
        return Ok(false);
    };
    let front = state.front_indices();
    if front.contains(&position) {
        return Ok(true);
    }
    let point = state.archive[position].objectives.as_maximization();
    let dominator = front
        .iter()
        .find(|&&i| dominates_nd(&state.archive[i].objectives.as_maximization(), &point))
        .map(|&i| state.archive[i].arch_name.clone())
        .unwrap_or_else(|| "front".into());
    Err(dominator)
}

/// Mean finite NSGA-II crowding distance over the front — the spread
/// figure in the summary table (0 when every point is a boundary).
fn front_spread(state: &ExploreState, front: &[usize]) -> f64 {
    let pts: Vec<Vec<f64>> =
        front.iter().map(|&i| state.archive[i].objectives.as_maximization()).collect();
    let finite: Vec<f64> = crowding_distances(&pts).into_iter().filter(|d| d.is_finite()).collect();
    if finite.is_empty() {
        0.0
    } else {
        finite.iter().sum::<f64>() / finite.len() as f64
    }
}

/// Projects the archive onto the Figure-10 overlay axes: performance
/// normalized to the best (smallest) post-mapping gate count on record.
fn overlay_points(state: &ExploreState, front: &[usize]) -> Vec<OverlayPoint> {
    let best_gates =
        state.archive.iter().map(|e| e.objectives.total_gates).min().unwrap_or(1).max(1);
    state
        .archive
        .iter()
        .enumerate()
        .map(|(i, e)| OverlayPoint {
            arch: e.arch_name.clone(),
            perf: best_gates as f64 / e.objectives.total_gates as f64,
            yield_rate: e.objectives.yield_rate(),
            on_front: front.contains(&i),
        })
        .collect()
}

struct RunReport {
    benchmark: String,
    evaluations: u64,
    archive: usize,
    front: usize,
    spread: f64,
    yield_hits: u64,
    /// Aggregate stage-cache hit rate across every cached stage of the
    /// cascade (placement, bus, frequency, routing, yield).
    stage_hit_rate: f64,
    /// Distinct stage keys computed across the cascade. Unlike the
    /// hit/miss tallies this is deterministic: duplicate computations
    /// from scheduling races dedupe, so the figure is identical at
    /// every `QPD_THREADS`.
    stage_unique: u64,
    eff_full: Result<bool, String>,
    checkpoint: PathBuf,
    overlay: Option<PathBuf>,
}

struct RunOptions {
    overlay: bool,
    max_seconds: Option<f64>,
    /// Record display-only per-stage cache counters in the checkpoint
    /// (upgrades its schema tag to v3).
    hit_rates: bool,
    /// Directory to load a `EXPLORE_<run>_caches.json` sidecar from
    /// before the first resumed round.
    warm_from: Option<PathBuf>,
}

/// Warm-loads a cache sidecar, logging one line saying what happened —
/// entries restored per stage, or why the file was skipped. A missing
/// sidecar is the normal cold-start case and stays silent.
fn warm_load_sidecar(path: &std::path::Path, caches: &qpd_explore::StageCaches) {
    match sidecar::load(path, caches) {
        SidecarLoad::Missing => {}
        SidecarLoad::Ignored(why) => {
            eprintln!("ignoring cache sidecar {} ({why})", path.display());
        }
        SidecarLoad::Loaded { routes, yields } => {
            eprintln!(
                "warm start: restored {routes} routing + {yields} yield cache entries from {}",
                path.display()
            );
        }
    }
}

fn run_one(
    name: &str,
    config: ExploreConfig,
    out_dir: &PathBuf,
    resume_state: Option<ExploreState>,
    options: &RunOptions,
) -> RunReport {
    std::fs::create_dir_all(out_dir).expect("create output directory");
    let start = Instant::now();
    let circuit = qpd_benchmarks::build(name).expect("known benchmark");
    let space = ExploreSpace::new(circuit, config.max_aux);
    let explorer = Explorer::new(space, config).expect("baseline design");
    if let Some(dir) = &options.warm_from {
        warm_load_sidecar(&dir.join(sidecar::file_name(name)), explorer.caches());
    }
    let mut state = match resume_state {
        Some(state) => state,
        None => explorer.initial_state().expect("initial evaluations"),
    };
    let snapshot = |state: &ExploreState| Checkpoint {
        run: name.to_string(),
        config,
        state: state.clone(),
        stage_hit_rates: if options.hit_rates {
            StageHitRate::from_stats(&explorer.stage_stats())
        } else {
            Vec::new()
        },
    };
    while state.rounds_done < config.rounds {
        if let Some(bound) = options.max_seconds {
            if state.rounds_done > 0 && start.elapsed().as_secs_f64() > bound {
                eprintln!(
                    "{name}: wall-clock bound hit after {} rounds; stopping early",
                    state.rounds_done
                );
                break;
            }
        }
        explorer.advance_round(&mut state).expect("round");
        // Checkpoint after every round: a killed run resumes from here,
        // and the cache sidecar lets it resume *warm*.
        snapshot(&state).write(out_dir).expect("write checkpoint");
        std::fs::write(out_dir.join(sidecar::file_name(name)), sidecar::render(explorer.caches()))
            .expect("write cache sidecar");
    }
    // Always (re)write the final state: never report a stale file that
    // happened to be sitting in the output directory.
    let checkpoint_path = snapshot(&state).write(out_dir).expect("write checkpoint");
    std::fs::write(out_dir.join(sidecar::file_name(name)), sidecar::render(explorer.caches()))
        .expect("write cache sidecar");
    // The front is an O(archive^2) dominance sweep: compute it once and
    // share it between the report, the spread figure, and the overlay.
    let front = state.front_indices();
    let overlay = options.overlay.then(|| {
        let path = out_dir.join(format!("EXPLORE_{name}_front.svg"));
        std::fs::write(&path, svg_front_overlay(name, &overlay_points(&state, &front)))
            .expect("write overlay");
        path
    });
    let cache = explorer.caches();
    let (stage_hits, stage_lookups, stage_unique) =
        explorer.stage_stats().iter().fold((0u64, 0u64, 0u64), |(h, t, u), s| {
            (h + s.hits, t + s.hits + s.misses, u + s.unique_misses)
        });
    RunReport {
        benchmark: name.to_string(),
        evaluations: cache.yields.hits() + cache.yields.misses(),
        archive: state.archive.len(),
        front: front.len(),
        spread: front_spread(&state, &front),
        yield_hits: cache.yields.hits(),
        stage_hit_rate: if stage_lookups == 0 {
            0.0
        } else {
            stage_hits as f64 / stage_lookups as f64
        },
        stage_unique,
        eff_full: eff_full_status(explorer.space(), &state, config.hardware),
        checkpoint: checkpoint_path,
        overlay,
    }
}

fn main() {
    let args = parse_args();
    let config = config_from(&args);
    let mut options = RunOptions {
        overlay: args.overlay,
        max_seconds: args.max_seconds,
        hit_rates: args.hit_rates,
        warm_from: None,
    };

    // Resume mode: continue one checkpointed run. The checkpoint's
    // config governs the walk streams, so only the round budget may be
    // overridden (extending a finished run is fine — later rounds get
    // fresh `(seed, walk, round)` streams); every other override would
    // silently change what the original run was, so reject it loudly.
    if let Some(path) = &args.resume {
        if args.walks.is_some()
            || args.steps.is_some()
            || args.seed.is_some()
            || args.quick
            || args.screen.is_some()
            || args.epsilon.is_some()
            || args.acceptance.is_some()
            || args.no_recombine
            || args.fine_recombine
            || args.archive_cap.is_some()
            || args.hardware.is_some()
        {
            panic!("--resume uses the checkpoint's config; only --rounds may be combined with it");
        }
        let text = std::fs::read_to_string(path).expect("readable checkpoint");
        let (mut checkpoint, version) =
            Checkpoint::parse_versioned(&text).expect("valid checkpoint");
        if version == 1 {
            eprintln!(
                "migrating {} from schema v{version}: continuing with {} acceptance, \
                 no recombination, no screening (the run's original semantics)",
                path.display(),
                checkpoint.config.acceptance.as_str()
            );
        }
        if let Some(rounds) = args.rounds {
            checkpoint.config.rounds = rounds;
        }
        // A sidecar next to the checkpoint warms the resumed caches
        // (unless the operator asked for a cold resume).
        if !args.no_warm_start {
            options.warm_from = path.parent().map(|p| p.to_path_buf());
        }
        eprintln!(
            "resuming {} at round {}/{}",
            checkpoint.run, checkpoint.state.rounds_done, checkpoint.config.rounds
        );
        let report = run_one(
            &checkpoint.run.clone(),
            checkpoint.config,
            &args.out_dir,
            Some(checkpoint.state),
            &options,
        );
        print_table(&[report]);
        return;
    }

    let names: Vec<String> = if args.names.is_empty() {
        if args.quick {
            vec!["sym6_145".to_string()]
        } else {
            // The paper profiles small enough to search end-to-end in
            // one sitting; pass names explicitly for the rest.
            vec!["sym6_145".to_string(), "UCCSD_ansatz_8".to_string(), "z4_268".to_string()]
        }
    } else {
        args.names.clone()
    };

    let mut reports = Vec::new();
    for name in &names {
        eprint!("exploring {name} ... ");
        let start = std::time::Instant::now();
        let report = run_one(name, config, &args.out_dir, None, &options);
        eprintln!("done ({:.1?})", start.elapsed());
        reports.push(report);
    }
    print_table(&reports);

    if args.check {
        check(&reports);
    }
}

fn print_table(reports: &[RunReport]) {
    println!(
        "\n{:<16} {:>6} {:>8} {:>6} {:>7} {:>10} {:>9} {:>6}  {:<26} checkpoint",
        "benchmark",
        "evals",
        "archive",
        "front",
        "spread",
        "cache-hit",
        "stage-hit",
        "uniq",
        "eff-full"
    );
    for r in reports {
        let eff = match &r.eff_full {
            Ok(true) => "on front".to_string(),
            Ok(false) => "NOT EVALUATED".to_string(),
            Err(by) => format!("dominated by {by}"),
        };
        println!(
            "{:<16} {:>6} {:>8} {:>6} {:>7.3} {:>10} {:>8.1}% {:>6}  {:<26} {}",
            r.benchmark,
            r.evaluations,
            r.archive,
            r.front,
            r.spread,
            r.yield_hits,
            100.0 * r.stage_hit_rate,
            r.stage_unique,
            eff,
            r.checkpoint.display()
        );
        if let Some(overlay) = &r.overlay {
            println!("{:<16} overlay: {}", "", overlay.display());
        }
    }
}

/// Smoke assertions for CI: non-empty front, eff-full evaluated, a
/// checkpoint that parses back to the exact same bytes, and (when
/// requested) an overlay that was actually written.
fn check(reports: &[RunReport]) {
    let mut failures = Vec::new();
    for r in reports {
        if r.front == 0 {
            failures.push(format!("{}: empty Pareto front", r.benchmark));
        }
        if matches!(r.eff_full, Ok(false)) {
            failures.push(format!("{}: eff-full was never evaluated", r.benchmark));
        }
        let text = std::fs::read_to_string(&r.checkpoint).expect("checkpoint readable");
        match Checkpoint::parse(&text) {
            Ok(parsed) => {
                if parsed.render() != text {
                    failures.push(format!("{}: checkpoint not a render fixpoint", r.benchmark));
                }
            }
            Err(e) => failures.push(format!("{}: checkpoint unparseable: {e}", r.benchmark)),
        }
        if let Some(overlay) = &r.overlay {
            match std::fs::read_to_string(overlay) {
                Ok(svg) if svg.contains("</svg>") => {}
                _ => failures.push(format!("{}: overlay SVG missing or truncated", r.benchmark)),
            }
        }
    }
    if failures.is_empty() {
        println!("\ncheck: all smoke invariants hold");
    } else {
        for f in &failures {
            eprintln!("check FAILED: {f}");
        }
        std::process::exit(1);
    }
}
